//! Live PD² execution: real closures, real threads, live reweighting.
//!
//! A two-worker executor runs three "processing stages" whose shares
//! adapt at run time, the way the Whisper tracker's correlation tasks
//! would: a `tracker` stage that doubles its share when its target
//! "speeds up", a steady `renderer`, and a background `logger`. The
//! reweighting request is submitted from the main thread through a
//! [`Controller`] while the executor runs, and is enacted by rules O/I
//! with constant drift.
//!
//! ```sh
//! cargo run --release --example realtime_executor
//! ```

use pfair_repro::core::{rat, Weight};
use pfair_repro::exec::ExecutorBuilder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let quantum = Duration::from_millis(2);
    let mut builder = ExecutorBuilder::new(2).quantum(quantum);

    let work = Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]);

    let w = work.clone();
    let tracker = builder.task("tracker", Weight::new(rat(1, 5)), move |tick| {
        // One correlation update per quantum.
        w[0].fetch_add(1, Ordering::Relaxed);
        let _ = tick.seq;
    });
    let w = work.clone();
    let _renderer = builder.task("renderer", Weight::new(rat(1, 2)), move |_| {
        w[1].fetch_add(1, Ordering::Relaxed);
    });
    let w = work.clone();
    let _logger = builder.task("logger", Weight::new(rat(1, 10)), move |_| {
        w[2].fetch_add(1, Ordering::Relaxed);
    });

    let mut exec = builder.build();
    let controller = exec.controller();

    println!(
        "phase 1: tracker at weight 1/5 for 200 quanta ({} ms each)",
        quantum.as_millis()
    );
    exec.run(200);
    let phase1: Vec<u64> = work.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    println!(
        "  ticks: tracker {}, renderer {}, logger {}",
        phase1[0], phase1[1], phase1[2]
    );

    println!("phase 2: target speeds up → tracker reweights to 2/5 (live)");
    controller.reweight(tracker, Weight::new(rat(2, 5)));
    exec.run(200);
    let phase2: Vec<u64> = work
        .iter()
        .zip(&phase1)
        .map(|(c, p)| c.load(Ordering::Relaxed) - p)
        .collect();
    println!(
        "  ticks: tracker {}, renderer {}, logger {}",
        phase2[0], phase2[1], phase2[2]
    );

    let report = exec.shutdown();
    assert!(report.sim.is_miss_free());
    println!(
        "\nengine view: 1 initiation, {} enactment(s), max per-event drift {} (bound: 2)",
        report.sim.counters.reweight_enactments,
        report.sim.max_abs_drift_delta()
    );
    println!(
        "tracker share rose from {:.2} to {:.2} ticks/quantum — enacted within two quanta.",
        phase1[0] as f64 / 200.0,
        phase2[0] as f64 / 200.0
    );
}
