//! A guided tour of the paper's lower-bound counterexamples, executed
//! live against the schedulers:
//!
//! 1. **Theorem 3** (Fig. 8): PD²-LJ's drift per event grows with the
//!    inverse of the task's weight — coarse-grained.
//! 2. **Theorem 4** (Fig. 9): an EPDF scheduler that derives deadlines
//!    from `I_PS` projections misses a deadline, so *zero* drift is
//!    impossible for any EPDF scheme.
//! 3. **Theorem 5** (Fig. 6): PD²-OI holds every per-event drift within
//!    two quanta on the same systems.
//!
//! ```sh
//! cargo run --example counterexample_tour
//! ```

use pfair_repro::prelude::*;
use pfair_repro::sched::epdf_ps::run_projected_epdf;

fn main() {
    theorem3();
    theorem4();
    theorem5();
    println!("\nall three lower-bound demonstrations behave exactly as the paper proves.");
}

/// Theorem 3: sweep the initial weight down and watch PD²-LJ's one-event
/// drift blow up while PD²-OI's stays under 2.
fn theorem3() {
    println!("Theorem 3 — PD2-LJ is coarse-grained (Fig. 8 generalization)");
    println!("{:>10} {:>14} {:>14}", "weight", "LJ drift", "OI drift");
    for c in [1i128, 2, 4, 9, 19] {
        let den = 2 * (c + 1);
        let mut w = Workload::new();
        w.join(0, 0, 1, den);
        w.reweight(0, 1, 1, 2); // wants half a processor, right away
        let horizon = (4 * den) as i64;
        let lj = simulate(SimConfig::leave_join(1, horizon), &w);
        let oi = simulate(SimConfig::oi(1, horizon), &w);
        println!(
            "{:>10} {:>14} {:>14}",
            format!("1/{}", den),
            format!("{}", lj.task(TaskId(0)).drift.max_abs()),
            format!("{}", oi.task(TaskId(0)).drift.max_abs())
        );
        assert!(oi.task(TaskId(0)).drift.max_abs_delta() <= rat(2, 1));
    }
    println!("  → the LJ column grows without bound; the OI column does not.\n");
}

/// Theorem 4: the Fig. 9 system under projected-deadline EPDF.
fn theorem4() {
    println!("Theorem 4 — every EPDF scheme can incur drift (Fig. 9)");
    let mut w = Workload::new();
    let mut id = 0u32;
    for _ in 0..10 {
        w.join(id, 0, 1, 7);
        w.leave(id, 7);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 0, 1, 6);
        w.leave(id, 6);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 6, 1, 14);
        id += 1;
    }
    for _ in 0..5 {
        w.join(id, 0, 1, 21);
        w.reweight(id, 7, 1, 3); // deadline projection jumps 21 → 9
        id += 1;
    }
    let run = run_projected_epdf(2, 12, &w);
    for m in &run.misses {
        println!(
            "  task {} quantum {} missed its projected deadline {}",
            m.task, m.quantum, m.deadline
        );
    }
    assert!(!run.misses.is_empty());
    println!("  → to avoid this miss, an EPDF scheme must shift its lag window: drift.\n");
}

/// Theorem 5: PD²-OI on the Fig. 6 systems — per-event drift ≤ 2.
fn theorem5() {
    println!("Theorem 5 — PD2-OI per-event drift is at most 2 (Fig. 6 systems)");
    for (label, initial, target, at) in [
        (
            "increase 3/20 → 1/2",
            (3i128, 20i128),
            (1i128, 2i128),
            10i64,
        ),
        ("decrease 2/5 → 3/20", (2, 5), (3, 20), 1),
    ] {
        let mut w = Workload::new();
        w.join(0, 0, initial.0, initial.1);
        for i in 1..=19 {
            w.join(i, 0, 3, 20);
        }
        w.reweight(0, at, target.0, target.1);
        let r = simulate(SimConfig::oi(4, 60), &w);
        let delta = r.task(TaskId(0)).drift.max_abs_delta();
        println!("  {label:<22} per-event drift = {delta}");
        assert!(delta <= rat(2, 1));
        assert!(r.is_miss_free());
    }
}
