//! Heavy tasks under full PD²: the group-deadline tie-break in action.
//!
//! The paper's reweighting rules cover light tasks (weight ≤ 1/2), but
//! PD² itself is optimal for *any* feasible set once the group-deadline
//! tie-break is in place. This example schedules the classic fully
//! utilized heavy set — two weight-8/11 tasks and one weight-6/11 task
//! on two processors — then mixes in adaptive light tasks beside a
//! heavy one, and shows the feasibility analysis that gates it all.
//!
//! ```sh
//! cargo run --example heavy_mixed
//! ```

use pfair_repro::core::analysis::{classify, hyperperiod, is_feasible, total_weight};
use pfair_repro::core::{rat, Weight};
use pfair_repro::prelude::*;

fn main() {
    // 1. Feasibility analysis for the classic heavy set.
    let set = [
        Weight::new(rat(8, 11)),
        Weight::new(rat(8, 11)),
        Weight::new(rat(6, 11)),
    ];
    println!("heavy set 8/11 + 8/11 + 6/11:");
    println!("  total weight      = {}", total_weight(&set));
    println!("  feasible on 2 CPUs: {}", is_feasible(&set, 2));
    println!("  hyperperiod       = {} slots", hyperperiod(&set));
    println!("  class             = {:?}", classify(&set));

    // 2. Schedule it at full utilization for 10 hyperperiods.
    let mut w = Workload::new();
    w.join(0, 0, 8, 11);
    w.join(1, 0, 8, 11);
    w.join(2, 0, 6, 11);
    let r = simulate(
        SimConfig::oi(2, 110).with_admission(AdmissionPolicy::Trusting),
        &w,
    );
    assert!(r.is_miss_free());
    println!("\nafter 110 slots (10 hyperperiods) on 2 CPUs, zero idle capacity:");
    for task in &r.tasks {
        println!(
            "  {} received {} quanta (ideal {})",
            task.id, task.scheduled_count, task.ps_total
        );
    }

    // 3. A heavy anchor plus adaptive light tasks: the light tasks
    //    reweight freely; requests touching the heavy class are refused.
    let mut w = Workload::new();
    w.join(0, 0, 3, 4); // heavy, static
    w.join(1, 0, 1, 10);
    w.join(2, 0, 1, 10);
    w.reweight(1, 10, 2, 5); // light ↔ light: fine
    w.reweight(1, 60, 1, 10);
    w.reweight(0, 20, 1, 2); // heavy task may not reweight
    w.reweight(2, 30, 2, 3); // light task may not become heavy
    let r = simulate(SimConfig::oi(2, 120), &w);
    assert!(r.is_miss_free());
    println!(
        "\nmixed run: {} light reweights enacted, {} heavy-class requests refused, 0 misses",
        r.counters.reweight_enactments, r.counters.rejected_heavy_reweights
    );
    println!(
        "max per-event drift among the adaptive light tasks: {} (bound: 2)",
        r.max_abs_drift_delta()
    );
}
