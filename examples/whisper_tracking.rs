//! The Whisper tracking workload: the paper's §5 evaluation scenario as
//! a runnable program.
//!
//! Three speakers revolve around a 5 cm pole in a 1 m × 1 m room with a
//! microphone in each corner; each of the 12 speaker/microphone pairs
//! is one task whose weight follows the pair's acoustic distance
//! (occlusion included). The example runs the same seeded scenario
//! under PD²-OI and PD²-LJ and prints the Fig. 11 metrics side by side.
//!
//! ```sh
//! cargo run --release --example whisper_tracking [speed_mps] [radius_m]
//! ```

use pfair_repro::sched::reweight::Scheme;
use pfair_repro::whisper::{run_whisper, summarize, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let speed: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.9);
    let radius: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.25);
    let runs = 15u64;

    println!(
        "Whisper: 3 speakers, radius {radius:.2} m, speed {speed:.1} m/s, occlusion on, {runs} seeded runs"
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>12}",
        "scheme", "max drift", "% of ideal", "misses", "heap ops"
    );

    for (name, scheme) in [("PD2-OI", Scheme::Oi), ("PD2-LJ", Scheme::LeaveJoin)] {
        let metrics: Vec<_> = (0..runs)
            .map(|seed| run_whisper(&Scenario::new(speed, radius, true, seed), scheme.clone()))
            .collect();
        let drift = summarize(&metrics.iter().map(|m| m.max_drift).collect::<Vec<_>>());
        let pct = summarize(&metrics.iter().map(|m| m.pct_of_ideal).collect::<Vec<_>>());
        let misses: usize = metrics.iter().map(|m| m.misses).sum();
        let heap = summarize(
            &metrics
                .iter()
                .map(|m| m.counters.heap_ops() as f64)
                .collect::<Vec<_>>(),
        );
        println!(
            "{:<8} {:>8.3}±{:<5.3} {:>8.2}±{:<5.2} {:>10} {:>12.0}",
            name, drift.mean, drift.ci98, pct.mean, pct.ci98, misses, heap.mean
        );
        assert_eq!(misses, 0, "no scheme may miss a deadline here");
    }

    println!(
        "\nthe paper's headline (§5): PD2-OI tracks the instantaneous ideal more closely than"
    );
    println!("PD2-LJ at every speed, and the gap widens as the speakers move faster.");
}
