//! Quickstart: schedule an adaptive task system under PD²-OI.
//!
//! Four processors run twenty weight-3/20 tasks; at time 10, one of
//! them discovers it needs a weight of 1/2 (say, its tracking target
//! sped up) and initiates a reweight. Fine-grained reweighting enacts
//! the change within two slots and the task's drift stays below the
//! Theorem-5 bound of two quanta.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pfair_repro::prelude::*;

fn main() {
    // 1. Describe the workload: joins and reweighting requests.
    let mut workload = Workload::new();
    for id in 0..20 {
        workload.join(id, 0, 3, 20); // weight 3/20 each, joining at t = 0
    }
    workload.reweight(0, 10, 1, 2); // task 0 wants weight 1/2 at t = 10

    // 2. Configure the scheduler: 4 CPUs, 100 slots, PD²-OI reweighting,
    //    condition-(W) policing, full trace recording.
    let config = SimConfig::oi(4, 100).with_history();

    // 3. Run.
    let result = simulate(config, &workload);

    // 4. Inspect.
    assert!(result.is_miss_free(), "Theorem 2: no deadline misses");
    let task0 = result.task(TaskId(0));
    println!("task 0 received {} quanta", task0.scheduled_count);
    println!("task 0 ideal (I_PS) allocation: {}", task0.ps_total);
    println!(
        "task 0 drift samples (era boundary → drift): {:?}",
        task0
            .drift
            .samples()
            .iter()
            .map(|s| format!("t={} → {}", s.at, s.drift))
            .collect::<Vec<_>>()
    );
    println!(
        "largest per-event drift: {} (Theorem 5 bound: 2)",
        task0.drift.max_abs_delta()
    );

    // 5. Render the reweighting task's subtask windows.
    let history = task0.history.as_ref().unwrap();
    println!("\nsubtask windows of task 0 ([release, deadline), X = scheduled slot):");
    println!("{}", pfair_repro::sched::render::ruler(40));
    print!(
        "{}",
        pfair_repro::sched::render::render_task("T0", history, 40)
    );

    assert!(task0.drift.max_abs_delta() <= rat(2, 1));
    println!("\nok: fine-grained reweighting enacted with constant drift");
}
