//! An adaptive video-analytics pipeline: a second domain-specific
//! workload in the spirit of the paper's introduction ("computer-vision
//! systems ... signal-processing applications").
//!
//! Eight camera-analysis tasks share two processors. Each task's cost
//! tracks its scene complexity: long quiet stretches at a low weight,
//! punctuated by activity bursts that demand an order of magnitude
//! more. Bursts arrive at different phases per camera. The example
//! compares pure PD²-OI, pure PD²-LJ, and a magnitude-threshold hybrid
//! that pays the fine-grained machinery only for the big jumps —
//! the "efficiency versus accuracy" knob.
//!
//! ```sh
//! cargo run --release --example adaptive_pipeline
//! ```

use pfair_repro::prelude::*;
use pfair_repro::sched::reweight::HybridPolicy;

const PROCESSORS: u32 = 2;
const HORIZON: i64 = 2_000;
const CAMERAS: u32 = 8;

/// Builds the bursty camera workload: weight 1/50 when quiet, 1/5
/// during a burst, with per-camera burst phases and small jitter steps
/// in between.
fn camera_workload() -> Workload {
    let mut w = Workload::new();
    for cam in 0..CAMERAS {
        w.join(cam, 0, 1, 50);
        let phase = 97 * (i64::from(cam) + 1); // staggered burst phases
        let mut t = phase;
        while t + 220 < HORIZON {
            w.reweight(cam, t, 1, 5); // burst begins: 10× the share
            w.reweight(cam, t + 60, 1, 8); // burst cooling
            w.reweight(cam, t + 120, 1, 50); // quiet again
            t += 400;
        }
    }
    w
}

fn main() {
    let workload = camera_workload();
    println!(
        "adaptive pipeline: {CAMERAS} cameras on {PROCESSORS} CPUs, {HORIZON} slots, bursty 1/50 ↔ 1/5 weights"
    );
    println!(
        "{:<26} {:>11} {:>12} {:>10} {:>9}",
        "scheme", "max drift", "% of ideal", "heap ops", "misses"
    );

    let schemes: Vec<(&str, Scheme)> = vec![
        ("PD2-LJ (pure)", Scheme::LeaveJoin),
        (
            "hybrid: OI for big jumps",
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 1))),
        ),
        ("PD2-OI (pure)", Scheme::Oi),
    ];

    for (name, scheme) in schemes {
        let cfg = SimConfig::oi(PROCESSORS, HORIZON).with_scheme(scheme);
        let r = simulate(cfg, &workload);
        let max_drift = r.max_abs_drift_at(HORIZON).to_f64();
        println!(
            "{:<26} {:>11.3} {:>12.2} {:>10} {:>9}",
            name,
            max_drift,
            r.mean_pct_of_ideal(),
            r.counters.heap_ops(),
            r.misses.len()
        );
        assert!(r.is_miss_free());
    }

    println!("\nthe hybrid matches PD2-OI's accuracy on this workload: the bursts are exactly");
    println!("the order-of-magnitude events its threshold routes through the fine-grained rules,");
    println!("while the small cooling steps ride the cheap leave/join path.");
}
