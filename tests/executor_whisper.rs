//! Full-stack integration: the Whisper workload driven through the
//! *real-time executor* — workload generation (`whisper-sim`), live
//! reweighting via the controller (`pfair-exec`), PD²-OI scheduling
//! (`pfair-sched`), and exact accounting (`pfair-core`), end to end.
//!
//! The executor runs in deterministic virtual time; the test replays
//! the scenario's reweight events at their exact slots by stepping one
//! quantum at a time, then checks the executed tick counts against the
//! engine's exact ideal allocations.

use pfair_repro::exec::ExecutorBuilder;
use pfair_repro::prelude::*;
use pfair_repro::whisper::{generate_workload, Scenario};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn whisper_through_the_real_executor() {
    let sc = Scenario::new(2.9, 0.25, true, 5);
    let workload = generate_workload(&sc);
    let events = workload.sorted_events();
    let horizon: i64 = 400; // a virtual-time prefix of the run

    // Register the 12 pair-tasks with their join weights.
    let mut builder = ExecutorBuilder::new(4).virtual_time();
    let mut handles = Vec::new();
    let counters: Vec<Arc<AtomicU64>> = (0..12).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, counter) in counters.iter().enumerate() {
        let join_weight = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Join(w) if e.task == TaskId(i as u32) => Some(w),
                _ => None,
            })
            .expect("every pair joins");
        let c = counter.clone();
        handles.push(builder.task(format!("pair-{i}"), join_weight, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        }));
    }
    let mut exec = builder.build();
    let ctl = exec.controller();

    // Replay the reweight schedule slot by slot.
    let mut cursor = 0usize;
    for t in 0..horizon {
        while cursor < events.len() && events[cursor].at == t {
            if let EventKind::Reweight(w) = events[cursor].kind {
                ctl.reweight(handles[events[cursor].task.idx()], w);
            }
            cursor += 1;
        }
        exec.run(1);
    }
    let report = exec.shutdown();

    assert!(report.sim.is_miss_free(), "Theorem 2 end to end");
    assert!(
        report.sim.max_abs_drift_delta() <= rat(2, 1),
        "Theorem 5 end to end"
    );
    assert!(
        report.sim.counters.reweight_initiations > 20,
        "the replay really reweighted"
    );

    // The executed tick counts equal the engine's scheduled counts and
    // track the exact ideal within the Pfair window plus drift.
    for (i, c) in counters.iter().enumerate() {
        let ticks = c.load(Ordering::Relaxed);
        let task = &report.sim.tasks[i];
        assert_eq!(ticks, task.scheduled_count, "pair-{i} tick accounting");
        let ideal = task.ps_total.to_f64();
        assert!(
            (ticks as f64 - ideal).abs() < 8.0,
            "pair-{i}: {ticks} ticks vs ideal {ideal:.2}"
        );
    }
    // No tick was lost to overruns in virtual time.
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(report.skips(*h), 0, "pair-{i}");
    }
}
