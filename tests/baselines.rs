//! Integration tests of the baseline schedulers (global EDF,
//! partitioned EDF, projected-deadline EPDF) against the Whisper
//! workload — the cross-scheme comparison of the companion papers.

use pfair_repro::sched::edf::{run_global_edf, EdfReweightMode};
use pfair_repro::sched::partitioned::run_partitioned_edf;
use pfair_repro::whisper::{generate_workload, Scenario, HORIZON, PROCESSORS};

/// Global EDF with boundary reweighting runs the Whisper workload
/// without deadline misses (it is never over-utilized after policing is
/// unnecessary: requested total stays under M).
#[test]
fn global_edf_boundary_handles_whisper() {
    let w = generate_workload(&Scenario::new(2.0, 0.25, true, 3));
    let run = run_global_edf(PROCESSORS, HORIZON, &w, EdfReweightMode::AtBoundary);
    assert!(run.misses.is_empty(), "misses: {:?}", run.misses.len());
    // Every task completed a substantial share of its ideal.
    for pct in run.pct_of_ideal() {
        assert!(pct > 50.0, "pct {pct}");
    }
}

/// Immediate EDF reweighting tracks the ideal at least as well as
/// boundary reweighting on matched seeds (the accuracy side of the
/// companion paper's trade-off).
#[test]
fn global_edf_immediate_is_more_accurate() {
    let mut wins = 0;
    const SEEDS: u64 = 5;
    for seed in 0..SEEDS {
        let w = generate_workload(&Scenario::new(2.9, 0.25, true, seed));
        let imm = run_global_edf(PROCESSORS, HORIZON, &w, EdfReweightMode::Immediate);
        let bnd = run_global_edf(PROCESSORS, HORIZON, &w, EdfReweightMode::AtBoundary);
        let mean = |r: &pfair_repro::sched::edf::EdfRun| {
            let p = r.pct_of_ideal();
            p.iter().sum::<f64>() / p.len() as f64
        };
        if mean(&imm) >= mean(&bnd) - 0.5 {
            wins += 1;
        }
    }
    assert!(wins >= SEEDS - 1, "immediate won only {wins}/{SEEDS}");
}

/// Partitioned EDF on Whisper: the weight swings force repartitioning
/// migrations or clamped grants — the "fine-grained reweighting is
/// provably impossible under partitioning" friction made visible.
#[test]
fn partitioned_edf_pays_migrations_or_clamps() {
    let mut total_friction = 0u64;
    for seed in 0..4 {
        let w = generate_workload(&Scenario::new(2.9, 0.40, true, seed));
        let run = run_partitioned_edf(PROCESSORS, HORIZON, &w);
        total_friction += run.migrations + run.clamped + run.rejected_joins;
    }
    assert!(
        total_friction > 0,
        "the adaptive workload should stress the partitioning"
    );
}

/// Partitioned EDF still schedules the bulk of the ideal work — it is a
/// *trade-off*, not a strawman.
#[test]
fn partitioned_edf_completes_most_work() {
    let w = generate_workload(&Scenario::new(2.0, 0.25, true, 9));
    let run = run_partitioned_edf(PROCESSORS, HORIZON, &w);
    let pcts = run.pct_of_ideal();
    let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
    assert!(mean > 60.0, "mean pct {mean}");
}
