//! Cross-crate integration tests: the Whisper workload generator
//! (`whisper-sim`) driving the PD² engine (`pfair-sched`) with exact
//! drift accounting (`pfair-core`).

use pfair_repro::prelude::*;
use pfair_repro::sched::reweight::HybridPolicy;
use pfair_repro::whisper::{generate_workload, run_whisper, Scenario, HORIZON, PROCESSORS};

/// Theorem 2 on the real workload: no Whisper run under PD²-OI misses,
/// at any speed.
#[test]
fn whisper_oi_is_always_miss_free() {
    for speed in [0.5, 2.0, 3.5] {
        for seed in 0..3 {
            let m = run_whisper(&Scenario::new(speed, 0.25, true, seed), Scheme::Oi);
            assert_eq!(m.misses, 0, "speed {speed} seed {seed}");
        }
    }
}

/// Theorem 5 on the real workload: per-event drift of every task stays
/// within two quanta under PD²-OI.
#[test]
fn whisper_oi_drift_is_fine_grained() {
    let sc = Scenario::new(2.9, 0.25, true, 11);
    let w = generate_workload(&sc);
    let r = simulate(SimConfig::oi(PROCESSORS, HORIZON), &w);
    assert!(r.is_miss_free());
    assert!(
        r.max_abs_drift_delta() <= rat(2, 1),
        "per-event drift {}",
        r.max_abs_drift_delta()
    );
}

/// The §5 headline on matched seeds: PD²-OI completes at least as much
/// of the ideal allocation as PD²-LJ, and accumulates no more drift.
#[test]
fn whisper_oi_dominates_lj() {
    let mut oi_wins_pct = 0;
    let mut oi_wins_drift = 0;
    const SEEDS: u64 = 6;
    for seed in 0..SEEDS {
        let sc = Scenario::new(2.9, 0.25, true, seed);
        let oi = run_whisper(&sc, Scheme::Oi);
        let lj = run_whisper(&sc, Scheme::LeaveJoin);
        if oi.pct_of_ideal >= lj.pct_of_ideal {
            oi_wins_pct += 1;
        }
        if oi.max_drift <= lj.max_drift {
            oi_wins_drift += 1;
        }
    }
    assert!(
        oi_wins_pct >= SEEDS - 1,
        "OI won pct only {oi_wins_pct}/{SEEDS}"
    );
    assert!(
        oi_wins_drift >= SEEDS - 1,
        "OI won drift only {oi_wins_drift}/{SEEDS}"
    );
}

/// Simulations are deterministic: the same seed yields bit-identical
/// metrics; different seeds differ.
#[test]
fn whisper_runs_are_deterministic() {
    let sc = Scenario::new(2.0, 0.25, true, 5);
    let a = run_whisper(&sc, Scheme::Oi);
    let b = run_whisper(&sc, Scheme::Oi);
    assert_eq!(a.max_drift, b.max_drift);
    assert_eq!(a.pct_of_ideal, b.pct_of_ideal);
    assert_eq!(a.counters, b.counters);
    let c = run_whisper(&Scenario::new(2.0, 0.25, true, 6), Scheme::Oi);
    assert!(a.max_drift != c.max_drift || a.pct_of_ideal != c.pct_of_ideal);
}

/// Hybrid schemes land between the pure schemes on the Whisper workload
/// (within noise): drift(OI) ≤ drift(hybrid) ⪅ drift(LJ).
#[test]
fn whisper_hybrid_sits_between() {
    let sc = Scenario::new(2.9, 0.25, true, 17);
    let oi = run_whisper(&sc, Scheme::Oi);
    let lj = run_whisper(&sc, Scheme::LeaveJoin);
    let hy = run_whisper(
        &sc,
        Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 5))),
    );
    assert_eq!(hy.misses, 0);
    let lo = oi.max_drift.min(lj.max_drift) - 0.75;
    let hi = oi.max_drift.max(lj.max_drift) + 0.75;
    assert!(
        (lo..=hi).contains(&hy.max_drift),
        "hybrid drift {} outside [{}, {}]",
        hy.max_drift,
        lo,
        hi
    );
}

/// Occlusion never breaks correctness and increases the total demand.
#[test]
fn whisper_occlusion_effects() {
    let occ = generate_workload(&Scenario::new(2.9, 0.35, true, 4));
    let no = generate_workload(&Scenario::new(2.9, 0.35, false, 4));
    let r_occ = simulate(SimConfig::oi(PROCESSORS, HORIZON), &occ);
    let r_no = simulate(SimConfig::oi(PROCESSORS, HORIZON), &no);
    assert!(r_occ.is_miss_free());
    assert!(r_no.is_miss_free());
    let ideal = |r: &SimResult| r.tasks.iter().map(|t| t.ps_total.to_f64()).sum::<f64>();
    assert!(
        ideal(&r_occ) >= ideal(&r_no),
        "occlusion should only increase demanded shares"
    );
}

/// Policing in action: the Whisper worst case (12 × 1/3 = 4.0) saturates
/// the four processors, yet (W) holds and nothing misses even when every
/// task asks for its maximum simultaneously.
#[test]
fn saturation_burst_is_policed_safely() {
    let mut w = Workload::new();
    for i in 0..12 {
        w.join(i, 0, 1, 10);
    }
    for i in 0..12 {
        w.reweight(i, 5, 1, 3); // everyone wants 1/3 at once: 4.0 total
        w.reweight(i, 60, 1, 10); // and calms down later
    }
    let r = simulate(SimConfig::oi(4, 200), &w);
    assert!(r.is_miss_free(), "misses: {:?}", r.misses);
    assert!(r.max_abs_drift_delta() <= rat(2, 1));
}

/// Over-subscription: requests beyond capacity get clamped, never
/// granted — the system stays correct under denial-of-capacity stress.
#[test]
fn oversubscription_is_clamped_not_fatal() {
    let mut w = Workload::new();
    for i in 0..20 {
        w.join(i, 0, 1, 10); // 2.0 total on 4 CPUs
    }
    for i in 0..20 {
        w.reweight(i, 10, 1, 2); // everyone wants 1/2: 10.0 ≫ 4
    }
    let r = simulate(SimConfig::oi(4, 120), &w);
    assert!(r.is_miss_free());
    // The grants cannot exceed capacity: total scheduled work per slot
    // is at most M; over 110 post-burst slots at most 4 quanta each.
    let total: u64 = r.tasks.iter().map(|t| t.scheduled_count).sum();
    assert!(total <= 4 * 120);
}

/// Full independent verification of a Whisper run: windows (including
/// admission-policed weights with large denominators), schedule sanity,
/// capacity, misses, and lag — certified by `pfair_sched::verify`.
#[test]
fn whisper_run_verifies_independently() {
    use pfair_repro::sched::verify::assert_verified;
    let sc = Scenario::new(2.9, 0.25, true, 21);
    let w = generate_workload(&sc);
    let r = simulate(SimConfig::oi(PROCESSORS, HORIZON).with_history(), &w);
    assert_verified(&r);
    let lj = simulate(
        SimConfig::oi(PROCESSORS, HORIZON)
            .with_scheme(Scheme::LeaveJoin)
            .with_history(),
        &w,
    );
    assert_verified(&lj);
}
