//! Offline stand-in for `rand_chacha`.
//!
//! Provides a type named [`ChaCha8Rng`] so workspace code and tests can
//! keep their `use rand_chacha::ChaCha8Rng` imports, but the stream is
//! SplitMix64, not ChaCha: this build environment cannot fetch the real
//! crate, and nothing in the workspace depends on the actual ChaCha
//! keystream — only on seeded determinism.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Vigna): passes BigCrush, one add + two xorshift-multiplies.
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v = rng.gen_range(0i64..100);
        assert!((0..100).contains(&v));
    }
}
