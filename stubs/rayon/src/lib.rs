//! Offline stand-in for `rayon`.
//!
//! The workspace only uses `par_iter()`/`into_par_iter()` followed by
//! `.map(..).collect()`. This stub implements exactly that shape, with
//! real data parallelism: the input is materialized, split into chunks,
//! and mapped on `std::thread::scope` threads (one per available core),
//! preserving input order in the collected output. It is not a work
//! stealing runtime — long-tail imbalance is not rebalanced — but the
//! experiment sweeps it serves are embarrassingly parallel batches of
//! similar cost.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt;

/// Eagerly materialized "parallel" iterator.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A pending parallel map, executed by [`ParMap::collect`] or
/// [`ParMap::for_each`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` (runs when the chain is consumed).
    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

fn run_parallel<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let chunk = n.div_ceil(threads);
    let mut staged: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        for (inp, outp) in staged.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (i, o) in inp.iter_mut().zip(outp.iter_mut()) {
                    let item = i.take().expect("staged item taken twice");
                    *o = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("parallel map slot unfilled"))
        .collect()
}

impl<I, O, F> ParMap<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    /// Runs the map across threads and collects results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        run_parallel(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map across threads for its side effects.
    pub fn for_each(self) {
        let _: Vec<O> = run_parallel(self.items, &self.f);
    }
}

impl<I> fmt::Debug for ParIter<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParIter")
            .field("len", &self.items.len())
            .finish()
    }
}

/// `rayon::prelude` — the traits that add the `par_iter` entry points.
pub mod prelude {
    /// Consuming entry point: `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        /// Element type of the parallel iterator.
        type Item: Send;
        /// Materializes the collection as a [`super::ParIter`].
        fn into_par_iter(self) -> super::ParIter<Self::Item>;
    }

    impl<C> IntoParallelIterator for C
    where
        C: IntoIterator,
        C::Item: Send,
    {
        type Item = C::Item;
        fn into_par_iter(self) -> super::ParIter<C::Item> {
            super::ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Borrowing entry point: `slice.par_iter()` (reached through deref
    /// from `Vec` and arrays).
    pub trait ParallelSlice<T: Sync> {
        /// Iterates the slice elements by reference, in parallel.
        fn par_iter(&self) -> super::ParIter<&T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> super::ParIter<&T> {
            super::ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, 2 * i as u64);
        }
    }

    #[test]
    fn par_iter_by_reference() {
        let data = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn actually_runs_on_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let n = 64usize;
        let _: Vec<()> = (0..n)
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        // With >1 core this uses >1 worker; on a 1-core box it may not.
        assert!(!ids.lock().unwrap().is_empty());
    }
}
