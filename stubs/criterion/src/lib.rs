//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition surface the `bench` crate uses
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`)
//! with a simple wall-clock measurement loop: a short warm-up, then
//! timed batches, reporting mean time per iteration to stdout. There is
//! no statistical analysis, outlier rejection, or HTML report — just
//! enough to keep the benchmarks compiling and producing usable
//! numbers offline.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name, parameter),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; the stub accepts and
/// ignores it (every batch is one setup + one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20ms of work or 10 iterations, whichever
        // comes first, to get code and caches hot and pick a batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 && warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Aim for ~100ms of measurement, capped to keep suites fast.
        let target_iters = (100_000_000u128 / per_iter.max(1)).clamp(1, 100_000);
        let start = Instant::now();
        let mut n = 0u128;
        while n < target_iters {
            black_box(routine());
            n += 1;
        }
        self.total = start.elapsed();
        self.iters_done = u64::try_from(n).unwrap_or(u64::MAX);
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up mirrors `iter`, with setup kept outside the clock.
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_iters < 10 && warm_spent < Duration::from_millis(20) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm_spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target_iters = (100_000_000u128 / per_iter.max(1)).clamp(1, 100_000);
        let mut measured = Duration::ZERO;
        let mut n = 0u128;
        while n < target_iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            n += 1;
        }
        self.total = measured;
        self.iters_done = u64::try_from(n).unwrap_or(u64::MAX);
    }
}

fn report(label: &str, b: &Bencher) {
    let mean = b.total.as_nanos() / u128::from(b.iters_done.max(1));
    println!(
        "bench: {:<50} {:>12} ns/iter ({} iters)",
        label, mean, b.iters_done
    );
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
    };
    f(&mut b);
    report(label, &b);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        run_one(&format!("{}/{}", self.name, id.into().label), |b| {
            routine(b)
        });
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut routine = routine;
        run_one(&format!("{}/{}", self.name, id.into().label), |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        run_one(&id.into().label, |b| routine(b));
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        sample_bench(&mut Criterion::default());
    }
}
