//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition surface the `bench` crate uses
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`)
//! with a simple wall-clock measurement loop: a short warm-up, then
//! timed batches, reporting mean and median time per iteration to
//! stdout. There is no statistical analysis, outlier rejection, or HTML
//! report — just enough to keep the benchmarks compiling and producing
//! usable numbers offline.
//!
//! Two extensions beyond the real criterion's surface support the
//! repo's benchmark-trajectory files (`BENCH_*.json`):
//!
//! * every finished benchmark is recorded in a process-wide registry
//!   that a bench target's `main` can drain with [`take_results`] and
//!   serialize however it likes;
//! * passing `--quick` on the bench binary's command line (i.e.
//!   `cargo bench -- --quick`) shrinks the warm-up and measurement
//!   budgets ~10×, for smoke runs in CI where only "does it run and
//!   produce numbers" matters, not timing stability.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark: its label and summary statistics.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark label (`group/name/parameter`).
    pub name: String,
    /// Median over the timed batches, in nanoseconds per iteration.
    pub median_ns: u128,
    /// Mean over the whole measurement, in nanoseconds per iteration.
    pub mean_ns: u128,
    /// Total measured iterations.
    pub iters: u64,
}

/// Process-wide registry of finished benchmarks, in execution order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every benchmark recorded so far (typically called once from
/// a bench target's `main`, after the groups have run).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results registry poisoned"))
}

/// Records an externally measured benchmark into the registry — for
/// targets whose comparison needs interleaved (paired) timing that the
/// sequential [`Bencher`] API cannot express, e.g. A/B overhead guards
/// where machine drift between two separate measurement windows would
/// swamp the difference being measured.
pub fn record_result(result: BenchResult) {
    RESULTS
        .lock()
        .expect("results registry poisoned")
        .push(result);
}

/// `true` iff `--quick` was passed on the bench binary's command line.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick"))
}

/// (warm-up budget, measurement budget) for the active mode.
///
/// `BENCH_MEASURE_MS` overrides the measurement budget (warm-up scales
/// to a fifth of it) — for runs that need tighter medians than the
/// fast default allows.
fn budgets() -> (Duration, Duration) {
    if let Some(ms) = std::env::var("BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms >= 1)
    {
        return (
            Duration::from_millis((ms / 5).max(1)),
            Duration::from_millis(ms),
        );
    }
    if quick_mode() {
        (Duration::from_millis(2), Duration::from_millis(10))
    } else {
        (Duration::from_millis(20), Duration::from_millis(100))
    }
}

/// Timed batches per benchmark; the median is taken across these.
const BATCHES: u128 = 7;

/// Identifies a benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name, parameter),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; the stub accepts and
/// ignores it (every batch is one setup + one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    /// Per-batch mean ns/iter; the median is taken across batches.
    samples: Vec<u128>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (warm_budget, measure_budget) = budgets();
        // Warm-up: run until the warm budget or 10 iterations, whichever
        // comes first, to get code and caches hot and pick a batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 && warm_start.elapsed() < warm_budget {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Split the measurement budget into BATCHES timed slices so a
        // median can be taken, capped to keep suites fast.
        let target_iters = (measure_budget.as_nanos() / per_iter.max(1)).clamp(BATCHES, 100_000);
        let batch = (target_iters / BATCHES).max(1);
        self.samples.clear();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            let mut n = 0u128;
            while n < batch {
                black_box(routine());
                n += 1;
            }
            let elapsed = t0.elapsed();
            self.samples.push(elapsed.as_nanos() / batch);
            total += elapsed;
            iters = iters.saturating_add(u64::try_from(batch).unwrap_or(u64::MAX));
        }
        self.total = total;
        self.iters_done = iters;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let (warm_budget, measure_budget) = budgets();
        // Warm-up mirrors `iter`, with setup kept outside the clock.
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_iters < 10 && warm_spent < warm_budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm_spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target_iters = (measure_budget.as_nanos() / per_iter.max(1)).clamp(BATCHES, 100_000);
        let batch = (target_iters / BATCHES).max(1);
        self.samples.clear();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..BATCHES {
            let mut elapsed = Duration::ZERO;
            let mut n = 0u128;
            while n < batch {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed();
                n += 1;
            }
            self.samples.push(elapsed.as_nanos() / batch);
            total += elapsed;
            iters = iters.saturating_add(u64::try_from(batch).unwrap_or(u64::MAX));
        }
        self.total = total;
        self.iters_done = iters;
    }

    /// Median of the per-batch ns/iter samples (`None` before any run).
    fn median_ns(&self) -> Option<u128> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

fn report(label: &str, b: &Bencher) {
    let mean = b.total.as_nanos() / u128::from(b.iters_done.max(1));
    let median = b.median_ns().unwrap_or(mean);
    println!(
        "bench: {:<50} {:>12} ns/iter (median {}, {} iters)",
        label, mean, median, b.iters_done
    );
    RESULTS
        .lock()
        .expect("results registry poisoned")
        .push(BenchResult {
            name: label.to_string(),
            median_ns: median,
            mean_ns: mean,
            iters: b.iters_done,
        });
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
        samples: Vec::new(),
    };
    f(&mut b);
    report(label, &b);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        run_one(&format!("{}/{}", self.name, id.into().label), |b| {
            routine(b)
        });
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut routine = routine;
        run_one(&format!("{}/{}", self.name, id.into().label), |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut routine = routine;
        run_one(&id.into().label, |b| routine(b));
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        sample_bench(&mut Criterion::default());
    }

    #[test]
    fn finished_benchmarks_land_in_the_registry() {
        Criterion::default().bench_function("registry_probe", |b| b.iter(|| black_box(2 + 2)));
        // Tests share the process-wide registry; filter rather than
        // assuming this test's entry is the only one.
        let mine: Vec<BenchResult> = take_results()
            .into_iter()
            .filter(|r| r.name == "registry_probe")
            .collect();
        assert_eq!(mine.len(), 1);
        assert!(mine[0].median_ns > 0);
        assert!(mine[0].iters > 0);
    }

    #[test]
    fn median_is_the_middle_batch_sample() {
        let b = Bencher {
            iters_done: 5,
            total: Duration::from_nanos(50),
            samples: vec![30, 10, 20, 40, 50],
        };
        assert_eq!(b.median_ns(), Some(30));
    }
}
