//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external dependencies are vendored as minimal
//! API-compatible stubs (see `stubs/README.md`). This one covers exactly
//! the surface the workspace uses: `Rng::gen_range` over integer and
//! `f64` ranges, `Rng::gen_bool`, and `SeedableRng::seed_from_u64`.
//!
//! The generator behind the trait is a SplitMix64 — deterministic for a
//! given seed, statistically fine for workload generation, and *not*
//! the real ChaCha stream. Experiments seeded identically will produce
//! different (but equally valid) random workloads than under the real
//! crates.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use core::ops::{Range, RangeInclusive};

/// Types that can produce a uniformly distributed value in a range.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 uniform mantissa bits, same construction as rand's f64 draw.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let off = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end.abs_diff(start) as u128 + 1;
                let off = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(off)
            }
        }
    )*};
}

impl_int_ranges!(i64, u64, i32, u32, usize, i128);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Fixed(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3i128..=40);
            assert!((3..=40).contains(&v));
            let w = rng.gen_range(0i64..7);
            assert!((0..7).contains(&w));
            let f = rng.gen_range(-0.02f64..0.02);
            assert!((-0.02..0.02).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Fixed(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
