//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`Just`], `prop::collection::vec`, the
//! [`proptest!`] macro (including `#![proptest_config(..)]` headers),
//! and the `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   printed; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly on re-run.
//! * `prop_assume!` skips the current case without replacement, so a
//!   heavily-assuming test runs fewer effective cases than `cases`.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (test name) via FNV-1a.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % span
    }
}

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy: Sized {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.abs_diff(start) as u128 + 1;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategies!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use core::fmt::Debug;
        use core::ops::{Range, RangeInclusive};

        /// An inclusive size range for generated collections.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.end > r.start, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy for `Vec`s whose length lies in `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the precondition does not hold. Only
/// valid directly inside a `proptest!` test body (it expands to
/// `continue` targeting the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                // Pre-render the sampled inputs; printed only when the
                // body panics (the guard is disarmed on success). Sampling
                // goes through a temporary so `$arg` may be any
                // irrefutable pattern (e.g. `(m, ws) in strat`).
                let mut inputs = String::new();
                $(
                    let sampled = $crate::Strategy::sample(&($strat), &mut rng);
                    inputs.push_str(&format!(
                        concat!("  ", stringify!($arg), " = {:?}\n"),
                        &sampled
                    ));
                    let $arg = sampled;
                )+
                let guard = $crate::CaseReporter { case, inputs };
                { $body }
                guard.disarm();
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

/// Drop guard that prints the failing case's inputs while unwinding.
pub struct CaseReporter {
    /// Zero-based index of the running case.
    pub case: u32,
    /// Pre-rendered sampled inputs.
    pub inputs: String,
}

impl CaseReporter {
    /// Forgets the guard after a successful case.
    pub fn disarm(self) {
        core::mem::forget(self);
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        eprintln!(
            "proptest case #{} failed with inputs:\n{}",
            self.case, self.inputs
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..100).prop_flat_map(|a| (Just(a), a..a + 10))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3i128..=40, y in 0u32..7) {
            prop_assert!((3..=40).contains(&x));
            prop_assert!(y < 7, "y = {}", y);
        }

        #[test]
        fn flat_map_dependency_holds(p in arb_pair()) {
            prop_assert!(p.1 >= p.0 && p.1 < p.0 + 10);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0i64..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }

        #[test]
        fn assume_skips(n in 0i64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
