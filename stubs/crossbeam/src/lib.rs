//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses only `crossbeam::channel::{unbounded, Sender,
//! Receiver, TryRecvError}`, with cloneable receivers (MPMC). This stub
//! implements that surface with a `Mutex<VecDeque>` + `Condvar` queue —
//! slower than real crossbeam but semantically equivalent for the
//! executor's job/completion queues.

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

/// MPMC channels: the `crossbeam::channel` module surface.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    // A poisoned queue mutex means another thread panicked while holding
    // it; the queue state itself is still a coherent VecDeque, so both
    // halves recover the guard rather than propagate the panic.
    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.shared);
            match inner.items.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
