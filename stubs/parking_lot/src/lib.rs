//! Offline stand-in for `parking_lot`.
//!
//! Exposes a [`Mutex`] with parking_lot's non-poisoning `lock()` API,
//! implemented over `std::sync::Mutex` (a poisoned lock is recovered,
//! matching parking_lot's behavior of not propagating panics).

// Stand-in for an external crate: the first-party float/unwrap policy
// (root clippy.toml) does not apply to mirrored third-party APIs.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
