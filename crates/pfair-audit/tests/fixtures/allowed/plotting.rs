// Fixture: a path exempted from the float lint via allow-paths.
// Expected: clean.
pub fn to_plot_coords(x: f64, y: f64) -> (f64, f64) {
    (x * 10.0, y * 10.0)
}
