//! Sanctioned: deterministic replacements — ordered collections and a
//! logical clock driven by the slot counter.

use std::collections::BTreeMap;

pub struct StableIndex {
    pub by_task: BTreeMap<u32, u64>,
}

pub fn fresh_stable() -> StableIndex {
    StableIndex {
        by_task: BTreeMap::new(),
    }
}

pub fn logical_stamp(slot: u64) -> u64 {
    slot
}
