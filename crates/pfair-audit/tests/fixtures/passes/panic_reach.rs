//! Known-bad: panic sources transitively reachable from the
//! configured entry point `Sched::run`.

pub struct Sched {
    slots: Vec<u64>,
}

impl Sched {
    pub fn run(&self, idx: usize) -> u64 {
        self.fetch_slot(idx).saturating_add(self.head_slot())
    }

    fn fetch_slot(&self, idx: usize) -> u64 {
        self.slots[idx]
    }

    fn head_slot(&self) -> u64 {
        *self.slots.first().unwrap()
    }
}
