//! Known-bad: nondeterminism sources in scheduling code — hash-order
//! collections, wall-clock reads, and pointer-derived values.

use std::collections::HashMap;

pub struct SlotIndex {
    pub by_task: HashMap<u32, u64>,
}

pub fn fresh_index() -> SlotIndex {
    SlotIndex {
        by_task: HashMap::new(),
    }
}

pub fn entropy(v: &[u8]) -> usize {
    let started = std::time::Instant::now();
    let _ = started;
    v.as_ptr() as usize
}
