//! Known-bad: `prove(overflow-bounds)` functions whose arithmetic the
//! interval domain cannot bound inside the declared types.

// audit: prove(overflow-bounds)
pub fn scaled_bias(x: i64) -> i64 {
    x * 8
}

// audit: prove(overflow-bounds)
pub fn bucket(slot: i64, buckets: i64) -> i64 {
    slot % buckets
}
