//! Sanctioned: the same arithmetic, bounded by `assume` contracts the
//! interval domain can discharge.

// audit: prove(overflow-bounds)
// audit: assume(x in -1000..=1000)
pub fn clamped_bias(x: i64) -> i64 {
    x * 8
}

// audit: prove(overflow-bounds)
// audit: assume(buckets in 1..=512)
pub fn checked_bucket(slot: i64, buckets: i64) -> i64 {
    slot.rem_euclid(buckets)
}
