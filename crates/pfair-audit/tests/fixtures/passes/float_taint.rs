//! Known-bad: a float-derived value laundered through an integer cast
//! into an exact `Rational` sink.

pub fn measured_share(ticks: u64, total: u64) -> f64 {
    ticks as f64 / total as f64
}

pub fn laundered_weight(ticks: u64, total: u64) -> Rational {
    let scaled = (measured_share(ticks, total) * 1000.0) as i64;
    Rational::new(scaled, 1000)
}
