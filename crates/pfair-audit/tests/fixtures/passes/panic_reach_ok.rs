//! Sanctioned: the same shape as `panic_reach.rs`, but every source
//! on the `SafeSched::run` call tree is either checked or carries a
//! typed allow with a reason.

pub struct SafeSched {
    slots: Vec<u64>,
}

impl SafeSched {
    pub fn run(&self, idx: usize) -> u64 {
        self.fetch_slot(idx).unwrap_or(0).saturating_add(self.head_slot())
    }

    fn fetch_slot(&self, idx: usize) -> Option<u64> {
        self.slots.get(idx).copied()
    }

    fn head_slot(&self) -> u64 {
        self.slots[0] // audit: allow(panic-reach, the slot ring is never constructed empty)
    }
}
