//! Sanctioned: exact integer accounting end to end — no float ever
//! exists, so nothing can launder into the `Rational`.

pub fn exact_weight(ticks: u32, total: u32) -> Rational {
    Rational::new(i64::from(ticks), i64::from(total))
}
