// Fixture: the dense task-slab hot-column scan (PR 10's storage
// layout) written against the invariants — a float mean over the
// next-release column, a lossy cast from bitmap word index into the
// slot domain with raw offset arithmetic, and a panicking cold-row
// lookup.
// Expected: no-float-in-scheduling + no-lossy-casts at line 10;
//           no-lossy-casts + raw-arithmetic-quarantine at line 15;
//           no-panic-in-library at line 20.
pub fn mean_release(next_release: &[i64], present: i64) -> i64 {
    (next_release.iter().sum::<i64>() as f64 / present as f64) as i64
}

/// Next-release column offset of set bit `bit` within word `word`.
pub fn release_offset(word: usize, bit: u32) -> i64 {
    word as i64 * 64 + i64::from(bit)
}

/// Cold row of `task`, panicking when the id was never admitted.
pub fn cold_row(rows: &[(u32, u64)], task: u32) -> u64 {
    rows.iter().find(|(t, _)| *t == task).expect("admitted id").1
}
