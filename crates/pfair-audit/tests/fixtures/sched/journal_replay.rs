// Fixture: a journal replay loop written without the sanctioned
// decode discipline — the entry count truncated through a lossy cast,
// panicking unwraps instead of surfaced decode errors, and a line
// checksum accumulated in floating point before being truncated back
// into the integer domain it is compared in.
// Expected: no-lossy-casts at line 10; no-panic-in-library at lines
//           16 and 17; no-float at lines 23 and 25; no-lossy-casts at
//           line 27.
pub fn entry_count(len: usize) -> u32 {
    len as u32
}

/// Decode a `seq,at` journal line, panicking on malformed input.
pub fn decode_entry(line: &str) -> (u64, i64) {
    let mut it = line.split(',');
    let seq = it.next().unwrap().parse().unwrap();
    let at = it.next().unwrap().parse().unwrap();
    (seq, at)
}

/// Accumulate a line checksum through floats and truncate it back.
pub fn line_checksum(bytes: &[u8]) -> u64 {
    let mut acc = 0.0f64;
    for &b in bytes {
        acc = acc * 31.0 + f64::from(b);
    }
    acc as u64
}
