// Fixture: unchecked wide-integer arithmetic outside the quarantine.
// Expected: raw-arithmetic-quarantine at lines 6, 11;
//           no-lossy-casts at line 6 (the cast itself);
//           audit-annotation at line 18 (unused allow).
pub fn lag_numerator(num: i128, den: i128, t: i64) -> i128 {
    num * t as i128
}

pub fn horizon_pad(t: i64) -> i64 {
    // A suffixed literal operand is a raw wide add.
    t + 10_000i64
}

pub fn checked_is_fine(num: i128, t: i128) -> Option<i128> {
    num.checked_mul(t) // not flagged: checked_* is the sanctioned form
}

// audit: allow(raw-arithmetic, stale: the line below no longer does arithmetic)
pub fn nothing_here(t: i64) -> i64 {
    t
}
