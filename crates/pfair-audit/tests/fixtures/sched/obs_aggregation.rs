// Fixture: probe-metrics aggregation (the pfair-obs histogram/registry
// idiom) written against the observability invariants — float bucket
// math, lossy index casts, and a panicking lookup in the aggregation
// path.
// Expected: no-float-in-scheduling + no-lossy-casts at lines 8 and 9;
//           no-panic-in-library at line 14.
pub fn bucket_of(value: u64) -> usize {
    let log = (value as f64).log2();
    (log / 2.0f64) as usize
}

/// Total of one named counter, panicking when the name is missing.
pub fn counter_total(counters: &[(String, u64)], name: &str) -> u64 {
    counters.iter().find(|(n, _)| n == name).unwrap().1
}
