// Fixture: the same key packing written in the sanctioned form — the
// bias clamped into its band so the shifted-domain sum cannot wrap,
// `From`/`try_from` width changes, and the out-of-band case surfaced
// as a value instead of a panic.
// Expected: no findings.
pub fn pack_key(deadline: i64, b: bool, tie: u32) -> u128 {
    let bound: i64 = 1 << 46;
    let clamped = deadline.clamp(-bound, bound - 1);
    let biased = u128::try_from(clamped + bound).unwrap_or(0);
    (biased << 33) | (u128::from(!b) << 32) | u128::from(tie)
}

/// Recover the deadline field, surfacing out-of-band keys as a value.
pub fn unpack_deadline(key: u128) -> Option<i64> {
    let bound: i64 = 1 << 46;
    let field = i64::try_from((key >> 33) & ((1 << 47) - 1)).ok()?;
    field.checked_sub(bound)
}
