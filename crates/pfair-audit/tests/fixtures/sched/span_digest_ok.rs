// Fixture: the same digest scaling written in the sanctioned form —
// checked multiplication keeps the scaled totals in the integer
// domain, widths widen losslessly, and a task missing from the digest
// surfaces as a value, not a panic.
// Expected: no findings.
pub fn scaled_schedules(per_period: u64, periods: u64) -> Option<u64> {
    per_period.checked_mul(periods)
}

/// Releases contributed by `periods` repetitions of one task's delta.
pub fn scaled_releases(per_period: i64, periods: u32) -> Option<i64> {
    per_period.checked_mul(i64::from(periods))
}

/// One task's per-period delta, absent tasks surfacing as `None`.
pub fn task_delta(per_task: &[(u32, u64)], task: u32) -> Option<u64> {
    per_task.iter().find(|(t, _)| *t == task).map(|(_, d)| *d)
}
