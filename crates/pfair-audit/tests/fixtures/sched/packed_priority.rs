// Fixture: a packed PD² priority key built without the sanctioned
// conversions — the deadline bias is raw suffixed-literal arithmetic
// flowing through bare `as` width changes, and unpacking panics on
// out-of-band keys instead of propagating the invariant.
// Expected: no-lossy-casts + raw-arithmetic-quarantine at line 9;
//           no-lossy-casts at line 10; no-lossy-casts at line 16;
//           no-panic-in-library at line 17.
pub fn pack_key(deadline: i64, b: bool, tie: u32) -> u128 {
    let biased = (deadline + 70368744177664i64) as u128;
    let low = (tie as u128) | (u128::from(!b) << 32);
    (biased << 33) | low
}

/// Recover the deadline field, panicking on out-of-band keys.
pub fn unpack_deadline(key: u128) -> i64 {
    let field = (key >> 33) as i64;
    field.checked_sub(70368744177664).unwrap()
}
