// Fixture: annotation hygiene.
// Expected: audit-annotation at line 4 (unknown lint name).
pub fn noop() {}
// audit: allow(flaot, typo in the lint name)
