// Fixture: a busy-span batch jump (the `phi^k` idiom) written without
// the sanctioned helpers — a float estimate of the whole periods left
// before the horizon, raw arithmetic for the batched lag delta, lossy
// casts back into the slot domain, and a panic instead of a mismatch
// verdict when the probe index is out of range.
// Expected: no-float-in-scheduling + no-lossy-casts at line 11;
//           no-lossy-casts at line 12; no-lossy-casts +
//           raw-arithmetic-quarantine at line 17; no-panic-in-library
//           at line 22.
pub fn whole_periods(horizon: i64, t0: i64, period: i64) -> i64 {
    let est = (horizon - t0) as f64 / period as f64;
    est as i64
}

/// Apply the verified per-period lag delta `k` more times.
pub fn jump_lag(lag_per_period: i128, k: i64) -> i128 {
    lag_per_period * k as i128
}

/// Fetch the verified per-period delta, panicking on a bad index.
pub fn period_delta(deltas: &[i64], k: usize) -> i64 {
    *deltas.get(k).unwrap()
}
