// Fixture: panicking calls in library code.
// Expected: no-panic-in-library at lines 4, 9, 13.
pub fn pick(v: &[u64]) -> u64 {
    let first = v.first().unwrap();
    *first
}

pub fn must(v: Option<u64>) -> u64 {
    v.expect("scheduling state corrupted")
}

pub fn bail() {
    panic!("unreachable slot");
}

// audit: allow(panic, overflow here is documented API contract, as in rational.rs)
pub fn documented(v: Option<u64>) -> u64 { v.expect("documented invariant") }

#[test]
fn in_test_code_unwrap_is_fine() {
    let v = Some(3u64).unwrap();
    assert_eq!(v, 3);
}
