// Fixture: bare `as` casts on scheduling quantities.
// Expected: no-lossy-casts at lines 5, 12;
//           audit-annotation at line 12 (allow without reason).
pub fn truncate_slot(t: i64) -> u32 {
    t as u32
}

pub fn widen_checked(t: u32) -> i64 {
    i64::from(t) // the blessed spelling; not flagged
}

pub fn annotated_badly(t: i64) -> usize { t as usize } // audit: allow(lossy-cast)

// audit: allow(lossy-cast, index already bounds-checked against the task table)
pub fn annotated_well(t: u32) -> usize { t as usize }
