// Fixture: the same aggregation written in the sanctioned pfair-obs
// form — exact power-of-two bucketing via integer log2, checked width
// conversions, and absent names surfacing as values, not panics.
// Expected: no findings.
pub fn bucket_of(value: u64) -> Option<usize> {
    let log = value.checked_ilog2()?;
    usize::try_from(log).ok().map(|b| b.saturating_add(1))
}

/// Total of one named counter, absent names surfacing as `None`.
pub fn counter_total(counters: &[(String, u64)], name: &str) -> Option<u64> {
    counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}
