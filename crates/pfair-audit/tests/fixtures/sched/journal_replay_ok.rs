// Fixture: the same journal replay written in the sanctioned form —
// `try_from` width changes, decode errors surfaced as values, and the
// line checksum kept in the exact integer domain end to end.
// Expected: no findings.
pub fn entry_count(len: usize) -> Option<u32> {
    u32::try_from(len).ok()
}

/// Decode a `seq,at` journal line, surfacing malformed input as `None`.
pub fn decode_entry(line: &str) -> Option<(u64, i64)> {
    let mut it = line.split(',');
    let seq = it.next()?.parse().ok()?;
    let at = it.next()?.parse().ok()?;
    Some((seq, at))
}

/// Accumulate the line checksum with exact wrapping integer arithmetic
/// (FNV-1a), never leaving the integer domain.
pub fn line_checksum(bytes: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        acc = (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    acc
}
