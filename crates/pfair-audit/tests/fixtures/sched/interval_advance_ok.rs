// Fixture: the same interval jump written in the sanctioned form —
// checked wide arithmetic, `From` conversions, and the invariant
// surfaced as a value instead of a panic.
// Expected: no findings.
pub fn completion_slots(rem_num: i128, swt_den: i64, cum: i128) -> Option<i128> {
    let scaled = rem_num.checked_mul(i128::from(swt_den))?;
    let den = cum.checked_add(1)?;
    Some(scaled / den)
}

/// Jump the tracker total, surfacing the invariant as a value.
pub fn jump_total(per_interval: &[i64], k: usize) -> Option<i64> {
    per_interval.get(k).copied()
}
