// Fixture: scaling a verified span digest by the jump count (the
// exact-aggregate observability idiom) written against the invariants —
// a float estimate of the scaled schedule total, a lossy cast back
// into the counter domain, raw arithmetic for the per-period release
// total, and a panicking per-task lookup in the digest.
// Expected: no-float-in-scheduling + no-lossy-casts at line 10;
//           no-lossy-casts + raw-arithmetic-quarantine at line 15;
//           no-panic-in-library at line 20.
pub fn scaled_schedules(per_period: u64, periods: u64) -> u64 {
    (per_period as f64 * periods as f64) as u64
}

/// Releases contributed by `periods` repetitions of one task's delta.
pub fn scaled_releases(per_period: i64, periods: u32) -> i64 {
    per_period * periods as i64
}

/// One task's per-period delta, panicking when it is not in the digest.
pub fn task_delta(per_task: &[(u32, u64)], task: u32) -> u64 {
    per_task.iter().find(|(t, _)| *t == task).expect("task").1
}
