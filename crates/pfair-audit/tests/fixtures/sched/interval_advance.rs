// Fixture: a closed-form interval jump (the `advance_to` idiom) written
// without the sanctioned helpers — raw wide arithmetic for the
// completion count, a lossy slot cast, and a panic instead of a
// documented invariant.
// Expected: no-lossy-casts + raw-arithmetic-quarantine at line 9;
//           raw-arithmetic-quarantine at line 10; no-lossy-casts at
//           line 11; no-panic-in-library at line 16.
pub fn completion_slots(rem_num: i128, swt_den: i64, cum: i128) -> i64 {
    let scaled = rem_num * swt_den as i128;
    let k = scaled / (cum + 1i128);
    k as i64
}

/// Jump the tracker total, panicking instead of surfacing the invariant.
pub fn jump_total(per_interval: &[i64], k: usize) -> i64 {
    *per_interval.get(k).unwrap()
}
