// Fixture: the same busy-span batch jump written in the sanctioned
// form — checked integer division for the period count, checked
// multiplication for the batched delta, and the probe mismatch
// surfaced as a value instead of a panic.
// Expected: no findings.
pub fn whole_periods(horizon: i64, t0: i64, period: i64) -> Option<i64> {
    let span = horizon.checked_sub(t0)?;
    span.checked_div(period)
}

/// Apply the verified per-period lag delta `k` more times.
pub fn jump_lag(lag_per_period: i128, k: i64) -> Option<i128> {
    lag_per_period.checked_mul(i128::from(k))
}

/// Fetch the verified per-period delta, surfacing a bad index as None.
pub fn period_delta(deltas: &[i64], k: usize) -> Option<i64> {
    deltas.get(k).copied()
}
