// Fixture: floating point leaking into scheduling code.
// Expected: no-float-in-scheduling at lines 5, 6, 9, 10;
//           no-lossy-casts at line 10.
pub struct LagEstimate {
    pub approx: f64,
    pub tolerance: f32,
}

pub fn mean_lag(total: i64, n: i64) -> f64 {
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    // Test code may approximate; not flagged.
    pub fn pct(x: f64) -> f64 {
        x * 100.0
    }
}
