// Fixture: the same hot-column scan written in the sanctioned form —
// exact integer division for the column mean, lossless widening with a
// checked narrowing back into the id domain, and an unadmitted id
// surfacing as a value, not a panic.
// Expected: no findings.
pub fn mean_release(next_release: &[i64], present: i64) -> Option<i64> {
    next_release.iter().sum::<i64>().checked_div(present)
}

/// Next-release column offset of set bit `bit` within word `word`.
pub fn release_offset(word: usize, bit: u32) -> Option<i64> {
    let base = i64::try_from(word).ok()?.checked_mul(64)?;
    base.checked_add(i64::from(bit))
}

/// Cold row of `task`, unadmitted ids surfacing as `None`.
pub fn cold_row(rows: &[(u32, u64)], task: u32) -> Option<u64> {
    rows.iter().find(|(t, _)| *t == task).map(|(_, row)| *row)
}
