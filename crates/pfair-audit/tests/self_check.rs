//! The workspace must pass its own audit: `cargo test -p pfair-audit`
//! fails the moment a float, bare cast, panic, or stray wide-integer
//! operation sneaks into the scheduling crates without justification.

use std::path::Path;

use pfair_audit::audit_root;
use pfair_audit::config::Config;

#[test]
fn workspace_passes_its_own_audit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root");
    let config_src =
        std::fs::read_to_string(root.join("audit.toml")).expect("audit.toml at workspace root");
    let cfg = Config::parse(&config_src).expect("audit.toml parses");
    let findings = audit_root(root, &cfg).expect("workspace tree readable");
    let pretty = findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        findings.is_empty(),
        "the workspace must be audit-clean; findings:\n{pretty}"
    );
}
