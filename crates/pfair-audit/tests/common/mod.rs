//! Shared fixture-tree configuration for the integration tests.

use pfair_audit::config::Config;
use pfair_audit::lints::{CATALOG, NO_FLOAT, NO_LOSSY_CASTS, NO_PANIC, PANIC_REACH, RAW_ARITH};

/// A config mirroring the real audit.toml's shape, scoped to the
/// fixture tree: `sched/` plays the scheduling crates, `allowed/` the
/// float-exempt report code, and `passes/` the AST/call-graph pass
/// corpus (kept outside the token lints' scope so each pair exercises
/// exactly one pass).
pub fn fixture_config() -> Config {
    let mut cfg = Config::default();
    for (lint, _) in CATALOG {
        cfg.lints.entry((*lint).to_string()).or_default();
    }
    let float = cfg.lints.get_mut(NO_FLOAT).unwrap();
    float.paths.extend(["sched".into(), "allowed".into()]);
    float.allow_paths.push("allowed".into());
    for lint in [NO_LOSSY_CASTS, NO_PANIC, RAW_ARITH] {
        cfg.lints.get_mut(lint).unwrap().paths.push("sched".into());
    }
    cfg.lints
        .get_mut(PANIC_REACH)
        .unwrap()
        .entry_points
        .extend(["Sched::run".into(), "SafeSched::run".into()]);
    cfg
}
