//! Golden snapshot of `pfair-audit --report json` over the fixture
//! corpus: the machine-readable report is a CI interface, so its
//! exact shape — key order, entry-point verdicts, per-lint tallies,
//! discharged-allow rendering — is pinned byte for byte.
//!
//! To regenerate after an intentional format or fixture change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pfair-audit --test report_snapshot
//! ```

use std::path::Path;

use pfair_audit::{audit_report, report::render_json};

mod common;
use common::fixture_config;

#[test]
fn json_report_matches_the_golden_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let report = audit_report(&root, &fixture_config()).expect("fixture tree readable");
    let got = render_json(&report);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/report.golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect(
        "tests/report.golden.json missing; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p pfair-audit --test report_snapshot",
    );
    assert!(
        got == want,
        "JSON report drifted from the golden snapshot; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1.\n--- got ---\n{got}\n--- want ---\n{want}"
    );
}
