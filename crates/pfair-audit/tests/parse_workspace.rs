//! Acceptance gate: the hand-rolled parser must shape every `.rs`
//! file in the workspace without a single recovered error. The audit
//! passes reason over the AST, so a parse error is a blind spot.

use std::path::{Path, PathBuf};

use pfair_audit::lexer::LexFile;
use pfair_audit::parser::parse_file;

fn workspace_root() -> PathBuf {
    // crates/pfair-audit -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Every in-tree source file — including the audit's own fixtures,
/// the vendored stubs, and this very test — parses cleanly.
#[test]
fn whole_workspace_parses_without_errors() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect(&root, &mut files);
    files.sort();
    assert!(
        files.len() > 30,
        "workspace walk looks wrong: only {} files under {}",
        files.len(),
        root.display()
    );
    let mut failures = Vec::new();
    let mut parsed_fns = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read source");
        let lex = LexFile::lex(&src);
        let (file, errors) = parse_file(&lex);
        let mut fns = 0usize;
        for item in &file.items {
            count_fns(item, &mut fns);
        }
        parsed_fns += fns;
        for e in errors {
            failures.push(format!("{}:{}: {}", path.display(), e.line, e.message));
        }
    }
    assert!(
        failures.is_empty(),
        "parser errors in {} location(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    // Sanity check the parser is actually extracting structure, not
    // recovering everything into `Other`.
    assert!(
        parsed_fns > 300,
        "suspiciously few functions parsed: {parsed_fns}"
    );
}

fn count_fns(item: &pfair_audit::ast::Item, n: &mut usize) {
    use pfair_audit::ast::ItemKind;
    match &item.kind {
        ItemKind::Fn(_) => *n += 1,
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for it in items {
                count_fns(it, n);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for it in items {
                count_fns(it, n);
            }
        }
        _ => {}
    }
}
