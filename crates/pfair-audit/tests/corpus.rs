//! Runs the audit over the known-bad fixture corpus and asserts the
//! exact set of diagnostics, per fixture, line by line.

use std::path::Path;

use pfair_audit::audit_root;
use pfair_audit::lints::{
    BAD_ANNOTATION, FLOAT_TAINT, NONDETERMINISM, NO_FLOAT, NO_LOSSY_CASTS, NO_PANIC,
    OVERFLOW_INTERVAL, PANIC_REACH, RAW_ARITH,
};

mod common;
use common::fixture_config;

#[test]
fn corpus_produces_exactly_the_expected_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");

    let got: Vec<(String, u32, String)> = findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.lint.clone()))
        .collect();

    let expected: Vec<(String, u32, String)> = [
        ("passes/float_taint.rs", 10, FLOAT_TAINT),
        ("passes/float_taint.rs", 10, FLOAT_TAINT),
        ("passes/nondeterminism.rs", 4, NONDETERMINISM),
        ("passes/nondeterminism.rs", 6, NONDETERMINISM),
        ("passes/nondeterminism.rs", 12, NONDETERMINISM),
        ("passes/nondeterminism.rs", 17, NONDETERMINISM),
        ("passes/nondeterminism.rs", 19, NONDETERMINISM),
        ("passes/overflow_interval.rs", 6, OVERFLOW_INTERVAL),
        ("passes/overflow_interval.rs", 11, OVERFLOW_INTERVAL),
        ("passes/overflow_interval.rs", 11, OVERFLOW_INTERVAL),
        ("passes/panic_reach.rs", 14, PANIC_REACH),
        ("passes/panic_reach.rs", 18, PANIC_REACH),
        ("sched/bad_annotation.rs", 4, BAD_ANNOTATION),
        ("sched/busy_span.rs", 11, NO_FLOAT),
        ("sched/busy_span.rs", 11, NO_LOSSY_CASTS),
        ("sched/busy_span.rs", 12, NO_LOSSY_CASTS),
        ("sched/busy_span.rs", 17, NO_LOSSY_CASTS),
        ("sched/busy_span.rs", 17, RAW_ARITH),
        ("sched/busy_span.rs", 22, NO_PANIC),
        ("sched/float_in_kernel.rs", 5, NO_FLOAT),
        ("sched/float_in_kernel.rs", 6, NO_FLOAT),
        ("sched/float_in_kernel.rs", 9, NO_FLOAT),
        ("sched/float_in_kernel.rs", 10, NO_FLOAT),
        ("sched/float_in_kernel.rs", 10, NO_LOSSY_CASTS),
        ("sched/interval_advance.rs", 9, NO_LOSSY_CASTS),
        ("sched/interval_advance.rs", 9, RAW_ARITH),
        ("sched/interval_advance.rs", 10, RAW_ARITH),
        ("sched/interval_advance.rs", 11, NO_LOSSY_CASTS),
        ("sched/interval_advance.rs", 16, NO_PANIC),
        ("sched/journal_replay.rs", 10, NO_LOSSY_CASTS),
        ("sched/journal_replay.rs", 16, NO_PANIC),
        ("sched/journal_replay.rs", 17, NO_PANIC),
        ("sched/journal_replay.rs", 23, NO_FLOAT),
        ("sched/journal_replay.rs", 25, NO_FLOAT),
        ("sched/journal_replay.rs", 27, NO_LOSSY_CASTS),
        ("sched/lossy_casts.rs", 5, NO_LOSSY_CASTS),
        ("sched/lossy_casts.rs", 12, BAD_ANNOTATION),
        ("sched/lossy_casts.rs", 12, NO_LOSSY_CASTS),
        ("sched/obs_aggregation.rs", 8, NO_FLOAT),
        ("sched/obs_aggregation.rs", 8, NO_LOSSY_CASTS),
        ("sched/obs_aggregation.rs", 9, NO_FLOAT),
        ("sched/obs_aggregation.rs", 9, NO_LOSSY_CASTS),
        ("sched/obs_aggregation.rs", 14, NO_PANIC),
        ("sched/packed_priority.rs", 9, NO_LOSSY_CASTS),
        ("sched/packed_priority.rs", 9, RAW_ARITH),
        ("sched/packed_priority.rs", 10, NO_LOSSY_CASTS),
        ("sched/packed_priority.rs", 16, NO_LOSSY_CASTS),
        ("sched/packed_priority.rs", 17, NO_PANIC),
        ("sched/panics.rs", 4, NO_PANIC),
        ("sched/panics.rs", 9, NO_PANIC),
        ("sched/panics.rs", 13, NO_PANIC),
        ("sched/raw_arithmetic.rs", 6, NO_LOSSY_CASTS),
        ("sched/raw_arithmetic.rs", 6, RAW_ARITH),
        ("sched/raw_arithmetic.rs", 11, RAW_ARITH),
        ("sched/raw_arithmetic.rs", 18, BAD_ANNOTATION),
        ("sched/span_digest.rs", 10, NO_FLOAT),
        ("sched/span_digest.rs", 10, NO_LOSSY_CASTS),
        ("sched/span_digest.rs", 15, NO_LOSSY_CASTS),
        ("sched/span_digest.rs", 15, RAW_ARITH),
        ("sched/span_digest.rs", 20, NO_PANIC),
        ("sched/task_slab.rs", 10, NO_FLOAT),
        ("sched/task_slab.rs", 10, NO_LOSSY_CASTS),
        ("sched/task_slab.rs", 15, NO_LOSSY_CASTS),
        ("sched/task_slab.rs", 15, RAW_ARITH),
        ("sched/task_slab.rs", 20, NO_PANIC),
    ]
    .into_iter()
    .map(|(p, l, lint)| (p.to_string(), l, lint.to_string()))
    .collect();

    let pretty = findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(got, expected, "full diagnostics:\n{pretty}");
}

#[test]
fn allowed_paths_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings.iter().any(|f| f.path.starts_with("allowed/")),
        "float-exempt path should produce no findings"
    );
}

#[test]
fn sanctioned_interval_advancement_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings
            .iter()
            .any(|f| f.path == "sched/interval_advance_ok.rs"),
        "checked closed-form advancement should audit clean"
    );
}

#[test]
fn sanctioned_busy_span_jump_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings.iter().any(|f| f.path == "sched/busy_span_ok.rs"),
        "checked period counting, checked delta scaling, and a \
         value-surfaced probe mismatch should audit clean"
    );
}

#[test]
fn sanctioned_journal_replay_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings
            .iter()
            .any(|f| f.path == "sched/journal_replay_ok.rs"),
        "try_from widths, value-surfaced decode errors, and an \
         integer-domain checksum should audit clean"
    );
}

#[test]
fn sanctioned_packed_priority_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings
            .iter()
            .any(|f| f.path == "sched/packed_priority_ok.rs"),
        "clamped bias and try_from width changes should audit clean"
    );
}

/// Each pass pair's `_ok` twin — checked lookups plus a typed allow
/// (panic-reach), ordered collections and logical clocks
/// (nondeterminism), `assume`-bounded arithmetic (overflow-interval),
/// and float-free accounting (float-taint) — must audit clean.
#[test]
fn sanctioned_pass_fixtures_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    for ok in [
        "passes/panic_reach_ok.rs",
        "passes/nondeterminism_ok.rs",
        "passes/overflow_interval_ok.rs",
        "passes/float_taint_ok.rs",
    ] {
        assert!(
            !findings.iter().any(|f| f.path == ok),
            "{ok} should audit clean; findings:\n{}",
            findings
                .iter()
                .filter(|f| f.path == ok)
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Both fixture entry points resolve, and only the sanctioned one is
/// panic-free: the pass's verdict, not just its findings, must track
/// the fixture pair.
#[test]
fn fixture_entry_points_split_on_panic_freedom() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let report = pfair_audit::audit_report(&root, &fixture_config()).expect("fixture tree");
    let by_spec = |spec: &str| {
        report
            .entry_points
            .iter()
            .find(|e| e.spec == spec)
            .unwrap_or_else(|| panic!("entry `{spec}` missing from the report"))
    };
    let bad = by_spec("Sched::run");
    assert!(bad.resolved && !bad.panic_free, "{bad:?}");
    let ok = by_spec("SafeSched::run");
    assert!(ok.resolved && ok.panic_free, "{ok:?}");
}

#[test]
fn sanctioned_span_digest_scaling_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings.iter().any(|f| f.path == "sched/span_digest_ok.rs"),
        "checked digest scaling and a value-surfaced task lookup should audit clean"
    );
}

#[test]
fn sanctioned_task_slab_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings.iter().any(|f| f.path == "sched/task_slab_ok.rs"),
        "exact column accounting, checked id narrowing, and a \
         value-surfaced cold-row lookup should audit clean"
    );
}

#[test]
fn sanctioned_obs_aggregation_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let findings = audit_root(&root, &fixture_config()).expect("fixture tree readable");
    assert!(
        !findings
            .iter()
            .any(|f| f.path == "sched/obs_aggregation_ok.rs"),
        "integer-log2 bucketing and value-propagating lookups should audit clean"
    );
}
