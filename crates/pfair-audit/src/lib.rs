//! pfair-audit: workspace-wide static analysis for the Pfair
//! reproduction.
//!
//! The repository's claim to reproduce "Task Reweighting on
//! Multiprocessors: Efficiency versus Accuracy" rests on invariants the
//! compiler cannot check: lag/drift/weight arithmetic is *exact*
//! (no floats), quantities cross integer widths only through checked
//! conversions, scheduling library code never panics on malformed
//! input, and unchecked wide-integer arithmetic stays quarantined in
//! the two modules whose overflow behavior is documented policy.
//!
//! Version 2 grows the token lints into a three-stage analyzer: a
//! hand-rolled recursive-descent parser ([`parser`]) produces per-file
//! ASTs ([`ast`]), a workspace call graph ([`callgraph`]) links them,
//! and four passes ([`passes`]) prove panic-freedom of the scheduling
//! entry points, the absence of nondeterminism sources, overflow
//! bounds of annotated arithmetic (via the interval interpreter in
//! [`absint`]), and that float-derived values never launder into
//! exact quantities.
//!
//! The standalone binary drives it:
//!
//! ```text
//! cargo run -p pfair-audit -- check .
//! cargo run -p pfair-audit -- check . --report json --out audit.json
//! ```
//!
//! It exits nonzero with `file:line` diagnostics when any invariant is
//! violated. Scope and path-level exemptions live in the checked-in
//! `audit.toml`; line-level exemptions are `// audit: allow(<lint>,
//! <reason>)` comments, which must carry a reason and must actually
//! suppress something.

pub mod absint;
pub mod ast;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod passes;
pub mod report;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use lexer::LexFile;
use lints::{parse_allows, run_lint, RawFinding, BAD_ANNOTATION, CATALOG, PARSE_ERROR};
use passes::panic_reach::EntryStatus;
use passes::{analyze_source, Workspace};

/// One diagnostic attributed to a file.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the audited root, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Canonical lint name.
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// One finding after allow-discharge: still a diagnostic, but carrying
/// whether a typed annotation suppressed it and with what reason.
#[derive(Clone, Debug)]
pub struct AuditEntry {
    /// The diagnostic.
    pub finding: Finding,
    /// True when a reasoned `audit: allow` covers it.
    pub allowed: bool,
    /// The annotation's justification, when allowed.
    pub reason: Option<String>,
}

/// The full audit result: every finding (discharged ones included, for
/// the JSON artifact), plus the panic-reach proof summary.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// All findings in `(path, line, lint)` order.
    pub entries: Vec<AuditEntry>,
    /// Panic-reach entry points with post-discharge verdicts.
    pub entry_points: Vec<EntryStatus>,
    /// Number of files analyzed.
    pub files: usize,
    /// Number of recovered parse errors (analysis blind spots).
    pub parse_errors: usize,
}

impl AuditReport {
    /// Findings not discharged by an allow — the CI gate.
    pub fn active(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|e| !e.allowed)
            .map(|e| e.finding.clone())
            .collect()
    }
}

/// Token-lint findings for one lexed file, scoped by `cfg`.
fn token_findings(rel_path: &str, file: &LexFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lint, _) in CATALOG {
        if !cfg.lint_applies(lint, rel_path) {
            continue;
        }
        let mut raw = run_lint(lint, file);
        raw.dedup_by(|a, b| a.line == b.line && a.lint == b.lint);
        for RawFinding {
            line,
            lint,
            message,
        } in raw
        {
            out.push(Finding {
                path: rel_path.to_string(),
                line,
                lint: lint.to_string(),
                message,
            });
        }
    }
    out
}

/// Discharges one file's findings against its `audit: allow`
/// annotations. An annotation covers findings of its lint on its own
/// line (trailing comment) or the line directly below. Missing
/// reasons, unknown lint names, and allows that suppress nothing are
/// findings themselves, so the escape hatch cannot rot silently.
fn discharge_file(
    rel_path: &str,
    lex: &LexFile,
    mut raw: Vec<Finding>,
    cfg: &Config,
) -> Vec<AuditEntry> {
    let allows = parse_allows(lex);
    let mut used_allow = vec![false; allows.len()];
    raw.sort();
    raw.dedup();
    let mut out: Vec<AuditEntry> = Vec::new();

    for f in raw {
        // A same-line (trailing) allow wins over one on the line above,
        // so adjacent annotated lines each consume their own allow.
        let matching = |a: &&lints::Allow| matches!(&a.lint, Ok(l) if *l == f.lint);
        let covering = allows
            .iter()
            .enumerate()
            .find(|(_, a)| matching(a) && a.line == f.line)
            .or_else(|| {
                allows
                    .iter()
                    .enumerate()
                    .find(|(_, a)| matching(a) && a.line + 1 == f.line)
            });
        match covering {
            Some((idx, a)) if !a.reason.is_empty() => {
                used_allow[idx] = true;
                out.push(AuditEntry {
                    finding: f,
                    allowed: true,
                    reason: Some(a.reason.clone()),
                });
            }
            Some((idx, _)) => {
                // Reason missing: the finding stands, plus a nudge.
                used_allow[idx] = true;
                out.push(AuditEntry {
                    finding: Finding {
                        path: rel_path.to_string(),
                        line: f.line,
                        lint: BAD_ANNOTATION.to_string(),
                        message: format!(
                            "allow({lint}) must carry a justification: \
                             `// audit: allow({lint}, <reason>)`",
                            lint = f.lint
                        ),
                    },
                    allowed: false,
                    reason: None,
                });
                out.push(active(f));
            }
            None => out.push(active(f)),
        }
    }

    for (idx, a) in allows.iter().enumerate() {
        match &a.lint {
            Err(unknown) => out.push(active(Finding {
                path: rel_path.to_string(),
                line: a.line,
                lint: BAD_ANNOTATION.to_string(),
                message: format!(
                    "unknown lint `{unknown}` in audit: allow(..); known lints: {}",
                    CATALOG
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })),
            Ok(lint) if !used_allow[idx] && cfg.lint_applies(lint, rel_path) => {
                out.push(active(Finding {
                    path: rel_path.to_string(),
                    line: a.line,
                    lint: BAD_ANNOTATION.to_string(),
                    message: format!(
                        "allow({lint}) suppresses nothing on the next line; remove it"
                    ),
                }));
            }
            Ok(_) => {}
        }
    }
    out
}

fn active(finding: Finding) -> AuditEntry {
    AuditEntry {
        finding,
        allowed: false,
        reason: None,
    }
}

/// Audits one file's source text against the token lints only — the
/// v1 surface, kept for fixture corpora and spot checks. The AST
/// passes need the whole workspace; see [`audit_workspace`].
pub fn audit_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let file = LexFile::lex(src);
    let raw = token_findings(rel_path, &file, cfg);
    let mut out: Vec<Finding> = discharge_file(rel_path, &file, raw, cfg)
        .into_iter()
        .filter(|e| !e.allowed)
        .map(|e| e.finding)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Lexes and parses every `.rs` file under `root` (honoring the
/// config's `exclude` list) into a [`Workspace`].
pub fn analyze_root(root: &Path, cfg: &Config) -> io::Result<Workspace> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, cfg, &mut paths)?;
    paths.sort();
    let mut ws = Workspace::default();
    for rel in paths {
        let src = fs::read_to_string(root.join(&rel))?;
        ws.files.push(analyze_source(&rel, &src));
    }
    Ok(ws)
}

/// The full v2 pipeline over a parsed workspace: token lints, parse
/// errors, the four AST/call-graph passes, then allow-discharge.
pub fn audit_workspace(ws: &Workspace, cfg: &Config) -> AuditReport {
    let mut all: Vec<Finding> = Vec::new();
    let mut parse_errors = 0usize;
    for file in &ws.files {
        all.extend(token_findings(&file.path, &file.lex, cfg));
        for e in &file.errors {
            parse_errors += 1;
            all.push(Finding {
                path: file.path.clone(),
                line: e.line,
                lint: PARSE_ERROR.to_string(),
                message: format!("parse error (analysis blind spot): {}", e.message),
            });
        }
    }
    let pass_out = passes::run_all(ws, cfg);
    all.extend(pass_out.findings);

    let mut grouped: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in all {
        grouped.entry(f.path.clone()).or_default().push(f);
    }
    let mut entries = Vec::new();
    for file in &ws.files {
        let raw = grouped.remove(&file.path).unwrap_or_default();
        entries.extend(discharge_file(&file.path, &file.lex, raw, cfg));
    }
    // Findings not attributed to a parsed file (e.g. unresolved entry
    // points, attributed to audit.toml) cannot be allow-discharged.
    for (_, raws) in grouped {
        entries.extend(raws.into_iter().map(active));
    }
    entries.sort_by(|a, b| a.finding.cmp(&b.finding));
    entries.dedup_by(|a, b| a.finding == b.finding && a.allowed == b.allowed);

    // An entry point is proven panic-free only when every reachable
    // source site is either absent or discharged with a reason.
    let entry_points = pass_out
        .entry_points
        .into_iter()
        .map(|mut s| {
            let marker = format!("entry `{}`", s.spec);
            s.panic_free = s.resolved
                && !entries.iter().any(|e| {
                    !e.allowed
                        && e.finding.lint == lints::PANIC_REACH
                        && e.finding.message.contains(&marker)
                });
            s
        })
        .collect();

    AuditReport {
        entries,
        entry_points,
        files: ws.files.len(),
        parse_errors,
    }
}

/// Recursively audits every `.rs` file under `root` through the full
/// v2 pipeline, returning the *active* (un-discharged) findings.
/// Paths in findings are relative to `root`.
pub fn audit_root(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    Ok(audit_report(root, cfg)?.active())
}

/// Like [`audit_root`], but returning the full report (discharged
/// findings and entry-point statuses included) for the JSON artifact.
pub fn audit_report(root: &Path, cfg: &Config) -> io::Result<AuditReport> {
    let ws = analyze_root(root, cfg)?;
    Ok(audit_workspace(&ws, cfg))
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if cfg.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> Config {
        let mut cfg = Config::default();
        for (lint, _) in CATALOG {
            cfg.lints.entry(lint.to_string()).or_default();
        }
        cfg
    }

    #[test]
    fn allow_with_reason_suppresses_one_line() {
        let src = "\
// audit: allow(lossy-cast, u32 -> usize is lossless on 64-bit targets)
let a = x as usize;
let b = y as usize;
";
        let found = audit_source("src/lib.rs", src, &cfg_all());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "let a = x as usize; // audit: allow(lossy-cast)\n";
        let found = audit_source("src/lib.rs", src, &cfg_all());
        let lints: Vec<&str> = found.iter().map(|f| f.lint.as_str()).collect();
        assert!(lints.contains(&lints::NO_LOSSY_CASTS));
        assert!(lints.contains(&BAD_ANNOTATION));
    }

    #[test]
    fn unused_allow_is_rejected() {
        let src = "// audit: allow(float, stale justification)\nlet a = 1;\n";
        let found = audit_source("src/lib.rs", src, &cfg_all());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, BAD_ANNOTATION);
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let mut cfg = cfg_all();
        cfg.lints
            .get_mut(lints::NO_LOSSY_CASTS)
            .unwrap()
            .paths
            .push("crates/pfair-core".into());
        let src = "let a = x as u32;\n";
        assert!(audit_source("crates/whisper-sim/src/lib.rs", src, &cfg).is_empty());
        assert_eq!(
            audit_source("crates/pfair-core/src/lag.rs", src, &cfg).len(),
            1
        );
    }

    #[test]
    fn workspace_pipeline_discharges_pass_findings() {
        let src = "\
pub fn entry(v: &[u64]) -> u64 {
    // audit: allow(panic-reach, caller guarantees a non-empty slice)
    v[0]
}
";
        let mut cfg = cfg_all();
        cfg.lints
            .get_mut(lints::PANIC_REACH)
            .unwrap()
            .entry_points
            .push("entry".into());
        let ws = Workspace {
            files: vec![analyze_source("src/lib.rs", src)],
        };
        let report = audit_workspace(&ws, &cfg);
        assert!(report.active().is_empty(), "{:?}", report.active());
        let allowed: Vec<&AuditEntry> = report.entries.iter().filter(|e| e.allowed).collect();
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].finding.lint, lints::PANIC_REACH);
        assert!(report.entry_points[0].panic_free);
    }

    #[test]
    fn workspace_pipeline_reports_undischarged_reachability() {
        let src = "pub fn entry(v: &[u64]) -> u64 { v[0] }\n";
        let mut cfg = cfg_all();
        cfg.lints
            .get_mut(lints::PANIC_REACH)
            .unwrap()
            .entry_points
            .push("entry".into());
        let ws = Workspace {
            files: vec![analyze_source("src/lib.rs", src)],
        };
        let report = audit_workspace(&ws, &cfg);
        assert_eq!(report.active().len(), 1);
        assert!(!report.entry_points[0].panic_free);
    }
}
