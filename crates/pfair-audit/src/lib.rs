//! pfair-audit: workspace-wide static analysis for the Pfair
//! reproduction.
//!
//! The repository's claim to reproduce "Task Reweighting on
//! Multiprocessors: Efficiency versus Accuracy" rests on invariants the
//! compiler cannot check: lag/drift/weight arithmetic is *exact*
//! (no floats), quantities cross integer widths only through checked
//! conversions, scheduling library code never panics on malformed
//! input, and unchecked wide-integer arithmetic stays quarantined in
//! the two modules whose overflow behavior is documented policy.
//!
//! This crate enforces those invariants as a standalone binary:
//!
//! ```text
//! cargo run -p pfair-audit -- check .
//! ```
//!
//! It exits nonzero with `file:line` diagnostics when any invariant is
//! violated. Scope and path-level exemptions live in the checked-in
//! `audit.toml`; line-level exemptions are `// audit: allow(<lint>,
//! <reason>)` comments, which must carry a reason and must actually
//! suppress something.

pub mod config;
pub mod lexer;
pub mod lints;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use lexer::LexFile;
use lints::{parse_allows, run_lint, RawFinding, BAD_ANNOTATION, CATALOG};

/// One diagnostic attributed to a file.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the audited root, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Canonical lint name.
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Audits one file's source text against every configured lint.
///
/// `rel_path` decides which lints apply (via `cfg`); the returned
/// findings are deduplicated per `(line, lint)` and sorted.
pub fn audit_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let file = LexFile::lex(src);
    let allows = parse_allows(&file);
    let mut used_allow = vec![false; allows.len()];
    let mut out: Vec<Finding> = Vec::new();

    for (lint, _) in CATALOG {
        if !cfg.lint_applies(lint, rel_path) {
            continue;
        }
        let mut raw = run_lint(lint, &file);
        raw.dedup_by(|a, b| a.line == b.line && a.lint == b.lint);
        for RawFinding {
            line,
            lint,
            message,
        } in raw
        {
            // An allow annotation covers findings on its own line
            // (trailing comment) or the line directly below it.
            let allowed = allows
                .iter()
                .enumerate()
                .find(|(_, a)| a.lint == Ok(lint) && (a.line == line || a.line + 1 == line));
            match allowed {
                Some((idx, a)) if !a.reason.is_empty() => used_allow[idx] = true,
                Some((idx, _)) => {
                    // Reason missing: the finding stands, plus a nudge.
                    used_allow[idx] = true;
                    out.push(finding(rel_path, line, lint, message));
                    out.push(Finding {
                        path: rel_path.to_string(),
                        line,
                        lint: BAD_ANNOTATION.to_string(),
                        message: format!(
                            "allow({lint}) must carry a justification: \
                             `// audit: allow({lint}, <reason>)`"
                        ),
                    });
                }
                None => out.push(finding(rel_path, line, lint, message)),
            }
        }
    }

    // Annotations must stay honest: unknown lint names and allows that
    // no longer suppress anything are findings themselves.
    for (idx, a) in allows.iter().enumerate() {
        match &a.lint {
            Err(unknown) => out.push(Finding {
                path: rel_path.to_string(),
                line: a.line,
                lint: BAD_ANNOTATION.to_string(),
                message: format!(
                    "unknown lint `{unknown}` in audit: allow(..); known lints: {}",
                    CATALOG
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            }),
            Ok(lint) if !used_allow[idx] && cfg.lint_applies(lint, rel_path) => {
                out.push(Finding {
                    path: rel_path.to_string(),
                    line: a.line,
                    lint: BAD_ANNOTATION.to_string(),
                    message: format!(
                        "allow({lint}) suppresses nothing on the next line; remove it"
                    ),
                });
            }
            Ok(_) => {}
        }
    }

    out.sort();
    out.dedup();
    out
}

fn finding(path: &str, line: u32, lint: &str, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        lint: lint.to_string(),
        message,
    }
}

/// Recursively audits every `.rs` file under `root`, honoring the
/// config's `exclude` list. Paths in findings are relative to `root`.
pub fn audit_root(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        out.extend(audit_source(&rel, &src, cfg));
    }
    Ok(out)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if cfg.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> Config {
        let mut cfg = Config::default();
        for (lint, _) in CATALOG {
            cfg.lints.entry(lint.to_string()).or_default();
        }
        cfg
    }

    #[test]
    fn allow_with_reason_suppresses_one_line() {
        let src = "\
// audit: allow(lossy-cast, u32 -> usize is lossless on 64-bit targets)
let a = x as usize;
let b = y as usize;
";
        let found = audit_source("src/lib.rs", src, &cfg_all());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "let a = x as usize; // audit: allow(lossy-cast)\n";
        let found = audit_source("src/lib.rs", src, &cfg_all());
        let lints: Vec<&str> = found.iter().map(|f| f.lint.as_str()).collect();
        assert!(lints.contains(&lints::NO_LOSSY_CASTS));
        assert!(lints.contains(&BAD_ANNOTATION));
    }

    #[test]
    fn unused_allow_is_rejected() {
        let src = "// audit: allow(float, stale justification)\nlet a = 1;\n";
        let found = audit_source("src/lib.rs", src, &cfg_all());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, BAD_ANNOTATION);
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let mut cfg = cfg_all();
        cfg.lints
            .get_mut(lints::NO_LOSSY_CASTS)
            .unwrap()
            .paths
            .push("crates/pfair-core".into());
        let src = "let a = x as u32;\n";
        assert!(audit_source("crates/whisper-sim/src/lib.rs", src, &cfg).is_empty());
        assert_eq!(
            audit_source("crates/pfair-core/src/lag.rs", src, &cfg).len(),
            1
        );
    }
}
