//! JSON report rendering for `pfair-audit check --report json`.
//!
//! Hand-rolled writer (the workspace takes no serialization
//! dependency): stable key order, findings sorted by
//! `(path, line, lint)`, entry points in config order. The artifact is
//! what CI archives, so its shape is covered by a golden-snapshot
//! test in `tests/corpus.rs`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::AuditReport;

/// Renders the full report — discharged findings included — as a
/// pretty-printed JSON document with a trailing newline.
pub fn render_json(report: &AuditReport) -> String {
    let active = report.entries.iter().filter(|e| !e.allowed).count();
    let allowed = report.entries.len() - active;
    let mut by_lint: BTreeMap<&str, usize> = BTreeMap::new();
    for e in report.entries.iter().filter(|e| !e.allowed) {
        *by_lint.entry(e.finding.lint.as_str()).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": 2,");
    let _ = writeln!(out, "  \"files_parsed\": {},", report.files);
    let _ = writeln!(out, "  \"parse_errors\": {},", report.parse_errors);
    out.push_str("  \"summary\": {\n");
    let _ = writeln!(out, "    \"active\": {active},");
    let _ = writeln!(out, "    \"allowed\": {allowed},");
    out.push_str("    \"by_lint\": {");
    for (i, (lint, n)) in by_lint.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      ");
        let _ = write!(out, "{}: {n}", quote(lint));
    }
    if !by_lint.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("}\n  },\n");

    out.push_str("  \"entry_points\": [");
    for (i, ep) in report.entry_points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"spec\": {}, ", quote(&ep.spec));
        let _ = write!(out, "\"resolved\": {}, ", ep.resolved);
        let _ = write!(out, "\"panic_free\": {}, ", ep.panic_free);
        let _ = write!(out, "\"reachable_fns\": {}", ep.reachable.len());
        out.push('}');
    }
    if !report.entry_points.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"findings\": [");
    for (i, e) in report.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"path\": {}, ", quote(&e.finding.path));
        let _ = write!(out, "\"line\": {}, ", e.finding.line);
        let _ = write!(out, "\"lint\": {}, ", quote(&e.finding.lint));
        let _ = write!(out, "\"message\": {}, ", quote(&e.finding.message));
        let _ = write!(out, "\"allowed\": {}", e.allowed);
        if let Some(reason) = &e.reason {
            let _ = write!(out, ", \"reason\": {}", quote(reason));
        }
        out.push('}');
    }
    if !report.entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuditEntry, Finding};

    #[test]
    fn renders_stable_json() {
        let report = AuditReport {
            entries: vec![
                AuditEntry {
                    finding: Finding {
                        path: "src/a.rs".into(),
                        line: 3,
                        lint: "no-float-in-library".into(),
                        message: "float literal `1.5`".into(),
                    },
                    allowed: false,
                    reason: None,
                },
                AuditEntry {
                    finding: Finding {
                        path: "src/b.rs".into(),
                        line: 9,
                        lint: "panic-reach".into(),
                        message: "entry \"x\"".into(),
                    },
                    allowed: true,
                    reason: Some("bounded by caller".into()),
                },
            ],
            entry_points: vec![],
            files: 2,
            parse_errors: 0,
        };
        let json = render_json(&report);
        assert!(json.starts_with("{\n  \"version\": 2,\n"));
        assert!(json.contains("\"active\": 1"));
        assert!(json.contains("\"allowed\": 1"));
        assert!(json.contains("\"no-float-in-library\": 1"));
        assert!(json.contains("\\\"x\\\""), "escaped quotes: {json}");
        assert!(json.contains("\"reason\": \"bounded by caller\""));
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn quote_escapes_control_characters() {
        assert_eq!(quote("a\nb\t\"\\\u{1}"), "\"a\\nb\\t\\\"\\\\\\u0001\"");
    }

    #[test]
    fn empty_report_renders_empty_collections() {
        let json = render_json(&AuditReport::default());
        assert!(json.contains("\"by_lint\": {}"));
        assert!(json.contains("\"entry_points\": [],"));
        assert!(json.contains("\"findings\": []\n}"));
    }
}
