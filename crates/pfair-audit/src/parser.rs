//! A tolerant recursive-descent parser over [`crate::lexer`] tokens.
//!
//! The parser covers the Rust subset the workspace actually uses:
//! items (functions, impls, traits, modules, structs, enums, consts,
//! uses, type aliases, macro definitions and invocations), function
//! signatures, and full expressions with operator precedence. It is
//! *tolerant*: an unparseable construct degrades to
//! [`ExprKind::Unknown`] or [`ItemKind::Other`] and is recorded as a
//! [`ParseError`], never a hard failure — one exotic expression must
//! not hide a whole file from the audit passes.
//!
//! The lexer keeps most punctuation single-character (only `->`, `=>`,
//! `::`, `..`, `..=` are joined); the parser re-joins the rest (`==`,
//! `<<`, `+=`, `&&`, …) by peeking at adjacent tokens, which also
//! sidesteps the classic `>>`-closes-two-generics problem.

use crate::ast::*;
use crate::lexer::{LexFile, Tok, TokKind};

/// A recovered parse error with its source line.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Parses a lexed file into a [`SourceFile`], accumulating recovered
/// errors instead of failing.
pub fn parse_file(lex: &LexFile) -> (SourceFile, Vec<ParseError>) {
    let mut p = Parser {
        toks: &lex.toks,
        in_test: &lex.in_test,
        pos: 0,
        errors: Vec::new(),
    };
    let items = p.parse_items_until(None);
    (SourceFile { items }, p.errors)
}

struct Parser<'a> {
    toks: &'a [Tok],
    in_test: &'a [bool],
    pos: usize,
    errors: Vec<ParseError>,
}

/// Binding powers for the Pratt loop, loosest first.
const PREC_ASSIGN: u8 = 1;
const PREC_RANGE: u8 = 2;
const PREC_OR: u8 = 3;
const PREC_AND: u8 = 4;
const PREC_CMP: u8 = 5;
const PREC_BITOR: u8 = 6;
const PREC_BITXOR: u8 = 7;
const PREC_BITAND: u8 = 8;
const PREC_SHIFT: u8 = 9;
const PREC_ADD: u8 = 10;
const PREC_MUL: u8 = 11;

/// An infix operator recognized by peeking: its meaning, precedence,
/// and how many raw tokens it spans.
enum Infix {
    Bin(BinOp, u8, usize),
    CompoundAssign(BinOp, usize),
    Assign,
    Range { inclusive: bool },
}

impl<'a> Parser<'a> {
    // ----- token plumbing -------------------------------------------------

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek().map_or(0, |t| t.line)
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn punct_at(&self, off: usize, s: &str) -> bool {
        self.peek_at(off)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, s: &str, ctx: &str) -> bool {
        if self.eat_punct(s) {
            true
        } else {
            self.error(format!("expected `{s}` {ctx}"));
            false
        }
    }

    fn error(&mut self, message: String) {
        self.errors.push(ParseError {
            line: self.line(),
            message,
        });
    }

    fn cur_in_test(&self) -> bool {
        self.in_test.get(self.pos).copied().unwrap_or(false)
    }

    /// Takes any identifier, or reports `ctx` and returns a placeholder.
    fn ident(&mut self, ctx: &str) -> String {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                self.pos += 1;
                t.text.clone()
            }
            _ => {
                self.error(format!("expected identifier {ctx}"));
                String::new()
            }
        }
    }

    /// Skips tokens until the matching close delimiter of `open`,
    /// assuming the opener has already been consumed.
    fn skip_balanced(&mut self, open: &str) {
        if !matches!(open, "(" | "[" | "{") {
            return;
        }
        let mut depth = 1u32;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Collects the token tree between balanced delimiters (opener
    /// already consumed), delimiters excluded.
    fn collect_balanced(&mut self, open: &str) -> Vec<Tok> {
        let start = self.pos;
        self.skip_balanced(open);
        let end = self.pos.saturating_sub(1).max(start);
        self.toks[start..end].to_vec()
    }

    /// Skips attributes (`#[..]` / `#![..]`) before an item/statement.
    fn skip_attrs(&mut self) {
        loop {
            if self.at_punct("#")
                && (self.punct_at(1, "[") || (self.punct_at(1, "!") && self.punct_at(2, "[")))
            {
                self.bump(); // #
                self.eat_punct("!");
                self.bump(); // [
                self.skip_balanced("[");
            } else {
                return;
            }
        }
    }

    /// Skips `<...>` generics after an item name or in a path. Assumes
    /// the `<` has NOT been consumed; no-op when absent. Uses angle
    /// depth with bail-outs on delimiters that cannot appear in
    /// generics at depth 0.
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        self.bump();
        let mut depth = 1i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                    "(" | "[" | "{" => {
                        let open = t.text.clone();
                        self.bump();
                        self.skip_balanced(&open);
                        continue;
                    }
                    ";" | "}" => return, // runaway; bail
                    "-" if self.punct_at(1, ">") => {
                        // `fn(..) -> T` inside generics: consume both.
                        self.bump();
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips a `where` clause up to (not including) `{` or `;`.
    fn skip_where(&mut self) {
        if !self.at_ident("where") {
            return;
        }
        self.bump();
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | ";" => return,
                    "(" | "[" => {
                        let open = t.text.clone();
                        self.bump();
                        self.skip_balanced(&open);
                        continue;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    // ----- items ----------------------------------------------------------

    /// Parses items until `closer` (e.g. `}`) or end of input.
    fn parse_items_until(&mut self, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            self.skip_attrs();
            match (closer, self.peek()) {
                (_, None) => return items,
                (Some(c), Some(t)) if t.kind == TokKind::Punct && t.text == c => {
                    self.bump();
                    return items;
                }
                _ => {}
            }
            let before = self.pos;
            let item = self.parse_item();
            items.push(item);
            if self.pos == before {
                // Always make progress.
                self.bump();
            }
        }
    }

    fn parse_item(&mut self) -> Item {
        let line = self.line();
        let in_test = self.cur_in_test();
        // Leading visibility / qualifiers.
        if self.at_ident("pub") {
            self.bump();
            if self.at_punct("(") {
                self.bump();
                self.skip_balanced("(");
            }
        }
        while self.at_ident("const")
            && self.peek_at(1).is_some_and(|t| {
                t.text == "fn" || t.text == "unsafe" || t.text == "extern" || t.text == "async"
            })
            || self.at_ident("unsafe")
            || self.at_ident("async")
            || self.at_ident("default")
        {
            self.bump();
        }
        if self.at_ident("extern") && self.peek_at(1).is_some_and(|t| t.kind == TokKind::Str) {
            self.bump();
            self.bump();
            if self.at_punct("{") {
                self.bump();
                self.skip_balanced("{");
                return Item {
                    line,
                    in_test,
                    kind: ItemKind::Other,
                };
            }
        }

        let kind = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => t.text.as_str(),
            _ => {
                self.error("expected item".to_string());
                self.recover_item();
                return Item {
                    line,
                    in_test,
                    kind: ItemKind::Other,
                };
            }
        };

        let kind = match kind {
            "fn" => ItemKind::Fn(self.parse_fn()),
            "impl" => self.parse_impl(),
            "mod" => self.parse_mod(),
            "struct" | "union" => self.parse_struct(),
            "enum" => self.parse_enum(),
            "trait" => self.parse_trait(),
            "use" => self.parse_use(),
            "const" | "static" => self.parse_const(),
            "type" => self.parse_type_alias(),
            "macro_rules" => self.parse_macro_def(),
            "extern" => {
                // `extern crate name;`
                self.recover_item();
                ItemKind::Other
            }
            _ => {
                // A macro invocation item (`proptest! { .. }`) or
                // something we do not model.
                if self.peek_at(1).is_some_and(|t| t.text == "!")
                    || self.peek_at(1).is_some_and(|t| t.text == "::")
                {
                    self.parse_macro_call_item()
                } else {
                    self.error(format!("unrecognized item starting with `{kind}`"));
                    self.recover_item();
                    ItemKind::Other
                }
            }
        };
        Item {
            line,
            in_test,
            kind,
        }
    }

    /// Skips to the end of an unparseable item: a top-level `;`, or the
    /// `}` closing the first brace-balanced block.
    fn recover_item(&mut self) {
        let mut depth = 0i32;
        let mut saw_brace = false;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        saw_brace = true;
                    }
                    "}" => {
                        if depth == 0 {
                            return; // closes our enclosing scope
                        }
                        depth -= 1;
                        if saw_brace && depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn parse_fn(&mut self) -> FnItem {
        self.bump(); // fn
        let name = self.ident("after `fn`");
        self.skip_generics();
        let mut has_self = false;
        let mut params = Vec::new();
        if self.expect_punct("(", "to open parameter list") {
            self.parse_params(&mut has_self, &mut params);
        }
        let ret = if self.at_punct("->") {
            self.bump();
            Some(self.parse_type())
        } else {
            None
        };
        self.skip_where();
        let body = if self.at_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        FnItem {
            name,
            has_self,
            params,
            ret,
            body,
        }
    }

    fn parse_params(&mut self, has_self: &mut bool, params: &mut Vec<Param>) {
        // Leading self receiver: `self`, `&self`, `&mut self`,
        // `&'a self`, `mut self`, `self: Ty`.
        let save = self.pos;
        while self.at_punct("&")
            || self.peek().is_some_and(|t| t.kind == TokKind::Lifetime)
            || self.at_ident("mut")
        {
            self.bump();
        }
        if self.at_ident("self") {
            *has_self = true;
            self.bump();
            if self.eat_punct(":") {
                self.parse_type();
            }
            self.eat_punct(",");
        } else {
            self.pos = save;
        }
        loop {
            if self.at_punct(")") {
                self.bump();
                return;
            }
            if self.peek().is_none() {
                return;
            }
            if self.at_punct("{") {
                // An unclosed parameter list ran into the body; bail so
                // recovery can resume at the block.
                self.error("unclosed parameter list".to_string());
                return;
            }
            self.skip_attrs();
            let name = self.parse_pattern_binder();
            if !self.expect_punct(":", "after parameter pattern") {
                // Recover to `,` or `)`.
                self.skip_to_list_sep();
                continue;
            }
            let ty = self.parse_type();
            params.push(Param { name, ty });
            if !self.eat_punct(",") && !self.at_punct(")") {
                self.error("expected `,` or `)` in parameter list".to_string());
                self.skip_to_list_sep();
            }
        }
    }

    /// Skips to the next top-level `,` (consumed) or `)` (left).
    fn skip_to_list_sep(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return;
                        }
                        depth -= 1;
                    }
                    "," if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Parses a pattern loosely, returning the binder name when it is a
    /// simple (possibly `ref`/`mut`) identifier. Stops before a
    /// top-level `:`, `=`, `;`, `,`, `)`, `=>`, `if`, or `in`.
    fn parse_pattern_binder(&mut self) -> Option<String> {
        let mut simple: Option<String> = None;
        let mut count = 0usize;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 {
                if t.kind == TokKind::Punct
                    && matches!(
                        t.text.as_str(),
                        ":" | "=" | ";" | "," | ")" | "]" | "=>" | "|"
                    )
                {
                    break;
                }
                if t.kind == TokKind::Ident && (t.text == "if" || t.text == "in") {
                    break;
                }
            }
            match (&t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[" | "{") => depth += 1,
                (TokKind::Punct, ")" | "]" | "}") => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                (TokKind::Ident, "ref" | "mut") => {}
                (TokKind::Ident, _) if depth == 0 => {
                    count += 1;
                    simple = Some(t.text.clone());
                }
                _ => {
                    count += 2; // any punctuation/literal makes it non-simple
                }
            }
            self.bump();
        }
        if count == 1 {
            simple.filter(|s| s != "_")
        } else {
            None
        }
    }

    fn parse_impl(&mut self) -> ItemKind {
        self.bump(); // impl
        self.skip_generics();
        let first = self.parse_type();
        let (type_name, trait_name) = if self.at_ident("for") {
            self.bump();
            let ty = self.parse_type();
            (ty.head, Some(first.head))
        } else {
            (first.head, None)
        };
        self.skip_where();
        let items = if self.at_punct("{") {
            self.bump();
            self.parse_items_until(Some("}"))
        } else {
            self.eat_punct(";");
            Vec::new()
        };
        ItemKind::Impl {
            type_name,
            trait_name,
            items,
        }
    }

    fn parse_mod(&mut self) -> ItemKind {
        self.bump(); // mod
        let name = self.ident("after `mod`");
        if self.eat_punct(";") {
            ItemKind::Mod { name, items: None }
        } else if self.at_punct("{") {
            self.bump();
            let items = self.parse_items_until(Some("}"));
            ItemKind::Mod {
                name,
                items: Some(items),
            }
        } else {
            self.error("expected `;` or `{` after module name".to_string());
            ItemKind::Mod { name, items: None }
        }
    }

    fn parse_struct(&mut self) -> ItemKind {
        self.bump(); // struct / union
        let name = self.ident("after `struct`");
        self.skip_generics();
        self.skip_where();
        let mut fields = Vec::new();
        if self.at_punct("{") {
            self.bump();
            loop {
                self.skip_attrs();
                if self.eat_punct("}") || self.peek().is_none() {
                    break;
                }
                if self.at_ident("pub") {
                    self.bump();
                    if self.at_punct("(") {
                        self.bump();
                        self.skip_balanced("(");
                    }
                }
                let fname = self.ident("as field name");
                if !self.expect_punct(":", "after field name") {
                    self.skip_to_list_sep();
                    continue;
                }
                let ty = self.parse_type();
                fields.push((fname, ty));
                if !self.eat_punct(",") && !self.at_punct("}") {
                    self.skip_to_list_sep();
                }
            }
        } else if self.at_punct("(") {
            self.bump();
            self.skip_balanced("(");
            self.skip_where();
            self.eat_punct(";");
        } else {
            self.eat_punct(";");
        }
        ItemKind::Struct { name, fields }
    }

    fn parse_enum(&mut self) -> ItemKind {
        self.bump(); // enum
        let name = self.ident("after `enum`");
        self.skip_generics();
        self.skip_where();
        if self.at_punct("{") {
            self.bump();
            self.skip_balanced("{");
        }
        ItemKind::Enum { name }
    }

    fn parse_trait(&mut self) -> ItemKind {
        self.bump(); // trait
        let name = self.ident("after `trait`");
        self.skip_generics();
        // Supertraits.
        if self.eat_punct(":") {
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct && (t.text == "{" || t.text == ";") {
                    break;
                }
                if t.kind == TokKind::Ident && t.text == "where" {
                    break;
                }
                if t.kind == TokKind::Punct && t.text == "<" {
                    self.skip_generics();
                    continue;
                }
                self.bump();
            }
        }
        self.skip_where();
        let items = if self.at_punct("{") {
            self.bump();
            self.parse_items_until(Some("}"))
        } else {
            self.eat_punct(";");
            Vec::new()
        };
        ItemKind::Trait { name, items }
    }

    fn parse_use(&mut self) -> ItemKind {
        self.bump(); // use
        let mut paths = Vec::new();
        self.parse_use_tree(Vec::new(), &mut paths);
        self.eat_punct(";");
        ItemKind::Use { paths }
    }

    fn parse_use_tree(&mut self, prefix: Vec<String>, out: &mut Vec<Vec<String>>) {
        let mut path = prefix;
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    if t.text == "as" {
                        self.bump();
                        // Alias name; keep the original path.
                        if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                            self.bump();
                        }
                        out.push(path);
                        return;
                    }
                    path.push(t.text.clone());
                    self.bump();
                    if self.at_ident("as") {
                        self.bump();
                        if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                            self.bump(); // alias name; keep the real path
                        }
                        out.push(path);
                        return;
                    }
                }
                Some(t) if t.kind == TokKind::Punct && t.text == "*" => {
                    self.bump();
                    path.push("*".to_string());
                    out.push(path);
                    return;
                }
                Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
                    self.bump();
                    loop {
                        if self.eat_punct("}") || self.peek().is_none() {
                            return;
                        }
                        self.parse_use_tree(path.clone(), out);
                        if !self.eat_punct(",") && !self.at_punct("}") {
                            self.error("expected `,` or `}` in use tree".to_string());
                            self.skip_to_list_sep();
                        }
                    }
                }
                _ => {
                    if !path.is_empty() {
                        out.push(path);
                    }
                    return;
                }
            }
            if !self.eat_punct("::") {
                out.push(path);
                return;
            }
        }
    }

    fn parse_const(&mut self) -> ItemKind {
        self.bump(); // const / static
        self.eat_ident("mut");
        let name = self.ident("after `const`");
        let ty = if self.eat_punct(":") {
            self.parse_type()
        } else {
            TypeRef::default()
        };
        let value = if self.eat_punct("=") {
            Some(self.parse_expr())
        } else {
            None
        };
        self.eat_punct(";");
        ItemKind::Const { name, ty, value }
    }

    fn parse_type_alias(&mut self) -> ItemKind {
        self.bump(); // type
        let name = self.ident("after `type`");
        self.skip_generics();
        // Associated-type bounds: `type Item: Send + Debug;`.
        if self.eat_punct(":") {
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "=" | ";" | "}" => break,
                        "(" | "[" => {
                            let open = t.text.clone();
                            self.bump();
                            self.skip_balanced(&open);
                            continue;
                        }
                        "<" => {
                            self.skip_generics();
                            continue;
                        }
                        _ => {}
                    }
                }
                self.bump();
            }
        }
        let ty = if self.eat_punct("=") {
            self.parse_type()
        } else {
            TypeRef::default()
        };
        self.eat_punct(";");
        ItemKind::TypeAlias { name, ty }
    }

    fn parse_macro_def(&mut self) -> ItemKind {
        self.bump(); // macro_rules
        self.expect_punct("!", "after `macro_rules`");
        let name = self.ident("as macro name");
        if self.at_punct("{") {
            self.bump();
            self.skip_balanced("{");
        } else if self.at_punct("(") {
            self.bump();
            self.skip_balanced("(");
            self.eat_punct(";");
        }
        ItemKind::MacroDef { name }
    }

    fn parse_macro_call_item(&mut self) -> ItemKind {
        let mut name = self.ident("as macro path");
        while self.eat_punct("::") {
            name = self.ident("as macro path segment");
        }
        if !self.eat_punct("!") {
            self.error("expected `!` in macro invocation".to_string());
            self.recover_item();
            return ItemKind::Other;
        }
        let open = match self.peek() {
            Some(t) if t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{") => {
                t.text.clone()
            }
            _ => {
                self.error("expected macro delimiter".to_string());
                self.recover_item();
                return ItemKind::Other;
            }
        };
        self.bump();
        let toks = self.collect_balanced(&open);
        if open != "{" {
            self.eat_punct(";");
        }
        ItemKind::MacroCall { name, toks }
    }

    // ----- types ----------------------------------------------------------

    /// Parses a type, reducing it to a [`TypeRef`]. Stops at tokens
    /// that cannot continue a type in the positions we parse them
    /// (`,`, `)`, `{`, `;`, `=`, `>`, `where`).
    fn parse_type(&mut self) -> TypeRef {
        let mut ty = TypeRef::default();
        // Reference / pointer prefix.
        loop {
            if self.at_punct("&") {
                self.bump();
                ty.refs += 1;
                if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                }
                self.eat_ident("mut");
                continue;
            }
            if self.at_punct("*") {
                self.bump();
                ty.raw_ptr = true;
                if !self.eat_ident("const") {
                    self.eat_ident("mut");
                }
                continue;
            }
            break;
        }
        match self.peek() {
            Some(t) if t.kind == TokKind::Punct && t.text == "(" => {
                // Tuple type or parenthesized type.
                self.bump();
                let mut first: Option<TypeRef> = None;
                let mut arity = 0usize;
                loop {
                    if self.eat_punct(")") || self.peek().is_none() {
                        break;
                    }
                    let inner = self.parse_type();
                    if arity == 0 {
                        first = Some(inner.clone());
                    }
                    ty.args.push(inner);
                    arity += 1;
                    if !self.eat_punct(",") && !self.at_punct(")") {
                        self.skip_to_list_sep();
                    }
                }
                if arity == 1 && !ty.args.is_empty() {
                    // `(T)` is just T.
                    let inner = first.unwrap_or_default();
                    ty.head = inner.head;
                    ty.args = inner.args;
                    ty.raw_ptr |= inner.raw_ptr;
                }
                ty
            }
            Some(t) if t.kind == TokKind::Punct && t.text == "[" => {
                // Slice or array type.
                self.bump();
                let inner = self.parse_type();
                if self.eat_punct(";") {
                    // Length expression; skip to `]`.
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "[" | "(" | "{" => depth += 1,
                                "]" if depth == 0 => break,
                                "]" | ")" | "}" => depth -= 1,
                                _ => {}
                            }
                        }
                        self.bump();
                    }
                }
                self.eat_punct("]");
                ty.head = "[]".to_string();
                ty.args.push(inner);
                ty
            }
            Some(t) if t.kind == TokKind::Punct && t.text == "<" => {
                // Qualified path `<T as Trait>::Assoc`.
                self.bump();
                let inner = self.parse_type();
                if self.eat_ident("as") {
                    self.parse_type();
                }
                self.eat_punct(">");
                while self.eat_punct("::") {
                    let seg = self.ident("in qualified path");
                    ty.head = seg;
                }
                if ty.head.is_empty() {
                    ty.head = inner.head;
                }
                ty
            }
            Some(t) if t.kind == TokKind::Ident => {
                match t.text.as_str() {
                    "dyn" | "impl" => {
                        self.bump();
                        let mut inner = self.parse_type();
                        // `impl Fn(..) -> T + Send`: fold bounds away.
                        while self.at_punct("+") {
                            self.bump();
                            if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                                self.bump();
                            } else {
                                self.parse_type();
                            }
                        }
                        inner.refs += ty.refs;
                        inner.raw_ptr |= ty.raw_ptr;
                        return inner;
                    }
                    "fn" | "Fn" | "FnMut" | "FnOnce" => {
                        let head = t.text.clone();
                        self.bump();
                        if self.at_punct("(") {
                            self.bump();
                            self.skip_balanced("(");
                        }
                        if self.at_punct("->") {
                            self.bump();
                            self.parse_type();
                        }
                        ty.head = head;
                        return ty;
                    }
                    _ => {}
                }
                // A path type: `a::b::C<args>`.
                let mut head = t.text.clone();
                self.bump();
                loop {
                    if self.at_punct("<") {
                        // Parse one level of generic args for the
                        // final segment; deeper levels are skipped.
                        let args = self.parse_generic_args();
                        if self.eat_punct("::") {
                            head = self.ident("in type path");
                            continue;
                        }
                        ty.args = args;
                        break;
                    }
                    if self.eat_punct("::") {
                        if self.at_punct("<") {
                            // Turbofish in type position.
                            continue;
                        }
                        head = self.ident("in type path");
                        continue;
                    }
                    break;
                }
                ty.head = head;
                ty
            }
            Some(t) if t.kind == TokKind::Punct && t.text == "!" => {
                self.bump();
                ty.head = "!".to_string();
                ty
            }
            Some(t) if t.kind == TokKind::Punct && t.text == "_" => {
                self.bump();
                ty
            }
            _ => {
                // `_` lexes as an Ident; anything else here is exotic.
                if self.at_ident("_") {
                    self.bump();
                }
                ty
            }
        }
    }

    /// Parses `<T, U, ..>` generic arguments, returning one level of
    /// [`TypeRef`]s. The `<` has not been consumed.
    fn parse_generic_args(&mut self) -> Vec<TypeRef> {
        let mut args = Vec::new();
        if !self.eat_punct("<") {
            return args;
        }
        loop {
            match self.peek() {
                None => return args,
                Some(t) if t.kind == TokKind::Punct && t.text == ">" => {
                    self.bump();
                    return args;
                }
                Some(t) if t.kind == TokKind::Lifetime => {
                    let _ = t;
                    self.bump();
                }
                Some(t)
                    if t.kind == TokKind::Int { suffix: None }
                        || matches!(t.kind, TokKind::Int { .. }) =>
                {
                    // Const generic argument.
                    self.bump();
                }
                Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
                    self.bump();
                    self.skip_balanced("{");
                }
                _ => {
                    // An associated-type binding `Item = T` or a type.
                    if self.peek().is_some_and(|t| t.kind == TokKind::Ident)
                        && self.punct_at(1, "=")
                    {
                        self.bump();
                        self.bump();
                    }
                    args.push(self.parse_type());
                    // Trait-object bounds inside generics: `Box<dyn A + B>`.
                    while self.at_punct("+") {
                        self.bump();
                        if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                            self.bump();
                        } else {
                            self.parse_type();
                        }
                    }
                }
            }
            if !self.eat_punct(",") && !self.at_punct(">") {
                // Tolerate unexpected tokens inside generics.
                if self.peek().is_none() {
                    return args;
                }
                if self.at_punct(";") || self.at_punct("{") || self.at_punct(")") {
                    return args;
                }
                self.bump();
            }
        }
    }

    // ----- statements / blocks --------------------------------------------

    /// Parses a `{ .. }` block; the `{` has not been consumed.
    fn parse_block(&mut self) -> Block {
        let line = self.line();
        let mut block = Block {
            line,
            stmts: Vec::new(),
        };
        if !self.expect_punct("{", "to open block") {
            return block;
        }
        loop {
            self.skip_attrs();
            match self.peek() {
                None => return block,
                Some(t) if t.kind == TokKind::Punct && t.text == "}" => {
                    self.bump();
                    return block;
                }
                Some(t) if t.kind == TokKind::Punct && t.text == ";" => {
                    self.bump();
                    continue;
                }
                _ => {}
            }
            let before = self.pos;
            let stmt = self.parse_stmt();
            block.stmts.push(stmt);
            if self.pos == before {
                self.bump();
            }
        }
    }

    fn parse_stmt(&mut self) -> Stmt {
        if self.at_ident("let") {
            return self.parse_let();
        }
        // Item statements.
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Ident {
                let is_item_kw = matches!(
                    t.text.as_str(),
                    "fn" | "struct"
                        | "enum"
                        | "impl"
                        | "trait"
                        | "mod"
                        | "use"
                        | "type"
                        | "macro_rules"
                ) || (t.text == "const"
                    && self.peek_at(1).is_some_and(|t2| {
                        t2.kind == TokKind::Ident
                            && t2.text != "fn"
                            && !matches!(t2.text.as_str(), "unsafe" | "extern" | "async")
                    })
                    && !self.punct_at(1, "{"))
                    || (t.text == "static"
                        && self.peek_at(1).is_some_and(|t2| t2.kind == TokKind::Ident));
                let pub_item = t.text == "pub";
                if is_item_kw || pub_item {
                    return Stmt::Item(self.parse_item());
                }
            }
        }
        let e = self.parse_expr();
        // Block-like statement expressions need no `;`; expression
        // statements do, but a missing one (tail expression) is fine.
        self.eat_punct(";");
        Stmt::Expr(e)
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
        let name = self.parse_pattern_binder();
        let ty = if self.eat_punct(":") {
            Some(self.parse_type())
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr())
        } else {
            None
        };
        let else_block = if self.at_ident("else") {
            self.bump();
            Some(self.parse_block())
        } else {
            None
        };
        self.eat_punct(";");
        Stmt::Let {
            name,
            ty,
            init,
            else_block,
            line,
        }
    }

    // ----- expressions ----------------------------------------------------

    /// Parses a full expression (struct literals allowed).
    pub fn parse_expr(&mut self) -> Expr {
        self.parse_expr_bp(0, true)
    }

    /// Parses an expression where a `{` terminates it rather than
    /// opening a struct literal (if/while/match/for headers).
    fn parse_expr_no_struct(&mut self) -> Expr {
        self.parse_expr_bp(0, false)
    }

    /// Classifies the infix operator at the current position, if any.
    fn peek_infix(&self) -> Option<Infix> {
        let t = self.peek()?;
        if t.kind != TokKind::Punct {
            return None;
        }
        let eq1 = self.punct_at(1, "=");
        Some(match t.text.as_str() {
            "=" if eq1 => Infix::Bin(BinOp::Cmp, PREC_CMP, 2),
            "=" => Infix::Assign,
            "!" if eq1 => Infix::Bin(BinOp::Cmp, PREC_CMP, 2),
            "<" => {
                if self.punct_at(1, "<") {
                    if self.punct_at(2, "=") {
                        Infix::CompoundAssign(BinOp::Shl, 3)
                    } else {
                        Infix::Bin(BinOp::Shl, PREC_SHIFT, 2)
                    }
                } else if eq1 {
                    Infix::Bin(BinOp::Cmp, PREC_CMP, 2)
                } else {
                    Infix::Bin(BinOp::Cmp, PREC_CMP, 1)
                }
            }
            ">" => {
                if self.punct_at(1, ">") {
                    if self.punct_at(2, "=") {
                        Infix::CompoundAssign(BinOp::Shr, 3)
                    } else {
                        Infix::Bin(BinOp::Shr, PREC_SHIFT, 2)
                    }
                } else if eq1 {
                    Infix::Bin(BinOp::Cmp, PREC_CMP, 2)
                } else {
                    Infix::Bin(BinOp::Cmp, PREC_CMP, 1)
                }
            }
            "&" => {
                if self.punct_at(1, "&") {
                    Infix::Bin(BinOp::And, PREC_AND, 2)
                } else if eq1 {
                    Infix::CompoundAssign(BinOp::BitAnd, 2)
                } else {
                    Infix::Bin(BinOp::BitAnd, PREC_BITAND, 1)
                }
            }
            "|" => {
                if self.punct_at(1, "|") {
                    Infix::Bin(BinOp::Or, PREC_OR, 2)
                } else if eq1 {
                    Infix::CompoundAssign(BinOp::BitOr, 2)
                } else {
                    Infix::Bin(BinOp::BitOr, PREC_BITOR, 1)
                }
            }
            "^" if eq1 => Infix::CompoundAssign(BinOp::BitXor, 2),
            "^" => Infix::Bin(BinOp::BitXor, PREC_BITXOR, 1),
            "+" if eq1 => Infix::CompoundAssign(BinOp::Add, 2),
            "+" => Infix::Bin(BinOp::Add, PREC_ADD, 1),
            "-" if eq1 => Infix::CompoundAssign(BinOp::Sub, 2),
            "-" => Infix::Bin(BinOp::Sub, PREC_ADD, 1),
            "*" if eq1 => Infix::CompoundAssign(BinOp::Mul, 2),
            "*" => Infix::Bin(BinOp::Mul, PREC_MUL, 1),
            "/" if eq1 => Infix::CompoundAssign(BinOp::Div, 2),
            "/" => Infix::Bin(BinOp::Div, PREC_MUL, 1),
            "%" if eq1 => Infix::CompoundAssign(BinOp::Rem, 2),
            "%" => Infix::Bin(BinOp::Rem, PREC_MUL, 1),
            ".." => Infix::Range { inclusive: false },
            "..=" => Infix::Range { inclusive: true },
            _ => return None,
        })
    }

    /// True when `e` is block-like: in statement position it needs no
    /// `;` and must not absorb a following unary `-`/`*`/`&` as a
    /// binary operator.
    fn is_block_like(e: &Expr) -> bool {
        matches!(
            e.kind,
            ExprKind::Block(_)
                | ExprKind::If { .. }
                | ExprKind::Match { .. }
                | ExprKind::While { .. }
                | ExprKind::Loop(_)
                | ExprKind::For { .. }
        )
    }

    fn parse_expr_bp(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(allow_struct);
        // A block-like expression in statement position terminates;
        // only method calls / fields / `?` may chain, which
        // parse_unary's postfix loop already consumed.
        if Self::is_block_like(&lhs) && min_bp == 0 {
            return lhs;
        }
        loop {
            // `as` cast binds tighter than any binary operator.
            if self.at_ident("as") {
                self.bump();
                let ty = self.parse_type();
                let line = lhs.line;
                lhs = Expr::new(
                    line,
                    ExprKind::Cast {
                        expr: Box::new(lhs),
                        ty,
                    },
                );
                continue;
            }
            let Some(op) = self.peek_infix() else { break };
            match op {
                Infix::Assign => {
                    if PREC_ASSIGN < min_bp {
                        break;
                    }
                    self.bump();
                    let rhs = self.parse_expr_bp(PREC_ASSIGN, allow_struct);
                    let line = lhs.line;
                    lhs = Expr::new(
                        line,
                        ExprKind::Assign {
                            op: None,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                }
                Infix::CompoundAssign(bin, n) => {
                    if PREC_ASSIGN < min_bp {
                        break;
                    }
                    for _ in 0..n {
                        self.bump();
                    }
                    let rhs = self.parse_expr_bp(PREC_ASSIGN, allow_struct);
                    let line = lhs.line;
                    lhs = Expr::new(
                        line,
                        ExprKind::Assign {
                            op: Some(bin),
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                }
                Infix::Range { inclusive } => {
                    let _ = inclusive;
                    if PREC_RANGE < min_bp {
                        break;
                    }
                    self.bump();
                    let hi = if self.range_has_rhs() {
                        Some(Box::new(self.parse_expr_bp(PREC_RANGE + 1, allow_struct)))
                    } else {
                        None
                    };
                    let line = lhs.line;
                    lhs = Expr::new(
                        line,
                        ExprKind::Range {
                            lo: Some(Box::new(lhs)),
                            hi,
                        },
                    );
                }
                Infix::Bin(bin, bp, n) => {
                    if bp < min_bp {
                        break;
                    }
                    for _ in 0..n {
                        self.bump();
                    }
                    let rhs = self.parse_expr_bp(bp + 1, allow_struct);
                    let line = lhs.line;
                    lhs = Expr::new(
                        line,
                        ExprKind::Binary {
                            op: bin,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                }
            }
        }
        lhs
    }

    /// True when the token after `..` starts an expression (rather than
    /// closing the range: `a..`, `..` before `)` `]` `}` `,` `;` `=`).
    /// `{` never begins a range rhs: in every position a range can
    /// appear, a following brace opens the enclosing block or body.
    fn range_has_rhs(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => !matches!(
                (&t.kind, t.text.as_str()),
                (TokKind::Punct, ")" | "]" | "}" | "," | ";" | "=>" | "{")
                    | (TokKind::Ident, "else")
            ),
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        // Prefix operators.
        if self.at_punct("-") {
            self.bump();
            let e = self.parse_unary(allow_struct);
            return Expr::new(
                line,
                ExprKind::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                },
            );
        }
        if self.at_punct("!") {
            self.bump();
            let e = self.parse_unary(allow_struct);
            return Expr::new(
                line,
                ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                },
            );
        }
        if self.at_punct("*") {
            self.bump();
            let e = self.parse_unary(allow_struct);
            return Expr::new(
                line,
                ExprKind::Unary {
                    op: UnOp::Deref,
                    expr: Box::new(e),
                },
            );
        }
        if self.at_punct("&") {
            self.bump();
            self.eat_punct("&"); // `&&x` = two refs
            self.eat_ident("mut");
            let e = self.parse_unary(allow_struct);
            return Expr::new(
                line,
                ExprKind::Unary {
                    op: UnOp::Ref,
                    expr: Box::new(e),
                },
            );
        }
        // Leading `..`/`..=` range.
        if self.at_punct("..") || self.at_punct("..=") {
            self.bump();
            let hi = if self.range_has_rhs() {
                Some(Box::new(self.parse_expr_bp(PREC_RANGE + 1, allow_struct)))
            } else {
                None
            };
            return Expr::new(line, ExprKind::Range { lo: None, hi });
        }
        let mut e = self.parse_primary(allow_struct);
        // Block-like expressions take no postfix in statement position,
        // but `match x {}.foo()` is legal; we allow postfix chaining
        // uniformly — the statement-termination rule in parse_expr_bp
        // handles the statement case before any operator is consumed.
        loop {
            if self.at_punct(".") {
                // `.await`, `.0`, `.field`, `.method(..)`.
                self.bump();
                match self.peek() {
                    Some(t) if t.kind == TokKind::Ident => {
                        let name = t.text.clone();
                        self.bump();
                        // Turbofish: `.collect::<Vec<_>>()`.
                        if self.at_punct("::") && self.punct_at(1, "<") {
                            self.bump();
                            self.skip_generics();
                        }
                        if self.at_punct("(") {
                            self.bump();
                            let args = self.parse_call_args();
                            e = Expr::new(
                                e.line,
                                ExprKind::MethodCall {
                                    recv: Box::new(e),
                                    name,
                                    args,
                                },
                            );
                        } else {
                            e = Expr::new(
                                e.line,
                                ExprKind::Field {
                                    recv: Box::new(e),
                                    name,
                                },
                            );
                        }
                    }
                    Some(t) if matches!(t.kind, TokKind::Int { .. }) => {
                        let name = t.text.clone();
                        self.bump();
                        e = Expr::new(
                            e.line,
                            ExprKind::Field {
                                recv: Box::new(e),
                                name,
                            },
                        );
                    }
                    Some(t) if matches!(t.kind, TokKind::Float) => {
                        // `x.0.1` lexes the `.0.1` as a float; model as
                        // an opaque field access.
                        self.bump();
                        e = Expr::new(
                            e.line,
                            ExprKind::Field {
                                recv: Box::new(e),
                                name: "0".to_string(),
                            },
                        );
                    }
                    _ => {
                        self.error("expected field or method name after `.`".to_string());
                        break;
                    }
                }
                continue;
            }
            if self.at_punct("(") && !Self::is_block_like(&e) {
                self.bump();
                let args = self.parse_call_args();
                e = Expr::new(
                    e.line,
                    ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                );
                continue;
            }
            if self.at_punct("[") && !Self::is_block_like(&e) {
                self.bump();
                let index = self.parse_expr();
                self.expect_punct("]", "to close index expression");
                e = Expr::new(
                    e.line,
                    ExprKind::Index {
                        recv: Box::new(e),
                        index: Box::new(index),
                    },
                );
                continue;
            }
            if self.at_punct("?") {
                self.bump();
                e = Expr::new(e.line, ExprKind::Try(Box::new(e)));
                continue;
            }
            break;
        }
        e
    }

    /// Parses `a, b, c)` call arguments; the `(` has been consumed.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        loop {
            if self.eat_punct(")") || self.peek().is_none() {
                return args;
            }
            args.push(self.parse_expr());
            if !self.eat_punct(",") && !self.at_punct(")") {
                self.error("expected `,` or `)` in call arguments".to_string());
                self.skip_to_list_sep();
            }
        }
    }

    fn parse_primary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else {
            self.error("unexpected end of input in expression".to_string());
            return Expr::new(line, ExprKind::Unknown);
        };
        match (&t.kind, t.text.as_str()) {
            (TokKind::Int { suffix }, text) => {
                let value = parse_int_text(text);
                let suffix = suffix.clone();
                self.bump();
                Expr::new(line, ExprKind::Int { value, suffix })
            }
            (TokKind::Float, _) => {
                self.bump();
                Expr::new(line, ExprKind::Float)
            }
            (TokKind::Str, _) => {
                self.bump();
                Expr::new(line, ExprKind::Str)
            }
            (TokKind::Char, _) => {
                self.bump();
                Expr::new(line, ExprKind::Char)
            }
            (TokKind::Lifetime, _) => {
                // A loop label: `'outer: loop { .. }`.
                self.bump();
                self.eat_punct(":");
                self.parse_primary(allow_struct)
            }
            (TokKind::Punct, "(") => {
                self.bump();
                let mut items = Vec::new();
                let mut trailing_comma = false;
                loop {
                    if self.eat_punct(")") || self.peek().is_none() {
                        break;
                    }
                    items.push(self.parse_expr());
                    if self.eat_punct(",") {
                        trailing_comma = true;
                    } else if !self.at_punct(")") {
                        self.error("expected `,` or `)` in tuple".to_string());
                        self.skip_to_list_sep();
                    } else {
                        trailing_comma = false;
                    }
                }
                if items.len() == 1 && !trailing_comma {
                    // Plain parenthesization.
                    items.pop().unwrap()
                } else {
                    Expr::new(line, ExprKind::Tuple(items))
                }
            }
            (TokKind::Punct, "[") => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    if self.eat_punct("]") || self.peek().is_none() {
                        break;
                    }
                    let e = self.parse_expr();
                    if self.eat_punct(";") {
                        let len = self.parse_expr();
                        self.expect_punct("]", "to close array repeat");
                        return Expr::new(
                            line,
                            ExprKind::Repeat {
                                elem: Box::new(e),
                                len: Box::new(len),
                            },
                        );
                    }
                    items.push(e);
                    if !self.eat_punct(",") && !self.at_punct("]") {
                        self.error("expected `,` or `]` in array".to_string());
                        self.skip_to_list_sep();
                    }
                }
                Expr::new(line, ExprKind::Array(items))
            }
            (TokKind::Punct, "{") => Expr::new(line, ExprKind::Block(self.parse_block())),
            (TokKind::Punct, "|") => self.parse_closure(line),
            (TokKind::Punct, "<") => {
                // Qualified path expression `<T as Trait>::method(..)`.
                self.bump();
                self.parse_type();
                if self.eat_ident("as") {
                    self.parse_type();
                }
                self.eat_punct(">");
                let mut path = Vec::new();
                while self.eat_punct("::") {
                    if self.at_punct("<") {
                        self.skip_generics();
                        continue;
                    }
                    path.push(self.ident("in qualified path expression"));
                }
                Expr::new(line, ExprKind::Path(path))
            }
            (TokKind::Ident, kw) => match kw {
                "if" => self.parse_if(line),
                "match" => self.parse_match(line),
                "while" => self.parse_while(line),
                "loop" => {
                    self.bump();
                    Expr::new(line, ExprKind::Loop(self.parse_block()))
                }
                "for" => self.parse_for(line),
                "unsafe" => {
                    self.bump();
                    Expr::new(line, ExprKind::Block(self.parse_block()))
                }
                "return" => {
                    self.bump();
                    let val = if self.expr_follows() {
                        Some(Box::new(self.parse_expr_bp(PREC_ASSIGN, allow_struct)))
                    } else {
                        None
                    };
                    Expr::new(line, ExprKind::Return(val))
                }
                "break" => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    let val = if self.expr_follows() {
                        Some(Box::new(self.parse_expr_bp(PREC_ASSIGN, allow_struct)))
                    } else {
                        None
                    };
                    Expr::new(line, ExprKind::Break(val))
                }
                "continue" => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    Expr::new(line, ExprKind::Continue)
                }
                "move" => {
                    self.bump();
                    if self.at_punct("|") {
                        self.parse_closure(line)
                    } else if self.punct_at(0, "{") {
                        Expr::new(line, ExprKind::Block(self.parse_block()))
                    } else {
                        self.error("expected closure or block after `move`".to_string());
                        Expr::new(line, ExprKind::Unknown)
                    }
                }
                "true" | "false" => {
                    self.bump();
                    Expr::new(line, ExprKind::Path(vec![kw.to_string()]))
                }
                "let" => {
                    // `if let` scrutinee position handles patterns; a
                    // bare `let` chain (let-else in conditions).
                    self.bump();
                    self.parse_pattern_binder();
                    if self.eat_punct("=") {
                        self.parse_expr_bp(PREC_OR + 1, allow_struct)
                    } else {
                        Expr::new(line, ExprKind::Unknown)
                    }
                }
                _ => self.parse_path_expr(line, allow_struct),
            },
            (TokKind::Punct, p) => {
                self.error(format!("unexpected token `{p}` in expression"));
                self.bump();
                Expr::new(line, ExprKind::Unknown)
            }
        }
    }

    /// True when the current token can begin an expression (used after
    /// `return` / `break`).
    fn expr_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => !matches!(
                (&t.kind, t.text.as_str()),
                (TokKind::Punct, ";" | "," | ")" | "]" | "}" | "=>") | (TokKind::Ident, "else")
            ),
        }
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        self.bump(); // |
        let mut params = Vec::new();
        loop {
            if self.eat_punct("|") || self.peek().is_none() {
                break;
            }
            let name = self.parse_pattern_binder();
            if self.eat_punct(":") {
                self.parse_type();
            }
            params.push(name);
            if !self.eat_punct(",") && !self.at_punct("|") {
                // Patterns like `|Reverse(e)|` end here already; any
                // other stall means the pattern skipper stopped at a
                // token it does not own. Bail on the closure header.
                if !self.at_punct("|") {
                    break;
                }
            }
        }
        if self.at_punct("->") {
            self.bump();
            self.parse_type();
            // Typed closures require a block body.
            let body = Expr::new(self.line(), ExprKind::Block(self.parse_block()));
            return Expr::new(
                line,
                ExprKind::Closure {
                    params,
                    body: Box::new(body),
                },
            );
        }
        let body = self.parse_expr_bp(PREC_ASSIGN, true);
        Expr::new(
            line,
            ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        )
    }

    fn parse_if(&mut self, line: u32) -> Expr {
        self.bump(); // if
        let cond = if self.at_ident("let") {
            self.bump();
            self.skip_if_let_pattern();
            if self.eat_punct("=") {
                self.parse_expr_no_struct()
            } else {
                self.error("expected `=` in `if let`".to_string());
                Expr::new(self.line(), ExprKind::Unknown)
            }
        } else {
            self.parse_expr_no_struct()
        };
        let then = self.parse_block();
        let els = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                Some(Box::new(self.parse_if(self.line())))
            } else {
                let l = self.line();
                Some(Box::new(Expr::new(l, ExprKind::Block(self.parse_block()))))
            }
        } else {
            None
        };
        Expr::new(
            line,
            ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
        )
    }

    /// Skips an `if let` / `while let` pattern up to the top-level `=`.
    fn skip_if_let_pattern(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return;
                        }
                        depth -= 1;
                    }
                    "=" if depth == 0 => return,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn parse_match(&mut self, line: u32) -> Expr {
        self.bump(); // match
        let scrutinee = self.parse_expr_no_struct();
        let mut arms = Vec::new();
        if !self.expect_punct("{", "to open match body") {
            return Expr::new(
                line,
                ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                },
            );
        }
        loop {
            self.skip_attrs();
            if self.eat_punct("}") || self.peek().is_none() {
                break;
            }
            let pat_idents = self.parse_arm_pattern();
            let guard = if self.at_ident("if") {
                self.bump();
                // Unlike scrutinees, guards end at `=>`, so struct
                // literals are legal in them.
                Some(self.parse_expr())
            } else {
                None
            };
            if !self.expect_punct("=>", "after match pattern") {
                // Recover to next arm or close.
                self.skip_to_arm_end();
                continue;
            }
            let body = self.parse_expr();
            let block_like = Self::is_block_like(&body);
            arms.push(Arm {
                pat_idents,
                guard,
                body,
            });
            if !self.eat_punct(",") && !block_like && !self.at_punct("}") {
                self.error("expected `,` after match arm".to_string());
                self.skip_to_arm_end();
            }
        }
        Expr::new(
            line,
            ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        )
    }

    /// Collects identifiers from a match-arm pattern, stopping before
    /// the top-level `=>` or `if` guard.
    fn parse_arm_pattern(&mut self) -> Vec<String> {
        let mut idents = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match (&t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[" | "{") => depth += 1,
                (TokKind::Punct, ")" | "]" | "}") => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                (TokKind::Punct, "=>") if depth == 0 => break,
                (TokKind::Ident, "if") if depth == 0 => break,
                (TokKind::Ident, name) => idents.push(name.to_string()),
                _ => {}
            }
            self.bump();
        }
        idents
    }

    /// Skips to the end of a broken match arm: past the next top-level
    /// `,`, or before the closing `}`.
    fn skip_to_arm_end(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        if depth == 0 {
                            return;
                        }
                        depth -= 1;
                    }
                    "," if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn parse_while(&mut self, line: u32) -> Expr {
        self.bump(); // while
        let cond = if self.at_ident("let") {
            self.bump();
            self.skip_if_let_pattern();
            if self.eat_punct("=") {
                self.parse_expr_no_struct()
            } else {
                Expr::new(self.line(), ExprKind::Unknown)
            }
        } else {
            self.parse_expr_no_struct()
        };
        let body = self.parse_block();
        Expr::new(
            line,
            ExprKind::While {
                cond: Box::new(cond),
                body,
            },
        )
    }

    fn parse_for(&mut self, line: u32) -> Expr {
        self.bump(); // for
        let pat = self.parse_pattern_binder();
        if !self.eat_ident("in") {
            self.error("expected `in` in `for` loop".to_string());
        }
        let iter = self.parse_expr_no_struct();
        let body = self.parse_block();
        Expr::new(
            line,
            ExprKind::For {
                pat,
                iter: Box::new(iter),
                body,
            },
        )
    }

    /// Parses a path expression and its immediate continuations: a
    /// macro invocation, a struct literal, or the bare path.
    fn parse_path_expr(&mut self, line: u32, allow_struct: bool) -> Expr {
        let mut path = vec![self.ident("at start of path")];
        loop {
            if self.at_punct("!") && !self.punct_at(1, "=") {
                // Macro invocation.
                self.bump();
                let open = match self.peek() {
                    Some(t)
                        if t.kind == TokKind::Punct
                            && matches!(t.text.as_str(), "(" | "[" | "{") =>
                    {
                        t.text.clone()
                    }
                    _ => {
                        self.error("expected macro delimiter".to_string());
                        return Expr::new(line, ExprKind::Unknown);
                    }
                };
                self.bump();
                let toks = self.collect_balanced(&open);
                let name = path.pop().unwrap_or_default();
                return Expr::new(line, ExprKind::Macro { name, toks });
            }
            if self.eat_punct("::") {
                if self.at_punct("<") {
                    // Turbofish.
                    self.skip_generics();
                    continue;
                }
                if self.at_punct("{") {
                    // `use`-like braces never appear here; treat as end.
                    break;
                }
                path.push(self.ident("in path"));
                continue;
            }
            break;
        }
        if allow_struct && self.at_punct("{") && self.struct_lit_follows() {
            return self.parse_struct_lit(line, path);
        }
        Expr::new(line, ExprKind::Path(path))
    }

    /// Heuristic confirming `{` opens a struct literal: the token after
    /// `{` is `}`, `..`, or an identifier followed by `:`/`,`/`}`.
    fn struct_lit_follows(&self) -> bool {
        match self.peek_at(1) {
            None => false,
            Some(t) if t.kind == TokKind::Punct && (t.text == "}" || t.text == "..") => true,
            Some(t) if t.kind == TokKind::Ident => match self.peek_at(2) {
                Some(t2) if t2.kind == TokKind::Punct => {
                    matches!(t2.text.as_str(), ":" | "," | "}")
                        // `Foo { x: ..` but not `Foo { x::y` (a block
                        // starting with a path).
                        && !(t2.text == ":" && self.punct_at(3, ":"))
                }
                _ => false,
            },
            _ => false,
        }
    }

    fn parse_struct_lit(&mut self, line: u32, path: Vec<String>) -> Expr {
        self.bump(); // {
        let mut fields = Vec::new();
        let mut rest = None;
        loop {
            if self.eat_punct("}") || self.peek().is_none() {
                break;
            }
            if self.at_punct("..") {
                self.bump();
                rest = Some(Box::new(self.parse_expr()));
                self.eat_punct(",");
                continue;
            }
            let name = self.ident("as struct literal field");
            let value = if self.eat_punct(":") {
                Some(self.parse_expr())
            } else {
                None // shorthand
            };
            fields.push((name, value));
            if !self.eat_punct(",") && !self.at_punct("}") {
                self.error("expected `,` or `}` in struct literal".to_string());
                self.skip_to_list_sep();
            }
        }
        Expr::new(line, ExprKind::StructLit { path, fields, rest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::LexFile;

    fn parse_ok(src: &str) -> SourceFile {
        let lex = LexFile::lex(src);
        let (file, errs) = parse_file(&lex);
        assert!(errs.is_empty(), "parse errors: {errs:?}\nsource: {src}");
        file
    }

    fn first_fn(file: &SourceFile) -> &FnItem {
        for item in &file.items {
            if let ItemKind::Fn(f) = &item.kind {
                return f;
            }
        }
        panic!("no fn item");
    }

    #[test]
    fn precedence_shapes_the_tree() {
        let file = parse_ok("fn f() -> i64 { 1 + 2 * 3 }");
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(e) = &body.stmts[0] else {
            panic!("expected expression statement")
        };
        let ExprKind::Binary { op, rhs, .. } = &e.kind else {
            panic!("expected binary, got {e:?}")
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn shifts_and_comparisons_join() {
        let file = parse_ok("fn f(x: u128) -> bool { (x << 2) >= 4 && x != 0 || x <= 1 }");
        let f = first_fn(&file);
        assert!(f.body.is_some());
    }

    #[test]
    fn generics_do_not_eat_shr() {
        let file = parse_ok(
            "fn f() { let v: Vec<Vec<u64>> = Vec::new(); let x = 1u64 >> 2; let _ = (v, x); }",
        );
        let f = first_fn(&file);
        assert_eq!(f.body.as_ref().unwrap().stmts.len(), 3);
    }

    #[test]
    fn struct_literals_suppressed_in_conditions() {
        let file = parse_ok("fn f(c: bool) { if c { g(); } for i in 0..n { h(i); } }");
        let f = first_fn(&file);
        let Stmt::Expr(e) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::If { .. }));
    }

    #[test]
    fn struct_literal_in_plain_expression() {
        let file = parse_ok("fn f() -> P { P { x: 1, y } }");
        let f = first_fn(&file);
        let Stmt::Expr(e) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        let ExprKind::StructLit { path, fields, .. } = &e.kind else {
            panic!("expected struct literal, got {e:?}")
        };
        assert_eq!(path, &vec!["P".to_string()]);
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn method_chains_turbofish_and_try() {
        parse_ok(
            "fn f() -> Result<Vec<u64>, E> { let v = xs.iter().map(|x| x + 1).collect::<Vec<_>>(); g(v)?; Ok(v) }",
        );
    }

    #[test]
    fn impl_blocks_carry_methods() {
        let file = parse_ok(
            "impl Ord for Priority { fn cmp(&self, other: &Self) -> Ordering { self.key.cmp(&other.key) } }",
        );
        let ItemKind::Impl {
            type_name,
            trait_name,
            items,
        } = &file.items[0].kind
        else {
            panic!()
        };
        assert_eq!(type_name, "Priority");
        assert_eq!(trait_name.as_deref(), Some("Ord"));
        let ItemKind::Fn(f) = &items[0].kind else {
            panic!()
        };
        assert!(f.has_self);
        assert_eq!(f.name, "cmp");
    }

    #[test]
    fn match_arms_with_guards_and_paths() {
        parse_ok(
            "fn f(x: Option<u64>) -> u64 { match x { Some(v) if v > 3 => v, Some(_) | None => 0 } }",
        );
    }

    #[test]
    fn let_else_and_if_let() {
        parse_ok(
            "fn f(x: Option<u64>) -> u64 { let Some(v) = x else { return 0; }; if let Some(w) = g(v) { w } else { v } }",
        );
    }

    #[test]
    fn casts_bind_tighter_than_binary() {
        let file = parse_ok("fn f(x: u32) -> u64 { x as u64 + 1 }");
        let f = first_fn(&file);
        let Stmt::Expr(e) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            lhs,
            ..
        } = &e.kind
        else {
            panic!("expected add at top, got {e:?}")
        };
        assert!(matches!(lhs.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn const_values_parse_with_shifts() {
        let file = parse_ok("pub const SLOT_BOUND: i64 = 1i64 << 46;");
        let ItemKind::Const { name, value, .. } = &file.items[0].kind else {
            panic!()
        };
        assert_eq!(name, "SLOT_BOUND");
        let Some(Expr {
            kind: ExprKind::Binary { op: BinOp::Shl, .. },
            ..
        }) = value
        else {
            panic!("expected shl, got {value:?}")
        };
    }

    #[test]
    fn use_trees_flatten() {
        let file = parse_ok("use a::{b, c::d, e::*};");
        let ItemKind::Use { paths } = &file.items[0].kind else {
            panic!()
        };
        assert_eq!(
            paths,
            &vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["a".to_string(), "c".to_string(), "d".to_string()],
                vec!["a".to_string(), "e".to_string(), "*".to_string()],
            ]
        );
    }

    #[test]
    fn macros_keep_their_tokens() {
        let file = parse_ok("fn f() { assert_eq!(a, b); panic!(\"boom {x}\"); }");
        let f = first_fn(&file);
        let mut names = Vec::new();
        crate::ast::walk_block(f.body.as_ref().unwrap(), &mut |e| {
            if let ExprKind::Macro { name, .. } = &e.kind {
                names.push(name.clone());
            }
        });
        assert_eq!(names, vec!["assert_eq", "panic"]);
    }

    #[test]
    fn closures_and_higher_order_params() {
        parse_ok(
            "fn f(mut g: impl FnMut(&QueueEntry) -> bool, h: &dyn Fn(u64) -> u64) { g(&e); h(1); }",
        );
    }

    #[test]
    fn ranges_parse_in_for_and_index() {
        parse_ok("fn f(xs: &[u64]) { for i in 0..xs.len() { let _ = &xs[1..=i]; } }");
    }

    #[test]
    fn qualified_paths_and_ufcs() {
        parse_ok("fn f() { let x = <u64 as TryFrom<i64>>::try_from(1); u64::try_from(x); }");
    }

    #[test]
    fn statement_block_then_unary_minus() {
        // `{ .. } - 1` in statement position is two statements, not a
        // subtraction.
        let file = parse_ok("fn f() { if c { g(); } -1; }");
        let f = first_fn(&file);
        assert_eq!(f.body.as_ref().unwrap().stmts.len(), 2);
    }

    #[test]
    fn labeled_loops_and_breaks() {
        parse_ok("fn f() { 'outer: loop { while t { break 'outer; } continue 'outer; } }");
    }

    #[test]
    fn struct_fields_record_types() {
        let file = parse_ok("struct Ring { base: i64, buckets: Vec<Vec<Subtask>> }");
        let ItemKind::Struct { fields, .. } = &file.items[0].kind else {
            panic!()
        };
        assert_eq!(fields[0].0, "base");
        assert_eq!(fields[0].1.head, "i64");
        assert_eq!(fields[1].1.head, "Vec");
        assert_eq!(fields[1].1.args[0].head, "Vec");
    }

    #[test]
    fn tolerant_recovery_keeps_later_items() {
        let lex = LexFile::lex("fn broken( { } fn ok() { 1; }");
        let (file, errs) = parse_file(&lex);
        assert!(!errs.is_empty());
        assert!(file
            .items
            .iter()
            .any(|i| matches!(&i.kind, ItemKind::Fn(f) if f.name == "ok")));
    }

    #[test]
    fn test_regions_flow_into_items() {
        let file = parse_ok("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }");
        assert!(!file.items[0].in_test);
        assert!(file.items[1].in_test);
    }
}
