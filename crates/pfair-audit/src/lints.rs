//! The lint catalog.
//!
//! Each lint enforces one invariant the paper's correctness story rests
//! on (see DESIGN.md, "Invariant catalog & static audit"):
//!
//! - [`NO_FLOAT`]: lag/drift/weight reasoning is exact rational
//!   arithmetic; a float anywhere near it silently breaks Theorems 3–5.
//! - [`NO_LOSSY_CASTS`]: time, weight, and lag quantities travel between
//!   integer widths only through `From`/`TryFrom`/checked helpers.
//! - [`NO_PANIC`]: library code in the scheduling crates must surface
//!   errors, not `unwrap()`; the executor is meant to run unattended.
//! - [`RAW_ARITH`]: unchecked `+`/`-`/`*` on raw `i64`/`i128` operands
//!   belongs in `rational.rs`/`time.rs`, where overflow is documented
//!   policy, and nowhere else.
//!
//! Any lint can be suppressed for one line with
//! `// audit: allow(<lint>, <reason>)` — on the same line or the line
//! directly above. The annotation **must** carry a reason; a bare allow
//! or an allow that suppresses nothing is itself a finding, so the
//! escape hatch cannot rot silently.

use crate::lexer::{LexFile, Tok, TokKind};

/// Canonical name of the float lint.
pub const NO_FLOAT: &str = "no-float-in-scheduling";
/// Canonical name of the cast lint.
pub const NO_LOSSY_CASTS: &str = "no-lossy-casts";
/// Canonical name of the panic lint.
pub const NO_PANIC: &str = "no-panic-in-library";
/// Canonical name of the raw-arithmetic lint.
pub const RAW_ARITH: &str = "raw-arithmetic-quarantine";
/// Canonical name of the call-graph panic-reachability pass.
pub const PANIC_REACH: &str = "panic-reach";
/// Canonical name of the determinism-dataflow pass.
pub const NONDETERMINISM: &str = "nondeterminism";
/// Canonical name of the interval/overflow pass.
pub const OVERFLOW_INTERVAL: &str = "overflow-interval";
/// Canonical name of the exact-arithmetic float-taint pass.
pub const FLOAT_TAINT: &str = "float-taint";
/// Pseudo-lint reporting malformed or unused `audit: allow` annotations.
pub const BAD_ANNOTATION: &str = "audit-annotation";
/// Pseudo-lint reporting files the parser could not fully shape; a
/// parse error is an analysis blind spot, so it gates like a finding.
pub const PARSE_ERROR: &str = "audit-parse";

/// All real lints, with one-line descriptions (shown by `list-lints`).
/// The first four are the PR 1 token lints; the last four are the
/// AST/call-graph passes.
pub const CATALOG: &[(&str, &str)] = &[
    (
        NO_FLOAT,
        "f32/f64 are forbidden where exact rational arithmetic is required",
    ),
    (
        NO_LOSSY_CASTS,
        "bare `as` numeric casts must be From/TryFrom or a checked helper",
    ),
    (
        NO_PANIC,
        "unwrap()/expect()/panic! are forbidden in scheduling library code",
    ),
    (
        RAW_ARITH,
        "unchecked +,-,* on raw i64/i128 operands outside rational.rs/time.rs",
    ),
    (
        PANIC_REACH,
        "panic sources transitively reachable from the scheduling entry points",
    ),
    (
        NONDETERMINISM,
        "hash-order, wall-clock, thread-id, and pointer-derived values in scheduling code",
    ),
    (
        OVERFLOW_INTERVAL,
        "interval analysis of `audit: prove(overflow-bounds)` functions",
    ),
    (
        FLOAT_TAINT,
        "float/lossy values must never flow into Rational, Priority, or slot counts",
    ),
];

/// Short aliases accepted inside `audit: allow(..)` annotations.
pub fn canonical_lint(name: &str) -> Option<&'static str> {
    match name {
        NO_FLOAT | "float" => Some(NO_FLOAT),
        NO_LOSSY_CASTS | "lossy-cast" => Some(NO_LOSSY_CASTS),
        NO_PANIC | "panic" => Some(NO_PANIC),
        RAW_ARITH | "raw-arithmetic" => Some(RAW_ARITH),
        PANIC_REACH => Some(PANIC_REACH),
        NONDETERMINISM | "nondet" => Some(NONDETERMINISM),
        OVERFLOW_INTERVAL | "overflow" => Some(OVERFLOW_INTERVAL),
        FLOAT_TAINT => Some(FLOAT_TAINT),
        _ => None,
    }
}

/// One diagnostic, before path-level filtering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based source line.
    pub line: u32,
    /// Canonical lint name.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

const NUMERIC_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize", "f32",
    "f64",
];

/// Runs `lint` over a lexed file, returning findings in source order.
/// Test regions (`#[cfg(test)]` / `#[test]` / `#[bench]` items) are
/// skipped for every lint: test code may take shortcuts.
pub fn run_lint(lint: &str, file: &LexFile) -> Vec<RawFinding> {
    match lint {
        NO_FLOAT => no_float(file),
        NO_LOSSY_CASTS => no_lossy_casts(file),
        NO_PANIC => no_panic(file),
        RAW_ARITH => raw_arith(file),
        _ => Vec::new(),
    }
}

fn live(file: &LexFile) -> impl Iterator<Item = (usize, &Tok)> {
    file.toks
        .iter()
        .enumerate()
        .filter(|(i, _)| !file.in_test[*i])
}

fn no_float(file: &LexFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (_, t) in live(file) {
        let hit = match &t.kind {
            TokKind::Ident => t.text == "f32" || t.text == "f64",
            TokKind::Float => true,
            _ => false,
        };
        if hit {
            out.push(RawFinding {
                line: t.line,
                lint: NO_FLOAT,
                message: "floating point where exact rational arithmetic is required \
                          (use pfair_core::Rational)"
                    .into(),
            });
        }
    }
    out
}

fn no_lossy_casts(file: &LexFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, t) in live(file) {
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let Some(next) = file.toks.get(i + 1) else {
            continue;
        };
        if next.kind == TokKind::Ident && NUMERIC_TYPES.contains(&next.text.as_str()) {
            out.push(RawFinding {
                line: t.line,
                lint: NO_LOSSY_CASTS,
                message: format!(
                    "bare `as {}` cast on a scheduling quantity; use From/TryFrom \
                     or a checked helper",
                    next.text
                ),
            });
        }
    }
    out
}

fn no_panic(file: &LexFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, t) in live(file) {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let after_dot = i > 0 && file.toks[i - 1].text == ".";
                let called = file.toks.get(i + 1).is_some_and(|n| n.text == "(");
                if after_dot && called {
                    out.push(RawFinding {
                        line: t.line,
                        lint: NO_PANIC,
                        message: format!(
                            ".{}() in scheduling library code; propagate the error \
                             or document the invariant with an audited expect",
                            t.text
                        ),
                    });
                }
            }
            "panic" if file.toks.get(i + 1).is_some_and(|n| n.text == "!") => {
                out.push(RawFinding {
                    line: t.line,
                    lint: NO_PANIC,
                    message: "panic! in scheduling library code; return an error instead".into(),
                });
            }
            _ => {}
        }
    }
    out
}

/// True when the token can end an operand expression, making a
/// following `-`/`*` a binary operator rather than a unary one.
fn ends_operand(t: &Tok) -> bool {
    matches!(
        t.kind,
        TokKind::Ident | TokKind::Int { .. } | TokKind::Float
    ) || t.text == ")"
        || t.text == "]"
}

/// True when token `i` is a raw wide-integer operand: a suffixed
/// `i64`/`i128` literal, or the `i64`/`i128` of an `as` cast.
fn wide_raw_operand(file: &LexFile, i: usize) -> bool {
    match &file.toks[i].kind {
        TokKind::Int { suffix: Some(s) } => s == "i64" || s == "i128",
        TokKind::Ident => {
            (file.toks[i].text == "i64" || file.toks[i].text == "i128")
                && i > 0
                && file.toks[i - 1].text == "as"
        }
        _ => false,
    }
}

fn raw_arith(file: &LexFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, t) in live(file) {
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "*") {
            continue;
        }
        let binary = i > 0 && ends_operand(&file.toks[i - 1]);
        if !binary {
            continue;
        }
        let lhs_wide = wide_raw_operand(file, i - 1);
        // The right operand is wide when it is itself a suffixed
        // literal, or a simple operand immediately cast (`* t as i128`).
        let rhs_wide = (file.toks.get(i + 1).is_some() && wide_raw_operand(file, i + 1))
            || (matches!(
                file.toks.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Ident | TokKind::Int { .. })
            ) && file.toks.get(i + 2).is_some_and(|t| t.text == "as")
                && file
                    .toks
                    .get(i + 3)
                    .is_some_and(|t| t.text == "i64" || t.text == "i128"));
        if lhs_wide || rhs_wide {
            out.push(RawFinding {
                line: t.line,
                lint: RAW_ARITH,
                message: format!(
                    "unchecked `{}` on a raw i64/i128 operand; quarantine wide \
                     arithmetic in rational.rs/time.rs or use checked_* methods",
                    t.text
                ),
            });
        }
    }
    out
}

/// A parsed `audit: allow(lint, reason)` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line the annotation comment starts on.
    pub line: u32,
    /// Canonical lint name, or `Err(raw)` for an unknown lint.
    pub lint: Result<&'static str, String>,
    /// The justification, possibly empty.
    pub reason: String,
}

/// An `// audit: prove(<property>)` directive: opts the next function
/// into a strict analysis mode (today: `overflow-bounds`).
#[derive(Clone, Debug)]
pub struct Prove {
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The property name inside the parentheses.
    pub property: String,
}

/// An `// audit: assume(<name> in <lo>..=<hi>)` directive: a documented
/// input contract seeding the overflow pass's interval for a parameter
/// or local.
#[derive(Clone, Debug)]
pub struct Assume {
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The constrained binding.
    pub name: String,
    /// Lower-bound expression text (may reference workspace consts).
    pub lo: String,
    /// Upper-bound expression text (inclusive).
    pub hi: String,
}

/// Extracts `audit: allow(..)` annotations from a file's comments. A
/// single comment may carry several `;`-separated clauses
/// (`// audit: allow(panic, r1); allow(panic-reach, r2)`), each
/// suppressing its own lint on the same covered line.
pub fn parse_allows(file: &LexFile) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &file.comments {
        let Some(idx) = c.text.find("audit:") else {
            continue;
        };
        let mut rest = &c.text[idx + "audit:".len()..];
        loop {
            let trimmed = rest.trim_start();
            let Some(after_kw) = trimmed
                .strip_prefix("allow")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('('))
            else {
                break;
            };
            let Some(close) = after_kw.find(')') else {
                break;
            };
            let inner = &after_kw[..close];
            let (name, reason) = match inner.split_once(',') {
                Some((n, r)) => (n.trim(), r.trim()),
                None => (inner.trim(), ""),
            };
            out.push(Allow {
                line: c.line,
                lint: canonical_lint(name).ok_or_else(|| name.to_string()),
                reason: reason.to_string(),
            });
            rest = after_kw[close + 1..]
                .trim_start()
                .strip_prefix(';')
                .unwrap_or("");
        }
    }
    out
}

/// Extracts `audit: prove(..)` directives.
pub fn parse_proves(file: &LexFile) -> Vec<Prove> {
    let mut out = Vec::new();
    for c in &file.comments {
        if let Some(inner) = directive_body(&c.text, "prove") {
            out.push(Prove {
                line: c.line,
                property: inner.trim().to_string(),
            });
        }
    }
    out
}

/// Extracts `audit: assume(name in lo..=hi)` directives. Malformed
/// bodies are returned with empty bounds so the overflow pass can
/// report them instead of silently ignoring the contract.
pub fn parse_assumes(file: &LexFile) -> Vec<Assume> {
    let mut out = Vec::new();
    for c in &file.comments {
        let Some(inner) = directive_body(&c.text, "assume") else {
            continue;
        };
        let (name, bounds) = match inner.split_once(" in ") {
            Some((n, b)) => (n.trim().to_string(), b.trim()),
            None => (inner.trim().to_string(), ""),
        };
        let (lo, hi) = match bounds.split_once("..=") {
            Some((l, h)) => (l.trim().to_string(), h.trim().to_string()),
            None => (String::new(), String::new()),
        };
        out.push(Assume {
            line: c.line,
            name,
            lo,
            hi,
        });
    }
    out
}

/// The parenthesized body of `audit: <keyword>(..)`, if the comment
/// carries that directive.
fn directive_body<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let idx = text.find("audit:")?;
    let rest = text[idx + "audit:".len()..].trim_start();
    let rest = rest.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    Some(&rest[..close])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(lint: &str, src: &str) -> Vec<u32> {
        run_lint(lint, &LexFile::lex(src))
            .iter()
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn float_lint_sees_types_and_literals() {
        let src = "fn f(x: f64) -> f32 {\n    0.5\n}";
        assert_eq!(lines(NO_FLOAT, src), vec![1, 1, 2]);
    }

    #[test]
    fn float_lint_skips_tests_and_comments() {
        let src = "// f64 here\n#[cfg(test)]\nmod tests {\n    fn t() -> f64 { 1.0 }\n}";
        assert!(lines(NO_FLOAT, src).is_empty());
    }

    #[test]
    fn cast_lint_flags_numeric_targets_only() {
        let src = "let a = x as u32;\nlet b = y as Weight;\nlet c = z as usize;";
        assert_eq!(lines(NO_LOSSY_CASTS, src), vec![1, 3]);
    }

    #[test]
    fn panic_lint_flags_method_calls_not_names() {
        let src = "let a = x.unwrap();\nlet b = Foo::unwrap;\nfn expect() {}\npanic!(\"boom\");\nlet c = y.expect(\"msg\");";
        assert_eq!(lines(NO_PANIC, src), vec![1, 4, 5]);
    }

    #[test]
    fn raw_arith_needs_a_wide_operand() {
        let src = "let a = x as i128 * y;\nlet b = p + 1i64;\nlet c = p + 1;\nlet d = -x;\nlet e = a * b;\nlet f = num * t as i128;";
        assert_eq!(lines(RAW_ARITH, src), vec![1, 2, 6]);
    }

    #[test]
    fn raw_arith_ignores_deref_and_arrows() {
        let src = "fn f(x: &i64) -> i64 { *x }\nlet c: fn() -> i128 = f;";
        assert!(lines(RAW_ARITH, src).is_empty());
    }

    #[test]
    fn multi_clause_allows_parse_from_one_comment() {
        let f = LexFile::lex(
            "// audit: allow(panic, slot fits by construction); allow(panic-reach, clamp bounds the index)\nlet x = v[i];",
        );
        let allows = parse_allows(&f);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].lint, Ok(NO_PANIC));
        assert_eq!(allows[1].lint, Ok(PANIC_REACH));
        assert_eq!(allows[1].reason, "clamp bounds the index");
        assert_eq!(allows[0].line, allows[1].line);
    }

    #[test]
    fn prove_and_assume_directives_parse() {
        let f = LexFile::lex(
            "// audit: prove(overflow-bounds)\n// audit: assume(deadline in -SLOT_BOUND..=SLOT_BOUND)\nfn biased(deadline: i64) -> u128 { 0 }",
        );
        let proves = parse_proves(&f);
        assert_eq!(proves.len(), 1);
        assert_eq!(proves[0].property, "overflow-bounds");
        let assumes = parse_assumes(&f);
        assert_eq!(assumes.len(), 1);
        assert_eq!(assumes[0].name, "deadline");
        assert_eq!(assumes[0].lo, "-SLOT_BOUND");
        assert_eq!(assumes[0].hi, "SLOT_BOUND");
    }

    #[test]
    fn allows_parse_with_and_without_reason() {
        let f = LexFile::lex(
            "// audit: allow(lossy-cast, u32 -> usize is lossless here)\nlet x = 1;\n// audit: allow(float)\n// audit: allow(bogus, hm)",
        );
        let allows = parse_allows(&f);
        assert_eq!(allows.len(), 3);
        assert_eq!(allows[0].lint, Ok(NO_LOSSY_CASTS));
        assert!(!allows[0].reason.is_empty());
        assert_eq!(allows[1].lint, Ok(NO_FLOAT));
        assert!(allows[1].reason.is_empty());
        assert!(allows[2].lint.is_err());
    }
}
