//! Command-line front end: `pfair-audit check [ROOT] [--config PATH]`.

use std::path::PathBuf;
use std::process::ExitCode;

use pfair_audit::config::Config;
use pfair_audit::{audit_root, lints};

const USAGE: &str = "\
usage: pfair-audit <command>

commands:
  check [ROOT] [--config PATH]   audit the tree at ROOT (default `.`)
                                 against PATH (default ROOT/audit.toml);
                                 exits 1 when findings exist
  list-lints                     print the lint catalog
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("list-lints") => {
            for (name, desc) in lints::CATALOG {
                println!("{name:<28} {desc}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pfair-audit: --config needs a path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("pfair-audit: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("audit.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pfair-audit: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pfair-audit: {e}");
            return ExitCode::from(2);
        }
    };
    // The config must stay as honest as the annotations: a typo'd
    // `[lint.*]` section would otherwise silently audit nothing.
    for name in cfg.lints.keys() {
        if !lints::CATALOG.iter().any(|(known, _)| known == name) {
            eprintln!(
                "pfair-audit: unknown lint `{name}` in {}; known lints: {}",
                config_path.display(),
                lints::CATALOG
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::from(2);
        }
    }
    match audit_root(&root, &cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("pfair-audit: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("pfair-audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("pfair-audit: {e}");
            ExitCode::from(2)
        }
    }
}
