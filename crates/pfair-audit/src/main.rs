//! Command-line front end:
//! `pfair-audit check [ROOT] [--config PATH] [--report json] [--out FILE]`.

use std::path::PathBuf;
use std::process::ExitCode;

use pfair_audit::config::Config;
use pfair_audit::{audit_report, lints, report};

const USAGE: &str = "\
usage: pfair-audit <command>

commands:
  check [ROOT] [--config PATH] [--report json] [--out FILE]
      audit the tree at ROOT (default `.`) against PATH (default
      ROOT/audit.toml); exits 1 when active findings exist.
      --report json prints the full machine-readable report (all
      findings, discharged ones included, plus panic-reach entry-point
      verdicts); --out FILE writes it to FILE instead of stdout.
  list-lints
      print the lint catalog
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("list-lints") => {
            for (name, desc) in lints::CATALOG {
                println!("{name:<28} {desc}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut report_json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pfair-audit: --config needs a path");
                    return ExitCode::from(2);
                }
            },
            "--report" => match it.next().map(String::as_str) {
                Some("json") => report_json = true,
                Some(other) => {
                    eprintln!("pfair-audit: unknown report format `{other}` (only `json`)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("pfair-audit: --report needs a format (`json`)");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pfair-audit: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("pfair-audit: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }
    if out_path.is_some() && !report_json {
        eprintln!("pfair-audit: --out requires --report json");
        return ExitCode::from(2);
    }
    let config_path = config_path.unwrap_or_else(|| root.join("audit.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pfair-audit: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    // Unknown lint names in `[lint.*]` headers are rejected with a
    // spanned error by the parser itself — a typo'd section would
    // otherwise silently audit nothing.
    let cfg = match Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pfair-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let rep = match audit_report(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pfair-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if report_json {
        let json = report::render_json(&rep);
        match &out_path {
            Some(p) => {
                if let Err(e) = std::fs::write(p, &json) {
                    eprintln!("pfair-audit: cannot write {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
            None => print!("{json}"),
        }
    }
    let active = rep.active();
    if active.is_empty() {
        if !report_json || out_path.is_some() {
            println!(
                "pfair-audit: clean ({} files, {} discharged allow(s), {} entry point(s) panic-free)",
                rep.files,
                rep.entries.len(),
                rep.entry_points.iter().filter(|e| e.panic_free).count()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !report_json || out_path.is_some() {
            for f in &active {
                println!("{f}");
            }
            println!("pfair-audit: {} finding(s)", active.len());
        }
        ExitCode::FAILURE
    }
}
