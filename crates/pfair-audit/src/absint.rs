//! The interval domain for the overflow pass's abstract interpreter.
//!
//! Values are ranges `[lo, hi]` over the extended integers
//! (`-∞ ≤ lo ≤ hi ≤ +∞`) with finite bounds carried in `i128` — wide
//! enough that every workspace integer type embeds exactly. All
//! transfer functions are *sound over-approximations*: the concrete
//! result of an operation on values drawn from the input intervals
//! always lies inside the output interval. A finite corner that
//! overflows `i128` widens to the matching infinity, so "exceeds
//! `i128`" is representable and triggers containment failures rather
//! than silent wraparound inside the analyzer itself.

use std::cmp::Ordering;

/// One end of an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Below every integer.
    NegInf,
    /// An exact finite bound.
    Int(i128),
    /// Above every integer.
    PosInf,
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Bound) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Bound) -> Ordering {
        use Bound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
        }
    }
}

impl Bound {
    fn finite(self) -> Option<i128> {
        match self {
            Bound::Int(v) => Some(v),
            _ => None,
        }
    }
}

/// Extended-integer addition; a finite overflow widens toward the
/// overflow direction. `-∞ + +∞` cannot arise from valid intervals and
/// conservatively yields the full line via the caller's corner sweep.
fn ext_add(a: Bound, b: Bound) -> Bound {
    use Bound::*;
    match (a, b) {
        (NegInf, PosInf) | (PosInf, NegInf) => PosInf, // unreachable for valid intervals
        (NegInf, _) | (_, NegInf) => NegInf,
        (PosInf, _) | (_, PosInf) => PosInf,
        (Int(x), Int(y)) => match x.checked_add(y) {
            Some(v) => Int(v),
            None if x > 0 => PosInf,
            None => NegInf,
        },
    }
}

/// Extended-integer multiplication with the standard `±∞ · 0 = 0`
/// convention (sound for corner products).
fn ext_mul(a: Bound, b: Bound) -> Bound {
    use Bound::*;
    let sign = |b: &Bound| match b {
        NegInf => -1,
        PosInf => 1,
        Int(v) => match v.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        },
    };
    match (a, b) {
        (Int(x), Int(y)) => match x.checked_mul(y) {
            Some(v) => Int(v),
            None if (x > 0) == (y > 0) => PosInf,
            None => NegInf,
        },
        _ => match sign(&a) * sign(&b) {
            0 => Int(0),
            s if s > 0 => PosInf,
            _ => NegInf,
        },
    }
}

fn ext_neg(a: Bound) -> Bound {
    match a {
        Bound::NegInf => Bound::PosInf,
        Bound::PosInf => Bound::NegInf,
        Bound::Int(v) => v.checked_neg().map_or(Bound::PosInf, Bound::Int),
    }
}

/// An inclusive integer range; the lattice element of the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower end.
    pub lo: Bound,
    /// Upper end.
    pub hi: Bound,
}

/// The unbounded interval (no information).
pub const TOP: Interval = Interval {
    lo: Bound::NegInf,
    hi: Bound::PosInf,
};

// The transfer functions deliberately mirror the operator names they
// abstract (`add` models `+`); they are not the std ops traits.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The single point `v`.
    pub fn exact(v: i128) -> Interval {
        Interval {
            lo: Bound::Int(v),
            hi: Bound::Int(v),
        }
    }

    /// The inclusive range `[lo, hi]`.
    pub fn range(lo: i128, hi: i128) -> Interval {
        Interval {
            lo: Bound::Int(lo.min(hi)),
            hi: Bound::Int(lo.max(hi)),
        }
    }

    /// The full range of a primitive integer type, given bit width and
    /// signedness (as from [`crate::ast::int_type_bits`]).
    pub fn of_type(bits: u32, signed: bool) -> Interval {
        if signed {
            match bits {
                128 => Interval::range(i128::MIN, i128::MAX),
                b => {
                    let hi = (1i128 << (b - 1)) - 1;
                    Interval::range(-hi - 1, hi)
                }
            }
        } else {
            match bits {
                128 => Interval {
                    lo: Bound::Int(0),
                    // u128::MAX exceeds i128; the top is "beyond i128".
                    hi: Bound::PosInf,
                },
                b => Interval::range(0, (1i128 << b) - 1),
            }
        }
    }

    /// True when every value of `self` lies inside `other`.
    pub fn subset_of(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// True when `0` is a possible value.
    pub fn contains_zero(&self) -> bool {
        self.lo <= Bound::Int(0) && Bound::Int(0) <= self.hi
    }

    /// True when both ends are finite.
    pub fn is_bounded(&self) -> bool {
        matches!((self.lo, self.hi), (Bound::Int(_), Bound::Int(_)))
    }

    /// Smallest interval containing both.
    pub fn union(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Intersection; empty intersections collapse to the tighter
    /// input's nearest point (sound for the refinement uses here).
    pub fn intersect(self, o: Interval) -> Interval {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo, hi: lo }
        }
    }

    /// `self + o`.
    pub fn add(self, o: Interval) -> Interval {
        Interval {
            lo: ext_add(self.lo, o.lo),
            hi: ext_add(self.hi, o.hi),
        }
    }

    /// `-self`.
    pub fn neg(self) -> Interval {
        Interval {
            lo: ext_neg(self.hi),
            hi: ext_neg(self.lo),
        }
    }

    /// `self - o`.
    pub fn sub(self, o: Interval) -> Interval {
        self.add(o.neg())
    }

    /// `self * o` via the four corner products.
    pub fn mul(self, o: Interval) -> Interval {
        let corners = [
            ext_mul(self.lo, o.lo),
            ext_mul(self.lo, o.hi),
            ext_mul(self.hi, o.lo),
            ext_mul(self.hi, o.hi),
        ];
        Interval {
            lo: corners.iter().copied().min().unwrap_or(Bound::NegInf),
            hi: corners.iter().copied().max().unwrap_or(Bound::PosInf),
        }
    }

    /// `self / o` (truncating); [`TOP`] when the divisor may be zero or
    /// either side is unbounded in a way the corners cannot capture.
    pub fn div(self, o: Interval) -> Interval {
        if o.contains_zero() {
            return TOP;
        }
        let (Some(sl), Some(sh), Some(ol), Some(oh)) = (
            self.lo.finite(),
            self.hi.finite(),
            o.lo.finite(),
            o.hi.finite(),
        ) else {
            // An unbounded dividend divided by a nonzero divisor stays
            // unbounded; a bounded dividend over an unbounded divisor
            // is within ±|dividend|.
            if let (Some(sl), Some(sh)) = (self.lo.finite(), self.hi.finite()) {
                let m = sl.abs().max(sh.abs());
                return Interval::range(-m, m);
            }
            return TOP;
        };
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        let mut widened = false;
        for a in [sl, sh] {
            for b in [ol, oh] {
                match a.checked_div(b) {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => widened = true, // i128::MIN / -1
                }
            }
        }
        if widened {
            Interval {
                lo: Bound::Int(lo.min(0)),
                hi: Bound::PosInf,
            }
        } else {
            Interval::range(lo, hi)
        }
    }

    /// `self % o` (truncating remainder): magnitude strictly below the
    /// divisor's, sign following the dividend.
    pub fn rem(self, o: Interval) -> Interval {
        if o.contains_zero() {
            return TOP;
        }
        let (Some(ol), Some(oh)) = (o.lo.finite(), o.hi.finite()) else {
            return TOP;
        };
        let m = ol.abs().max(oh.abs()).saturating_sub(1);
        let lo = if self.lo >= Bound::Int(0) { 0 } else { -m };
        let hi = if self.hi <= Bound::Int(0) { 0 } else { m };
        Interval::range(lo, hi).intersect_if_finite(self)
    }

    /// `self.rem_euclid(o)`: always in `[0, max|o| − 1]`.
    pub fn rem_euclid(self, o: Interval) -> Interval {
        if o.contains_zero() {
            return TOP;
        }
        let (Some(ol), Some(oh)) = (o.lo.finite(), o.hi.finite()) else {
            return TOP;
        };
        Interval::range(0, ol.abs().max(oh.abs()).saturating_sub(1))
    }

    /// Tightens by `self` when `self` is finite and nonnegative (a
    /// small nonnegative dividend bounds its own remainder).
    fn intersect_if_finite(self, orig: Interval) -> Interval {
        if orig.is_bounded() && orig.lo >= Bound::Int(0) {
            self.intersect(orig)
        } else {
            self
        }
    }

    /// `self << o` for nonnegative shift amounts.
    pub fn shl(self, o: Interval) -> Interval {
        let (Some(kl), Some(kh)) = (o.lo.finite(), o.hi.finite()) else {
            return TOP;
        };
        if kl < 0 || kh > 127 {
            return TOP;
        }
        let shift = |v: i128, k: i128| -> Bound {
            match v.checked_shl(k as u32) {
                // checked_shl only guards the shift amount; recover the
                // magnitude loss by round-tripping.
                Some(r) if r >> (k as u32) == v => Bound::Int(r),
                _ if v >= 0 => Bound::PosInf,
                _ => Bound::NegInf,
            }
        };
        let (Some(sl), Some(sh)) = (self.lo.finite(), self.hi.finite()) else {
            return TOP;
        };
        let corners = [shift(sl, kl), shift(sl, kh), shift(sh, kl), shift(sh, kh)];
        Interval {
            lo: corners.iter().copied().min().unwrap_or(Bound::NegInf),
            hi: corners.iter().copied().max().unwrap_or(Bound::PosInf),
        }
    }

    /// `self >> o` (arithmetic shift) for nonnegative shift amounts.
    pub fn shr(self, o: Interval) -> Interval {
        let (Some(kl), Some(kh)) = (o.lo.finite(), o.hi.finite()) else {
            return TOP;
        };
        if kl < 0 || kh > 127 {
            return TOP;
        }
        let (Some(sl), Some(sh)) = (self.lo.finite(), self.hi.finite()) else {
            // A right shift never grows magnitude.
            return self;
        };
        let corners = [sl >> kl, sl >> kh, sh >> kl, sh >> kh];
        Interval::range(
            corners.iter().copied().min().unwrap_or(i128::MIN),
            corners.iter().copied().max().unwrap_or(i128::MAX),
        )
    }

    /// `self & o`. Precise only for a nonnegative mask side: the result
    /// then lies in `[0, mask_hi]` regardless of the other operand.
    pub fn bitand(self, o: Interval) -> Interval {
        let mask_hi = |iv: &Interval| -> Option<i128> {
            match (iv.lo, iv.hi) {
                (Bound::Int(l), Bound::Int(h)) if l >= 0 => Some(h),
                _ => None,
            }
        };
        match (mask_hi(&self), mask_hi(&o)) {
            (Some(a), Some(b)) => Interval::range(0, a.min(b)),
            (Some(a), None) => Interval::range(0, a),
            (None, Some(b)) => Interval::range(0, b),
            (None, None) => TOP,
        }
    }

    /// `self | o` for nonnegative operands: at least the larger
    /// operand, at most the all-ones cover of both.
    pub fn bitor(self, o: Interval) -> Interval {
        let (Bound::Int(sl), Bound::Int(sh), Bound::Int(ol), Bound::Int(oh)) =
            (self.lo, self.hi, o.lo, o.hi)
        else {
            return TOP;
        };
        if sl < 0 || ol < 0 {
            return TOP;
        }
        Interval::range(sl.max(ol), ones_cover(sh.max(oh)))
    }

    /// `self ^ o` for nonnegative operands.
    pub fn bitxor(self, o: Interval) -> Interval {
        let (Bound::Int(sl), Bound::Int(sh), Bound::Int(ol), Bound::Int(oh)) =
            (self.lo, self.hi, o.lo, o.hi)
        else {
            return TOP;
        };
        if sl < 0 || ol < 0 {
            return TOP;
        }
        Interval::range(0, ones_cover(sh.max(oh)))
    }

    /// `self.clamp(lo, hi)` with constant clamp bounds.
    pub fn clamp(self, lo: i128, hi: i128) -> Interval {
        let c = |b: Bound| -> i128 {
            match b {
                Bound::NegInf => lo,
                Bound::PosInf => hi,
                Bound::Int(v) => v.clamp(lo, hi),
            }
        };
        Interval::range(c(self.lo), c(self.hi))
    }

    /// `self.min(o)` / `self.max(o)` as method transfer functions.
    pub fn min_val(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// See [`Interval::min_val`].
    pub fn max_val(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// `self.abs()`.
    pub fn abs(self) -> Interval {
        let n = self.neg();
        let flipped = Interval {
            lo: self.lo.max(n.lo).max(Bound::Int(0)),
            hi: self.hi.max(n.hi),
        };
        Interval {
            lo: Bound::Int(0).max(if self.contains_zero() {
                Bound::Int(0)
            } else {
                flipped.lo
            }),
            hi: flipped.hi,
        }
    }
}

/// Smallest all-ones value `≥ v` (`0` for nonpositive `v`): the upper
/// bound of any bitwise-or of values `≤ v`.
fn ones_cover(v: i128) -> i128 {
    if v <= 0 {
        return 0;
    }
    let mut m = v;
    let mut s = 1u32;
    while s < 128 {
        m |= m >> s;
        s *= 2;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_mul_track_corners() {
        let a = Interval::range(-3, 5);
        let b = Interval::range(2, 4);
        assert_eq!(a.add(b), Interval::range(-1, 9));
        assert_eq!(a.mul(b), Interval::range(-12, 20));
    }

    #[test]
    fn overflow_widens_to_infinity() {
        let big = Interval::exact(i128::MAX);
        let sum = big.add(Interval::exact(1));
        assert_eq!(sum.hi, Bound::PosInf);
        let prod = big.mul(Interval::exact(2));
        assert_eq!(prod.hi, Bound::PosInf);
    }

    #[test]
    fn type_ranges_and_subset() {
        let i64r = Interval::of_type(64, true);
        assert!(Interval::range(i128::from(i64::MIN), i128::from(i64::MAX)).subset_of(&i64r));
        assert!(!Interval::exact(i128::from(i64::MAX) + 1).subset_of(&i64r));
        let u64r = Interval::of_type(64, false);
        assert!(Interval::exact(i128::from(u64::MAX)).subset_of(&u64r));
        assert!(!Interval::exact(-1).subset_of(&u64r));
    }

    #[test]
    fn shifts_model_packing() {
        // The packed-priority pattern: a 47-bit field shifted to bit 80
        // stays within u128.
        let field = Interval::range(0, (1 << 47) - 1);
        let shifted = field.shl(Interval::exact(80));
        assert!(shifted.subset_of(&Interval::of_type(128, false)));
        assert_eq!(shifted.lo, Bound::Int(0));
        // A 64-bit field at bit 80 exceeds any 128-bit value.
        let wide = Interval::range(0, i128::from(i64::MAX));
        let over = wide.shl(Interval::exact(80));
        assert_eq!(over.hi, Bound::PosInf);
    }

    #[test]
    fn masks_and_rem_euclid_bound_indices() {
        let x = TOP;
        assert_eq!(x.bitand(Interval::exact(511)), Interval::range(0, 511));
        assert_eq!(x.rem_euclid(Interval::exact(512)), Interval::range(0, 511));
        assert_eq!(x.rem(Interval::exact(64)).lo, Bound::Int(-63));
    }

    #[test]
    fn clamp_and_div() {
        let x = TOP.clamp(-(1 << 46), 1 << 46);
        assert_eq!(x, Interval::range(-(1 << 46), 1 << 46));
        assert_eq!(
            Interval::range(10, 100).div(Interval::exact(10)),
            Interval::range(1, 10)
        );
        assert_eq!(Interval::range(10, 100).div(Interval::range(-1, 1)), TOP);
    }

    #[test]
    fn bitor_covers_packed_fields() {
        let hi_field = Interval::range(0, (1 << 47) - 1).shl(Interval::exact(80));
        let lo_field = Interval::range(0, (1 << 32) - 1);
        let packed = hi_field.bitor(lo_field);
        assert!(packed.subset_of(&Interval::of_type(128, false)));
    }

    #[test]
    fn min_max_abs() {
        let a = Interval::range(-5, 10);
        assert_eq!(a.min_val(Interval::exact(3)), Interval::range(-5, 3));
        assert_eq!(a.max_val(Interval::exact(3)), Interval::range(3, 10));
        assert_eq!(a.abs(), Interval::range(0, 10));
        assert_eq!(Interval::range(3, 7).abs(), Interval::range(3, 7));
        assert_eq!(Interval::range(-7, -3).abs(), Interval::range(3, 7));
    }
}
