//! `audit.toml` configuration.
//!
//! The offline build environment has no `toml` crate, so this module
//! parses the small TOML subset the config actually uses: `[section]`
//! headers (dotted names allowed), `key = "string"`, and
//! `key = ["array", "of", "strings"]` possibly spanning several lines,
//! with `#` comments and trailing commas.

use std::collections::BTreeMap;
use std::fmt;

use crate::lints::canonical_lint;

/// Scope of one lint: where it applies and where it is switched off.
#[derive(Clone, Debug, Default)]
pub struct LintScope {
    /// Path prefixes (relative to the audited root, `/`-separated) the
    /// lint applies to. Empty means the whole tree.
    pub paths: Vec<String>,
    /// Path prefixes exempted from the lint, taking precedence over
    /// `paths`.
    pub allow_paths: Vec<String>,
    /// For the panic-reach pass: the functions whose transitive call
    /// trees must be panic-free, as `Type::method`, `Type::*`, or a
    /// free-function name.
    pub entry_points: Vec<String>,
}

/// Parsed `audit.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Path prefixes skipped entirely (generated output, vendored
    /// stubs, the audit's own known-bad fixtures).
    pub exclude: Vec<String>,
    /// Per-lint scopes, keyed by canonical lint name.
    pub lints: BTreeMap<String, LintScope>,
}

/// A configuration syntax error with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// True when `path` (relative, `/`-separated) falls under the `prefix`
/// pattern: an exact file match or a directory prefix.
pub fn path_matches(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    match path.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

impl Config {
    /// True when `path` is excluded from the audit altogether.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path_matches(path, p))
    }

    /// True when the lint named `lint` applies to `path`.
    pub fn lint_applies(&self, lint: &str, path: &str) -> bool {
        let Some(scope) = self.lints.get(lint) else {
            return false;
        };
        let in_scope = scope.paths.is_empty() || scope.paths.iter().any(|p| path_matches(path, p));
        in_scope && !scope.allow_paths.iter().any(|p| path_matches(path, p))
    }

    /// Parses the `audit.toml` subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: "unterminated section header".into(),
                })?;
                section = name.trim().to_string();
                // A bare `[lint.x]` header enables the lint tree-wide;
                // it must not require a paths/allow-paths key to exist.
                // Unknown lint names are configuration rot and are
                // rejected here, with the header's line.
                if let Some(lint) = section.strip_prefix("lint.") {
                    let canonical = canonical_lint(lint).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!(
                            "unknown lint `{lint}` (run `pfair-audit list-lints` for the catalog)"
                        ),
                    })?;
                    section = format!("lint.{canonical}");
                    cfg.lints.entry(canonical.to_string()).or_default();
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, found `{line}`"),
            })?;
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Gather a multi-line array.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont);
                    value.push(' ');
                    value.push_str(cont.trim());
                    if cont.trim_end().ends_with(']') {
                        break;
                    }
                }
            }
            let values = parse_value(&value).map_err(|message| ConfigError {
                line: lineno,
                message,
            })?;
            cfg.apply(&section, &key, values, lineno)?;
        }
        Ok(cfg)
    }

    fn apply(
        &mut self,
        section: &str,
        key: &str,
        values: Vec<String>,
        line: usize,
    ) -> Result<(), ConfigError> {
        if section == "audit" {
            if key == "exclude" {
                self.exclude = values;
                return Ok(());
            }
            return Err(ConfigError {
                line,
                message: format!("unknown key `{key}` in [audit]"),
            });
        }
        if let Some(lint) = section.strip_prefix("lint.") {
            let scope = self.lints.entry(lint.to_string()).or_default();
            match key {
                "paths" => scope.paths = values,
                "allow-paths" => scope.allow_paths = values,
                "entry-points" => scope.entry_points = values,
                _ => {
                    return Err(ConfigError {
                        line,
                        message: format!("unknown key `{key}` in [lint.{lint}]"),
                    })
                }
            }
            return Ok(());
        }
        Err(ConfigError {
            line,
            message: format!("unknown section `[{section}]`"),
        })
    }
}

/// Strips a `#` comment, respecting `"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"str"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut out = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(item)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value)?])
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, found `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = Config::parse(
            r#"
# the audit config
[audit]
exclude = ["target", "stubs"]

[lint.no-float-in-scheduling]
allow-paths = [
    "crates/whisper-sim/src/geometry.rs",  # trig
    "crates/whisper-sim/src/acoustics.rs",
]

[lint.no-lossy-casts]
paths = ["crates/pfair-core/src"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["target", "stubs"]);
        assert_eq!(cfg.lints["no-float-in-scheduling"].allow_paths.len(), 2);
        assert!(cfg.lint_applies("no-lossy-casts", "crates/pfair-core/src/lag.rs"));
        assert!(!cfg.lint_applies("no-lossy-casts", "crates/pfair-core/tests/t.rs"));
        assert!(!cfg.lint_applies(
            "no-float-in-scheduling",
            "crates/whisper-sim/src/geometry.rs"
        ));
        assert!(cfg.lint_applies("no-float-in-scheduling", "crates/pfair-core/src/lag.rs"));
    }

    #[test]
    fn path_matching_is_component_wise() {
        assert!(path_matches(
            "crates/pfair-core/src/lib.rs",
            "crates/pfair-core"
        ));
        assert!(path_matches("crates/pfair-core", "crates/pfair-core"));
        assert!(!path_matches(
            "crates/pfair-core2/src/lib.rs",
            "crates/pfair-core"
        ));
        assert!(path_matches("a/b.rs", "a/"));
    }

    #[test]
    fn bare_lint_header_enables_the_lint_tree_wide() {
        let cfg = Config::parse("[lint.no-float-in-scheduling]").unwrap();
        assert!(cfg.lint_applies("no-float-in-scheduling", "crates/x/src/lib.rs"));
    }

    #[test]
    fn entry_points_parse_and_unknown_lint_headers_are_spanned() {
        let cfg = Config::parse(
            "[lint.panic-reach]\nentry-points = [\"Engine::run\", \"ReadyQueue::*\"]",
        )
        .unwrap();
        assert_eq!(cfg.lints["panic-reach"].entry_points.len(), 2);
        let err = Config::parse("\n\n[lint.no-such-lint]").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("no-such-lint"));
        // Alias headers canonicalize.
        let cfg = Config::parse("[lint.panic]\npaths = [\"src\"]").unwrap();
        assert!(cfg.lints.contains_key(crate::lints::NO_PANIC));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Config::parse("[audit]\nfoo = \"x\"").is_err());
        assert!(Config::parse("[bogus]\npaths = [\"x\"]").is_err());
        assert!(Config::parse("[lint.x]\npaths = 3").is_err());
    }
}
