//! A small hand-rolled Rust lexer.
//!
//! The audit runs in an offline build environment with no access to
//! `syn`/`proc-macro2`, so it works on a token stream produced here.
//! The lexer understands everything needed to reason *lexically* about
//! Rust source without mis-tokenizing: line and nested block comments,
//! plain/raw/byte string literals, char literals versus lifetimes, raw
//! identifiers, and numeric literals with their type suffixes.
//!
//! It deliberately does not build a syntax tree; the lints in
//! [`crate::lints`] are defined so that token-level context (a couple of
//! tokens of lookbehind/lookahead) decides them.

/// Token classification, as fine-grained as the lints need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// Integer literal; `suffix` is the explicit type suffix, if any
    /// (e.g. `i128` in `5i128`).
    Int {
        /// Explicit type suffix, e.g. `u64`, if present.
        suffix: Option<String>,
    },
    /// Floating-point literal (`1.0`, `1e3`, `2.5f64`, …).
    Float,
    /// String literal of any flavor (plain, raw, byte).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Punctuation; multi-character for `->`, `=>`, `::`, `..`, `..=`.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for raw identifiers, without the `r#` prefix).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment, kept out-of-band so lints can read `// audit: allow(..)`
/// annotations.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the `//` / `/*` delimiters.
    pub text: String,
}

/// A lexed source file: code tokens, comments, and per-token test-region
/// membership.
#[derive(Debug, Default)]
pub struct LexFile {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// `in_test[i]` is true when `toks[i]` sits under a `#[cfg(test)]`
    /// / `#[test]` / `#[bench]` item.
    pub in_test: Vec<bool>,
}

impl LexFile {
    /// Lexes `src`, then marks test regions.
    pub fn lex(src: &str) -> LexFile {
        let mut f = lex_tokens(src);
        f.in_test = mark_test_regions(&f.toks);
        f
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    rest: &'a str,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn peek2(&self) -> Option<char> {
        self.rest.chars().nth(1)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        self.rest = &self.rest[c.len_utf8()..];
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

fn lex_tokens(src: &str) -> LexFile {
    let mut cur = Cursor { rest: src, line: 1 };
    let mut out = LexFile::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek2() == Some('/') {
            cur.bump();
            cur.bump();
            let text = cur.eat_while(|c| c != '\n');
            out.comments.push(Comment { line, text });
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(), cur.peek2()) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                        text.push_str("/*");
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break, // unterminated; tolerate
                }
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // r#ident, b"..", br#".."#, b'x'.
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_lex_prefixed(&mut cur, line) {
                out.toks.push(tok);
                continue;
            }
        }
        if is_ident_start(c) {
            let text = cur.eat_while(is_ident_continue);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            out.toks.push(lex_number(&mut cur, line));
            continue;
        }
        if c == '"' {
            cur.bump();
            lex_plain_string(&mut cur, '"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }
        if c == '\'' {
            out.toks.push(lex_quote(&mut cur, line));
            continue;
        }
        // Punctuation; join the few multi-char tokens whose parts would
        // otherwise confuse the lints (`->` is not a minus).
        cur.bump();
        let joined = match (c, cur.peek()) {
            ('-', Some('>')) | ('=', Some('>')) => {
                cur.bump();
                format!("{c}>")
            }
            (':', Some(':')) => {
                cur.bump();
                "::".to_string()
            }
            ('.', Some('.')) => {
                cur.bump();
                if cur.peek() == Some('=') {
                    cur.bump();
                    "..=".to_string()
                } else {
                    "..".to_string()
                }
            }
            _ => c.to_string(),
        };
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: joined,
            line,
        });
    }
    out
}

/// Lexes tokens that start with `r` or `b`: raw strings, raw
/// identifiers, byte strings, and byte chars. Returns `None` when the
/// prefix turns out to begin a plain identifier, leaving the cursor
/// untouched.
fn try_lex_prefixed(cur: &mut Cursor<'_>, line: u32) -> Option<Tok> {
    let rest = cur.rest;
    let mut chars = rest.chars();
    let first = chars.next()?;
    let mut prefix_len = 1;
    let mut second = chars.next();
    if first == 'b' && second == Some('r') {
        prefix_len = 2;
        second = chars.next();
    }
    match second {
        Some('"') => {
            for _ in 0..=prefix_len {
                cur.bump();
            }
            lex_plain_string(cur, '"');
            Some(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            })
        }
        Some('\'') if first == 'b' => {
            cur.bump();
            Some(lex_quote(cur, line))
        }
        Some('#') => {
            // Count hashes; a quote makes it a raw string, an ident
            // start makes it a raw identifier (r#type).
            let mut hashes = 0usize;
            let mut it = rest[prefix_len..].chars();
            let mut nxt = it.next();
            while nxt == Some('#') {
                hashes += 1;
                nxt = it.next();
            }
            match nxt {
                Some('"') => {
                    for _ in 0..prefix_len + hashes + 1 {
                        cur.bump();
                    }
                    lex_raw_string(cur, hashes);
                    Some(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    })
                }
                Some(ch) if first == 'r' && hashes == 1 && is_ident_start(ch) => {
                    cur.bump();
                    cur.bump();
                    let text = cur.eat_while(is_ident_continue);
                    Some(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Consumes a plain (escaped) string body up to the closing `delim`.
fn lex_plain_string(cur: &mut Cursor<'_>, delim: char) {
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == delim {
            break;
        }
    }
}

/// Consumes a raw string body up to `"` followed by `hashes` hashes.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                } else {
                    continue 'outer;
                }
            }
            break;
        }
    }
}

/// Lexes a `'`-introduced token: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor<'_>, line: u32) -> Tok {
    cur.bump(); // the opening quote
    match cur.peek() {
        Some('\\') => {
            cur.bump();
            cur.bump(); // the escaped char
                        // Possibly \u{..} or \x..; consume to the closing quote.
            lex_plain_string(cur, '\'');
            Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            }
        }
        Some(c) if is_ident_start(c) => {
            let text = cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                }
            } else {
                Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                }
            }
        }
        _ => {
            // 'x' for any other single char.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            }
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>, line: u32) -> Tok {
    let start = cur.rest;
    let start_len = start.len();
    let mut is_float = false;
    if cur.peek() == Some('0') && matches!(cur.peek2(), Some('x' | 'o' | 'b')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        // A `.` continues the number only when followed by a digit
        // (`1..3` is a range, `x.0` is tuple indexing territory).
        if cur.peek() == Some('.') && cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
        if matches!(cur.peek(), Some('e' | 'E')) {
            let mut it = cur.rest.chars();
            it.next();
            let mut nxt = it.next();
            if matches!(nxt, Some('+' | '-')) {
                nxt = it.next();
            }
            if nxt.is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                cur.bump();
                if matches!(cur.peek(), Some('+' | '-')) {
                    cur.bump();
                }
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
        }
    }
    let suffix = cur.eat_while(is_ident_continue);
    if suffix.starts_with('f') {
        is_float = true;
    }
    if is_float {
        Tok {
            kind: TokKind::Float,
            text: String::new(),
            line,
        }
    } else {
        // The digit text (prefix included, suffix stripped) is retained
        // so the abstract interpreter can recover the literal's value.
        let consumed = start_len - cur.rest.len() - suffix.len();
        let text = start[..consumed].to_string();
        Tok {
            kind: TokKind::Int {
                suffix: if suffix.is_empty() {
                    None
                } else {
                    Some(suffix)
                },
            },
            text,
            line,
        }
    }
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items. An attribute containing the bare identifier `test` or `bench`
/// suppresses the item it annotates: everything up to the end of the
/// next brace-balanced block (or a top-level `;` for block-less items).
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let is_attr_start = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[");
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Find the matching `]` of the attribute.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut is_test_attr = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" | "bench" if toks[j].kind == TokKind::Ident => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Extend over the annotated item: to a top-level `;` before any
        // `{`, or to the `}` closing the first brace-balanced block.
        let mut k = j + 1;
        let mut braces = 0i32;
        let mut saw_brace = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    braces += 1;
                    saw_brace = true;
                }
                "}" => {
                    braces -= 1;
                    if saw_brace && braces == 0 {
                        break;
                    }
                }
                ";" if !saw_brace && braces == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let end = k.min(toks.len().saturating_sub(1));
        for flag in &mut in_test[i..=end] {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        LexFile::lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let f = LexFile::lex(
            "// f64 in a comment\nlet s = \"as f64\"; /* nested /* block */ f32 */ let x = 1;",
        );
        assert!(f.toks.iter().all(|t| t.text != "f64" && t.text != "f32"));
        assert_eq!(f.comments.len(), 2);
        assert!(f.comments[0].text.contains("f64"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let v = idents("let r#type = r#\"as f64 \"# ; foo");
        assert_eq!(v, vec!["let", "type", "foo"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let f = LexFile::lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = f
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(f.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn numeric_suffixes_and_floats() {
        let f = LexFile::lex("let a = 5i128 + 0xFFu64; let b = 1.5; let c = 1e3; let d = 1..3;");
        let ints: Vec<_> = f
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Int { suffix } => Some(suffix.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            ints,
            vec![Some("i128".into()), Some("u64".into()), None, None]
        );
        assert_eq!(
            f.toks.iter().filter(|t| t.kind == TokKind::Float).count(),
            2
        );
    }

    #[test]
    fn arrow_is_not_a_minus() {
        let f = LexFile::lex("fn f() -> i64 { 0 }");
        assert!(f.toks.iter().any(|t| t.text == "->"));
        assert!(!f.toks.iter().any(|t| t.text == "-"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn lib2() {}";
        let f = LexFile::lex(src);
        let unwraps: Vec<bool> = f
            .toks
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, in_test)| *in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let lib2 = f.toks.iter().position(|t| t.text == "lib2").unwrap();
        assert!(!f.in_test[lib2]);
    }

    #[test]
    fn blockless_test_attr_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { a.unwrap(); }";
        let f = LexFile::lex(src);
        let unwrap = f.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!f.in_test[unwrap]);
    }

    #[test]
    fn lines_are_tracked() {
        let f = LexFile::lex("a\nb\n  c");
        let lines: Vec<u32> = f.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
