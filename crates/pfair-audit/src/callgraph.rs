//! A workspace-wide call graph over the parsed ASTs.
//!
//! Nodes are functions keyed by `"Type::name"` (methods, associated
//! functions) or `"name"` (free functions), prefixed with the file
//! they live in so duplicates across crates stay distinct. Edges
//! over-approximate: a call `recv.m(..)` resolves to the method `m`
//! of the receiver's inferred type when light local inference (struct
//! field types, `let` annotations, `self`, parameter types) pins it
//! down, and to *every* known method named `m` otherwise. That
//! over-approximation is the right polarity for panic-reachability —
//! it can produce false positives, never false negatives, relative to
//! the modeled sources.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;

/// A function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// File the function lives in (relative, `/`-separated).
    pub path: String,
    /// 1-based line of the `fn` item.
    pub line: u32,
    /// Enclosing type name for methods/associated functions.
    pub owner: Option<String>,
    /// Bare function name.
    pub name: String,
    /// True for `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Indices of callees in [`CallGraph::nodes`].
    pub callees: BTreeSet<usize>,
}

impl FnNode {
    /// `Type::name` or `name` — the spec form entry points use.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes, in deterministic (path, line) order.
    pub nodes: Vec<FnNode>,
    /// Method name → node indices owning a method of that name.
    by_method: BTreeMap<String, Vec<usize>>,
    /// `Type::name` → node index (first definition wins).
    by_qualified: BTreeMap<String, usize>,
    /// Free-function name → node indices.
    by_free: BTreeMap<String, Vec<usize>>,
}

/// Where a function's body lives, for the edge-building walk.
struct FnSite<'a> {
    idx: usize,
    func: &'a FnItem,
    /// Owning type, for `self` receiver inference.
    self_ty: Option<String>,
}

impl CallGraph {
    /// Builds the graph over `(path, file)` pairs.
    pub fn build(files: &[(&str, &SourceFile)]) -> CallGraph {
        let mut g = CallGraph::default();
        // Field types of every struct in the workspace, for receiver
        // inference through `self.field.m()`.
        let mut fields: BTreeMap<String, BTreeMap<String, TypeRef>> = BTreeMap::new();
        for (_, file) in files {
            collect_struct_fields(&file.items, &mut fields);
        }
        // Pass 1: nodes.
        let mut sites: Vec<FnSite<'_>> = Vec::new();
        for (path, file) in files {
            collect_fns(path, &file.items, None, false, &mut g, &mut sites);
        }
        for (i, node) in g.nodes.iter().enumerate() {
            if node.owner.is_some() {
                g.by_method.entry(node.name.clone()).or_default().push(i);
            } else {
                g.by_free.entry(node.name.clone()).or_default().push(i);
            }
            g.by_qualified.entry(node.qualified()).or_insert(i);
        }
        // Pass 2: edges.
        for site in &sites {
            let Some(body) = &site.func.body else {
                continue;
            };
            let mut locals: BTreeMap<String, String> = BTreeMap::new();
            if let Some(ty) = &site.self_ty {
                locals.insert("self".to_string(), ty.clone());
            }
            for p in &site.func.params {
                if let Some(n) = &p.name {
                    if !p.ty.head.is_empty() {
                        locals.insert(n.clone(), p.ty.head.clone());
                    }
                }
            }
            let mut callees = BTreeSet::new();
            walk_calls(body, &mut locals, &fields, &g, &mut callees);
            g.nodes[site.idx].callees = callees;
        }
        g
    }

    /// Node index of `Type::name` / `name`, when defined in-tree.
    pub fn resolve_qualified(&self, spec: &str) -> Option<usize> {
        self.by_qualified.get(spec).copied()
    }

    /// All node indices whose owner is `type_name`.
    pub fn methods_of(&self, type_name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.owner.as_deref() == Some(type_name))
            .map(|(i, _)| i)
            .collect()
    }

    fn resolve_method(&self, recv_ty: Option<&str>, name: &str) -> Vec<usize> {
        if let Some(ty) = recv_ty {
            if let Some(&i) = self.by_qualified.get(&format!("{ty}::{name}")) {
                return vec![i];
            }
        }
        // Unknown receiver: every method of that name.
        self.by_method.get(name).cloned().unwrap_or_default()
    }
}

fn collect_struct_fields(items: &[Item], out: &mut BTreeMap<String, BTreeMap<String, TypeRef>>) {
    for item in items {
        match &item.kind {
            ItemKind::Struct { name, fields } => {
                let entry = out.entry(name.clone()).or_default();
                for (f, ty) in fields {
                    entry.insert(f.clone(), ty.clone());
                }
            }
            ItemKind::Mod {
                items: Some(items), ..
            } => collect_struct_fields(items, out),
            _ => {}
        }
    }
}

fn collect_fns<'a>(
    path: &str,
    items: &'a [Item],
    owner: Option<&str>,
    in_test: bool,
    g: &mut CallGraph,
    sites: &mut Vec<FnSite<'a>>,
) {
    for item in items {
        let in_test = in_test || item.in_test;
        match &item.kind {
            ItemKind::Fn(func) => {
                let idx = g.nodes.len();
                g.nodes.push(FnNode {
                    path: path.to_string(),
                    line: item.line,
                    owner: owner.map(str::to_string),
                    name: func.name.clone(),
                    in_test,
                    callees: BTreeSet::new(),
                });
                sites.push(FnSite {
                    idx,
                    func,
                    self_ty: owner.map(str::to_string),
                });
            }
            ItemKind::Impl {
                type_name, items, ..
            } => collect_fns(path, items, Some(type_name), in_test, g, sites),
            ItemKind::Trait { name, items } => {
                // Default methods are owned by the trait name; calls on
                // unknown receivers fan out to them by method name.
                collect_fns(path, items, Some(name), in_test, g, sites);
            }
            ItemKind::Mod {
                items: Some(items), ..
            } => collect_fns(path, items, owner, in_test, g, sites),
            _ => {}
        }
    }
}

/// Infers the head type of `e` from locals and struct fields; `None`
/// when unknown.
fn infer_ty(
    e: &Expr,
    locals: &BTreeMap<String, String>,
    fields: &BTreeMap<String, BTreeMap<String, TypeRef>>,
) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 => locals.get(&segs[0]).cloned(),
        ExprKind::Field { recv, name } => {
            let recv_ty = infer_ty(recv, locals, fields)?;
            fields.get(&recv_ty)?.get(name).map(|t| t.head.clone())
        }
        ExprKind::Unary {
            op: UnOp::Ref | UnOp::Deref,
            expr,
        } => infer_ty(expr, locals, fields),
        ExprKind::StructLit { path, .. } => path.last().cloned(),
        ExprKind::Call { callee, .. } => {
            // `Type::new(..)` conventionally returns Type.
            if let ExprKind::Path(segs) = &callee.kind {
                if segs.len() >= 2 && segs[segs.len() - 1] == "new" {
                    return Some(segs[segs.len() - 2].clone());
                }
            }
            None
        }
        _ => None,
    }
}

fn walk_calls(
    block: &Block,
    locals: &mut BTreeMap<String, String>,
    fields: &BTreeMap<String, BTreeMap<String, TypeRef>>,
    g: &CallGraph,
    out: &mut BTreeSet<usize>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                else_block,
                ..
            } => {
                if let Some(e) = init {
                    walk_calls_expr(e, locals, fields, g, out);
                }
                if let Some(b) = else_block {
                    walk_calls(b, locals, fields, g, out);
                }
                if let Some(n) = name {
                    let inferred = ty
                        .as_ref()
                        .filter(|t| !t.head.is_empty())
                        .map(|t| t.head.clone())
                        .or_else(|| init.as_ref().and_then(|e| infer_ty(e, locals, fields)));
                    match inferred {
                        Some(t) => {
                            locals.insert(n.clone(), t);
                        }
                        None => {
                            // Shadowing with an unknown type must kill
                            // the old binding, not keep its stale type.
                            locals.remove(n);
                        }
                    }
                }
            }
            Stmt::Expr(e) => walk_calls_expr(e, locals, fields, g, out),
            Stmt::Item(_) => {
                // Nested items are their own graph nodes.
            }
        }
    }
}

fn walk_calls_expr(
    e: &Expr,
    locals: &mut BTreeMap<String, String>,
    fields: &BTreeMap<String, BTreeMap<String, TypeRef>>,
    g: &CallGraph,
    out: &mut BTreeSet<usize>,
) {
    match &e.kind {
        ExprKind::MethodCall { recv, name, args } => {
            walk_calls_expr(recv, locals, fields, g, out);
            for a in args {
                walk_calls_expr(a, locals, fields, g, out);
            }
            let recv_ty = infer_ty(recv, locals, fields);
            for i in g.resolve_method(recv_ty.as_deref(), name) {
                out.insert(i);
            }
        }
        ExprKind::Call { callee, args } => {
            for a in args {
                walk_calls_expr(a, locals, fields, g, out);
            }
            if let ExprKind::Path(segs) = &callee.kind {
                match segs.len() {
                    1 => {
                        if let Some(is) = g.by_free.get(&segs[0]) {
                            out.extend(is.iter().copied());
                        }
                    }
                    _ => {
                        let qualified =
                            format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1]);
                        if let Some(&i) = g.by_qualified.get(&qualified) {
                            out.insert(i);
                        } else if let Some(is) = g.by_free.get(&segs[segs.len() - 1]) {
                            // `module::helper(..)`.
                            out.extend(is.iter().copied());
                        }
                    }
                }
            } else {
                walk_calls_expr(callee, locals, fields, g, out);
            }
        }
        ExprKind::Closure { body, .. } => walk_calls_expr(body, locals, fields, g, out),
        ExprKind::Block(b) | ExprKind::Loop(b) => walk_calls(b, locals, fields, g, out),
        ExprKind::If { cond, then, els } => {
            walk_calls_expr(cond, locals, fields, g, out);
            walk_calls(then, locals, fields, g, out);
            if let Some(e) = els {
                walk_calls_expr(e, locals, fields, g, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_calls_expr(scrutinee, locals, fields, g, out);
            for arm in arms {
                if let Some(gd) = &arm.guard {
                    walk_calls_expr(gd, locals, fields, g, out);
                }
                walk_calls_expr(&arm.body, locals, fields, g, out);
            }
        }
        ExprKind::While { cond, body } => {
            walk_calls_expr(cond, locals, fields, g, out);
            walk_calls(body, locals, fields, g, out);
        }
        ExprKind::For { iter, body, .. } => {
            walk_calls_expr(iter, locals, fields, g, out);
            walk_calls(body, locals, fields, g, out);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } | ExprKind::Try(expr) => {
            walk_calls_expr(expr, locals, fields, g, out);
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            walk_calls_expr(lhs, locals, fields, g, out);
            walk_calls_expr(rhs, locals, fields, g, out);
        }
        ExprKind::Field { recv, .. } => walk_calls_expr(recv, locals, fields, g, out),
        ExprKind::Index { recv, index } => {
            walk_calls_expr(recv, locals, fields, g, out);
            walk_calls_expr(index, locals, fields, g, out);
        }
        ExprKind::StructLit {
            fields: fs, rest, ..
        } => {
            for (_, v) in fs {
                if let Some(v) = v {
                    walk_calls_expr(v, locals, fields, g, out);
                }
            }
            if let Some(r) = rest {
                walk_calls_expr(r, locals, fields, g, out);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for it in items {
                walk_calls_expr(it, locals, fields, g, out);
            }
        }
        ExprKind::Repeat { elem, len } => {
            walk_calls_expr(elem, locals, fields, g, out);
            walk_calls_expr(len, locals, fields, g, out);
        }
        ExprKind::Return(Some(e)) | ExprKind::Break(Some(e)) => {
            walk_calls_expr(e, locals, fields, g, out);
        }
        ExprKind::Range { lo, hi } => {
            if let Some(l) = lo {
                walk_calls_expr(l, locals, fields, g, out);
            }
            if let Some(h) = hi {
                walk_calls_expr(h, locals, fields, g, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::LexFile;
    use crate::parser::parse_file;

    fn graph(src: &str) -> CallGraph {
        let lex = LexFile::lex(src);
        let (file, errs) = parse_file(&lex);
        assert!(errs.is_empty(), "{errs:?}");
        CallGraph::build(&[("src/lib.rs", &file)])
    }

    #[test]
    fn typed_receiver_resolves_to_one_method() {
        let g = graph(
            "struct Q { h: H }\nstruct H;\nimpl H { fn pop(&self) {} }\nimpl Q { fn go(&self) { self.h.pop(); } }\nstruct Z;\nimpl Z { fn pop(&self) { loop {} } }",
        );
        let go = g.resolve_qualified("Q::go").unwrap();
        let callees: Vec<String> = g.nodes[go]
            .callees
            .iter()
            .map(|&i| g.nodes[i].qualified())
            .collect();
        assert_eq!(callees, vec!["H::pop".to_string()]);
    }

    #[test]
    fn unknown_receiver_fans_out_to_all_same_name_methods() {
        let g =
            graph("impl A { fn m(&self) {} }\nimpl B { fn m(&self) {} }\nfn f(x: &X) { x.m(); }");
        let f = g.resolve_qualified("f").unwrap();
        assert_eq!(g.nodes[f].callees.len(), 2);
    }

    #[test]
    fn qualified_and_free_calls_resolve() {
        let g = graph(
            "fn helper() {}\nimpl T { fn new() -> T { T } fn run(&self) { helper(); T::new(); } }",
        );
        let run = g.resolve_qualified("T::run").unwrap();
        let callees: Vec<String> = g.nodes[run]
            .callees
            .iter()
            .map(|&i| g.nodes[i].qualified())
            .collect();
        assert_eq!(callees, vec!["helper".to_string(), "T::new".to_string()]);
    }

    #[test]
    fn let_annotations_pin_receiver_types() {
        let g = graph(
            "impl R { fn tick(&self) {} }\nimpl S { fn tick(&self) {} }\nfn f() { let r: R = make(); r.tick(); }",
        );
        let f = g.resolve_qualified("f").unwrap();
        let callees: Vec<String> = g.nodes[f]
            .callees
            .iter()
            .map(|&i| g.nodes[i].qualified())
            .collect();
        assert_eq!(callees, vec!["R::tick".to_string()]);
    }
}
