//! The abstract syntax tree produced by [`crate::parser`].
//!
//! The tree is deliberately *analysis-shaped* rather than
//! fidelity-shaped: it keeps exactly the structure the audit passes
//! consume — item nesting, function signatures, struct field types,
//! and expressions with resolved operator precedence — and collapses
//! what they do not (patterns beyond simple binders, lifetimes,
//! generic bounds, attribute bodies). Every node carries the 1-based
//! source line of its first token so findings and `audit: allow`
//! annotations line up with the original file.

use crate::lexer::Tok;

/// One parsed source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Any item, at any nesting depth.
#[derive(Debug)]
pub struct Item {
    /// 1-based line of the item's first token (attributes excluded).
    pub line: u32,
    /// True when the item (or an enclosing item) is test-only:
    /// `#[test]`, `#[bench]`, or `#[cfg(test)]`/`#[cfg(...)bench...]`.
    pub in_test: bool,
    /// The item's payload.
    pub kind: ItemKind,
}

/// Item payloads, as fine-grained as the passes need.
#[derive(Debug)]
pub enum ItemKind {
    /// A free function, method, or trait default method.
    Fn(FnItem),
    /// `impl Type { .. }` or `impl Trait for Type { .. }`.
    Impl {
        /// Head of the self type (`Engine` in `impl<P> Engine<P>`).
        type_name: String,
        /// Head of the implemented trait, when this is a trait impl.
        trait_name: Option<String>,
        /// Associated items (functions, consts, types).
        items: Vec<Item>,
    },
    /// `mod name;` or `mod name { .. }`.
    Mod {
        /// Module name.
        name: String,
        /// Inline body, `None` for out-of-line modules.
        items: Option<Vec<Item>>,
    },
    /// `struct Name { .. }` / tuple / unit struct, or a `union`.
    Struct {
        /// Type name.
        name: String,
        /// Named fields with their types (empty for tuple/unit forms).
        fields: Vec<(String, TypeRef)>,
    },
    /// `enum Name { .. }`.
    Enum {
        /// Type name.
        name: String,
    },
    /// `trait Name { .. }` with its associated items.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items; default methods carry bodies.
        items: Vec<Item>,
    },
    /// A `use` declaration; each leaf path is recorded separately
    /// (`use a::{b, c::d}` yields `[a,b]` and `[a,c,d]`).
    Use {
        /// Flattened leaf paths.
        paths: Vec<Vec<String>>,
    },
    /// `const NAME: Ty = expr;` or `static NAME: Ty = expr;`.
    Const {
        /// Constant name.
        name: String,
        /// Declared type.
        ty: TypeRef,
        /// Initializer, when parseable.
        value: Option<Expr>,
    },
    /// `type Name = Ty;`.
    TypeAlias {
        /// Alias name.
        name: String,
        /// Aliased type.
        ty: TypeRef,
    },
    /// `macro_rules! name { .. }` — body not analyzed.
    MacroDef {
        /// Macro name.
        name: String,
    },
    /// A top-level macro invocation (`proptest! { .. }`); the raw
    /// token tree is kept for conservative scanning.
    MacroCall {
        /// Invoked macro's name (last path segment).
        name: String,
        /// The delimited token tree, delimiters excluded.
        toks: Vec<Tok>,
    },
    /// `extern crate`, `extern "C" { .. }`, or anything else skipped
    /// structurally.
    Other,
}

/// A function item: signature plus (optionally) a body.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Non-`self` parameters.
    pub params: Vec<Param>,
    /// Declared return type, `None` for `()`.
    pub ret: Option<TypeRef>,
    /// Body block; `None` for trait method declarations.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binder name when the pattern is a simple (possibly `mut`)
    /// identifier; `None` for destructuring patterns and `_`.
    pub name: Option<String>,
    /// Declared type.
    pub ty: TypeRef,
}

/// A type reference, reduced to what resolution and the interval
/// analysis consume: the head path segment and one level of generic
/// arguments.
#[derive(Debug, Clone, Default)]
pub struct TypeRef {
    /// Last segment of the main path with generics stripped
    /// (`Vec` in `std::vec::Vec<TaskId>`, `i64` in `&mut i64`).
    /// Empty when the type is a tuple, fn pointer, or inferred.
    pub head: String,
    /// Generic arguments of the final segment, one level deep.
    pub args: Vec<TypeRef>,
    /// Levels of reference/pointer indirection stripped to reach the
    /// head (`&&T` = 2). Raw-pointer indirection is flagged separately.
    pub refs: u32,
    /// True when the type involves a raw pointer (`*const` / `*mut`).
    pub raw_ptr: bool,
}

impl TypeRef {
    /// A type reference with just a head name.
    pub fn named(head: &str) -> TypeRef {
        TypeRef {
            head: head.to_string(),
            ..TypeRef::default()
        }
    }

    /// True when the head names a primitive integer type.
    pub fn is_int(&self) -> bool {
        int_type_bits(&self.head).is_some()
    }

    /// True when the head names a float type.
    pub fn is_float(&self) -> bool {
        self.head == "f32" || self.head == "f64"
    }
}

/// Bit width and signedness of a primitive integer type name;
/// `usize`/`isize` are modeled as 64-bit (the supported targets).
pub fn int_type_bits(name: &str) -> Option<(u32, bool)> {
    match name {
        "i8" => Some((8, true)),
        "i16" => Some((16, true)),
        "i32" => Some((32, true)),
        "i64" | "isize" => Some((64, true)),
        "i128" => Some((128, true)),
        "u8" => Some((8, false)),
        "u16" => Some((16, false)),
        "u32" => Some((32, false)),
        "u64" | "usize" => Some((64, false)),
        "u128" => Some((128, false)),
        _ => None,
    }
}

/// A `{ .. }` block: statements plus an optional tail expression.
#[derive(Debug, Default)]
pub struct Block {
    /// 1-based line of the opening brace.
    pub line: u32,
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat (: ty)? (= init)? (else block)?;`
    Let {
        /// Binder name for simple identifier patterns.
        name: Option<String>,
        /// Declared type annotation.
        ty: Option<TypeRef>,
        /// Initializer.
        init: Option<Expr>,
        /// `let .. else` diverging block.
        else_block: Option<Block>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement (with or without trailing `;`).
    Expr(Expr),
    /// A nested item.
    Item(Item),
}

/// An expression with its source line.
#[derive(Debug)]
pub struct Expr {
    /// 1-based line of the expression's first token.
    pub line: u32,
    /// The expression's payload.
    pub kind: ExprKind,
}

impl Expr {
    /// Shorthand constructor.
    pub fn new(line: u32, kind: ExprKind) -> Expr {
        Expr { line, kind }
    }
}

/// Binary operators (compound assignment is represented by
/// [`ExprKind::Assign`] with an operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `==`, `!=`, `<`, `<=`, `>`, `>=`
    Cmp,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `*`
    Deref,
    /// `&` / `&mut`
    Ref,
}

/// Expression payloads.
#[derive(Debug)]
pub enum ExprKind {
    /// Integer literal; `value` is `None` when it exceeds `i128`.
    Int {
        /// Parsed value.
        value: Option<i128>,
        /// Explicit type suffix.
        suffix: Option<String>,
    },
    /// Float literal.
    Float,
    /// String literal.
    Str,
    /// Char or byte literal.
    Char,
    /// A path: `a::b::c` (turbofish generics dropped). Single-segment
    /// paths are local variables or type names.
    Path(Vec<String>),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign {
        /// Compound operator, `None` for plain `=`.
        op: Option<BinOp>,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `expr as Ty`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeRef,
    },
    /// `callee(args)`.
    Call {
        /// Called expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.name` (also tuple indexing `recv.0`).
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// Indexed expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `expr?`.
    Try(Box<Expr>),
    /// `name!(..)` / `name![..]` / `name!{..}` with its raw tokens.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Token tree, delimiters excluded.
        toks: Vec<Tok>,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// The struct path.
        path: Vec<String>,
        /// Field initializers (shorthand fields carry `None`).
        fields: Vec<(String, Option<Expr>)>,
        /// `..base` functional-update expression.
        rest: Option<Box<Expr>>,
    },
    /// `(a, b, ..)` — also plain parenthesization (one element).
    Tuple(Vec<Expr>),
    /// `[a, b, ..]`.
    Array(Vec<Expr>),
    /// `[elem; len]`.
    Repeat {
        /// Repeated element.
        elem: Box<Expr>,
        /// Length expression.
        len: Box<Expr>,
    },
    /// A block expression (incl. `unsafe` blocks).
    Block(Block),
    /// `if cond { .. } else ..`; `if let` keeps the scrutinee as
    /// `cond` with the pattern dropped.
    If {
        /// Condition or `if let` scrutinee.
        cond: Box<Expr>,
        /// Then-branch.
        then: Block,
        /// Else-branch (a `Block` or nested `If`).
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
    },
    /// `while cond { .. }`; `while let` keeps the scrutinee.
    While {
        /// Condition or scrutinee.
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { .. }`.
    Loop(Block),
    /// `for pat in iter { .. }`.
    For {
        /// Binder name for simple identifier patterns.
        pat: Option<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter binder names (when simple).
        params: Vec<Option<String>>,
        /// Closure body.
        body: Box<Expr>,
    },
    /// `return expr?`.
    Return(Option<Box<Expr>>),
    /// `break expr?`.
    Break(Option<Box<Expr>>),
    /// `continue`.
    Continue,
    /// `lo..hi`, `lo..=hi`, with either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// A sub-tree the parser could not shape; analysis treats it as
    /// opaque. Kept instead of failing the file so one exotic
    /// expression does not hide a whole function from the passes.
    Unknown,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers appearing in the arm's pattern (binders and path
    /// segments alike — the passes only probe for type names).
    pub pat_idents: Vec<String>,
    /// `if` guard.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Parses the retained digit text of an integer literal (`0x` / `0o` /
/// `0b` prefixes, `_` separators) into its value.
pub fn parse_int_text(text: &str) -> Option<i128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = clean.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = clean.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = clean.strip_prefix("0b") {
        (bin, 2)
    } else {
        (clean.as_str(), 10)
    };
    // u128 first: literals like `u64::MAX`'s expansion or `1 << 127`
    // masks exceed i128 but still fit unsigned.
    u128::from_str_radix(digits, radix)
        .ok()
        .and_then(|v| i128::try_from(v).ok())
}

/// Walks every expression in a block, depth-first, invoking `f` on
/// each. Closures and nested items' bodies are included.
pub fn walk_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(item) => walk_item(item, f),
        }
    }
}

/// Walks every expression under an item.
pub fn walk_item(item: &Item, f: &mut impl FnMut(&Expr)) {
    match &item.kind {
        ItemKind::Fn(func) => {
            if let Some(b) = &func.body {
                walk_block(b, f);
            }
        }
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for it in items {
                walk_item(it, f);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for it in items {
                walk_item(it, f);
            }
        }
        ItemKind::Const { value: Some(e), .. } => walk_expr(e, f),
        _ => {}
    }
}

/// Depth-first expression walk; `f` sees parents before children.
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } | ExprKind::Try(expr) => {
            walk_expr(expr, f);
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field { recv, .. } => walk_expr(recv, f),
        ExprKind::Index { recv, index } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, v) in fields {
                if let Some(v) = v {
                    walk_expr(v, f);
                }
            }
            if let Some(r) = rest {
                walk_expr(r, f);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for it in items {
                walk_expr(it, f);
            }
        }
        ExprKind::Repeat { elem, len } => {
            walk_expr(elem, f);
            walk_expr(len, f);
        }
        ExprKind::Block(b) | ExprKind::Loop(b) => walk_block(b, f),
        ExprKind::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        ExprKind::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::Return(Some(e)) | ExprKind::Break(Some(e)) => walk_expr(e, f),
        ExprKind::Range { lo, hi } => {
            if let Some(l) = lo {
                walk_expr(l, f);
            }
            if let Some(h) = hi {
                walk_expr(h, f);
            }
        }
        ExprKind::Int { .. }
        | ExprKind::Float
        | ExprKind::Str
        | ExprKind::Char
        | ExprKind::Path(_)
        | ExprKind::Macro { .. }
        | ExprKind::Return(None)
        | ExprKind::Break(None)
        | ExprKind::Continue
        | ExprKind::Unknown => {}
    }
}
