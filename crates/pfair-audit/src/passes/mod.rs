//! The AST/call-graph analysis passes.
//!
//! Each pass consumes the parsed workspace ([`Workspace`]) and emits
//! [`crate::Finding`]s under its own lint name; the central driver in
//! [`crate::lib`] then discharges findings against typed
//! `// audit: allow(<lint>, <reason>)` annotations. See DESIGN.md
//! "Audit v2" for each pass's soundness boundary.

pub mod determinism;
pub mod float_taint;
pub mod overflow;
pub mod panic_reach;

use crate::ast::SourceFile;
use crate::config::Config;
use crate::lexer::LexFile;
use crate::parser::ParseError;
use crate::Finding;

/// One analyzed source file: its lexed tokens (for comments and
/// directive annotations), AST, and any recovered parse errors.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Path relative to the audited root, `/`-separated.
    pub path: String,
    /// Lexed tokens and comments.
    pub lex: LexFile,
    /// Parsed tree.
    pub ast: SourceFile,
    /// Recovered parse errors (analysis blind spots).
    pub errors: Vec<ParseError>,
}

/// The whole parsed workspace, in deterministic path order.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Analyzed files.
    pub files: Vec<AnalyzedFile>,
}

impl Workspace {
    /// `(path, ast)` pairs, the shape [`crate::callgraph`] consumes.
    pub fn ast_refs(&self) -> Vec<(&str, &SourceFile)> {
        self.files
            .iter()
            .map(|f| (f.path.as_str(), &f.ast))
            .collect()
    }
}

/// Lexes and parses one file into its analyzed form.
pub fn analyze_source(path: &str, src: &str) -> AnalyzedFile {
    let lex = LexFile::lex(src);
    let (ast, errors) = crate::parser::parse_file(&lex);
    AnalyzedFile {
        path: path.to_string(),
        lex,
        ast,
        errors,
    }
}

/// Combined output of the four passes.
#[derive(Debug, Default)]
pub struct PassOutput {
    /// Raw findings, before allow-discharge.
    pub findings: Vec<Finding>,
    /// Panic-reach entry-point statuses (raw: `panic_free` before
    /// discharge; the report layer recomputes it afterwards).
    pub entry_points: Vec<panic_reach::EntryStatus>,
}

/// Runs all four passes in a fixed order.
pub fn run_all(ws: &Workspace, cfg: &Config) -> PassOutput {
    let reach = panic_reach::run(ws, cfg);
    let mut findings = reach.findings;
    findings.extend(determinism::run(ws, cfg));
    findings.extend(overflow::run(ws, cfg));
    findings.extend(float_taint::run(ws, cfg));
    PassOutput {
        findings,
        entry_points: reach.entry_points,
    }
}
