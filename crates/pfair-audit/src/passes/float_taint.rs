//! Pass 4: float taint.
//!
//! The exactness theorems (lag/drift accounting, Theorems 3–5 of the
//! paper) hold only if `Rational`, `Priority`, and slot-count values
//! are computed in exact integer arithmetic end to end. The legacy
//! token lint bans floats from the scheduling crates outright; this
//! pass closes the laundering gap in the *float-exempt* paths
//! (simulation geometry, metrics export): a float result may exist
//! there, but it must never flow — even through an integer cast —
//! into a [`Rational`]/`Weight`/`Priority` constructor or a
//! slot-count-typed binding.
//!
//! Taint is tracked intra-procedurally per function, seeded by float
//! literals, `f32`/`f64`-typed parameters and casts, and calls to
//! workspace functions whose declared return type is a float. A cast
//! to an integer type *keeps* the taint (that is the laundering this
//! pass exists to catch). The analysis is flow-insensitive within
//! branches and does not track taint through fields, slices, or
//! out-of-workspace calls — those boundaries are documented in
//! DESIGN.md and covered by the blanket float ban where it applies.

use std::collections::BTreeSet;

use crate::ast::*;
use crate::config::Config;
use crate::lints::FLOAT_TAINT;
use crate::passes::Workspace;
use crate::Finding;

/// Types whose values must stay exact.
const SINK_TYPES: &[&str] = &["Rational", "Weight", "Priority", "Slot", "SlotCount"];

/// Method names that produce floats from exact values.
const FLOAT_METHODS: &[&str] = &["to_f64", "to_f32", "as_f64", "as_f32"];

/// Runs the pass over every file the `float-taint` lint scopes.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    // Workspace functions with a declared float return type, by bare
    // and qualified name: calls to them are taint sources everywhere.
    let mut float_fns: BTreeSet<String> = BTreeSet::new();
    for (_, ast) in ws.ast_refs() {
        collect_float_fns(&ast.items, None, &mut float_fns);
    }

    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.lint_applies(FLOAT_TAINT, &file.path) {
            continue;
        }
        for item in &file.ast.items {
            scan_item(item, false, &float_fns, &file.path, &mut out);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn collect_float_fns(items: &[Item], owner: Option<&str>, out: &mut BTreeSet<String>) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) if f.ret.as_ref().is_some_and(TypeRef::is_float) => {
                out.insert(f.name.clone());
                if let Some(o) = owner {
                    out.insert(format!("{o}::{}", f.name));
                }
            }
            ItemKind::Impl {
                type_name, items, ..
            } => collect_float_fns(items, Some(type_name), out),
            ItemKind::Trait { name, items } => collect_float_fns(items, Some(name), out),
            ItemKind::Mod {
                items: Some(items), ..
            } => collect_float_fns(items, owner, out),
            _ => {}
        }
    }
}

fn scan_item(
    item: &Item,
    in_test: bool,
    float_fns: &BTreeSet<String>,
    path: &str,
    out: &mut Vec<Finding>,
) {
    let in_test = in_test || item.in_test;
    if in_test {
        return;
    }
    match &item.kind {
        ItemKind::Fn(f) => scan_fn(f, float_fns, path, out),
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for it in items {
                scan_item(it, in_test, float_fns, path, out);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for it in items {
                scan_item(it, in_test, float_fns, path, out);
            }
        }
        _ => {}
    }
}

struct FnCtx<'a> {
    /// Locals currently carrying float taint.
    tainted: BTreeSet<String>,
    float_fns: &'a BTreeSet<String>,
    /// Head of the function's declared return type, for return sinks.
    ret_head: Option<&'a str>,
    path: &'a str,
    out: &'a mut Vec<Finding>,
}

fn scan_fn(f: &FnItem, float_fns: &BTreeSet<String>, path: &str, out: &mut Vec<Finding>) {
    let Some(body) = &f.body else {
        return;
    };
    let mut ctx = FnCtx {
        tainted: BTreeSet::new(),
        float_fns,
        ret_head: f.ret.as_ref().map(|t| t.head.as_str()),
        path,
        out,
    };
    for p in &f.params {
        if let (Some(name), true) = (&p.name, p.ty.is_float()) {
            ctx.tainted.insert(name.clone());
        }
    }
    scan_block(body, &mut ctx);
    // The function's tail expression is a `return` sink when the
    // declared return type is exact.
    if let Some(head) = ctx.ret_head {
        if SINK_TYPES.contains(&head) {
            if let Some(Stmt::Expr(tail)) = body.stmts.last() {
                if is_tainted(tail, &ctx.tainted, ctx.float_fns) {
                    ctx.out.push(sink_finding(
                        path,
                        tail.line,
                        &format!("returned as `{head}`"),
                    ));
                }
            }
        }
    }
}

fn scan_block(b: &Block, ctx: &mut FnCtx<'_>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                else_block,
                line,
            } => {
                if let Some(e) = init {
                    scan_expr_tree(e, ctx);
                    let taint = is_tainted(e, &ctx.tainted, ctx.float_fns);
                    if let Some(head) = ty.as_ref().map(|t| t.head.as_str()) {
                        if taint && SINK_TYPES.contains(&head) {
                            ctx.out.push(sink_finding(
                                ctx.path,
                                *line,
                                &format!("bound to a `{head}` local"),
                            ));
                        }
                    }
                    if let Some(n) = name {
                        let float_ty = ty.as_ref().is_some_and(TypeRef::is_float);
                        if taint || float_ty {
                            ctx.tainted.insert(n.clone());
                        } else {
                            ctx.tainted.remove(n); // shadowing kills taint
                        }
                    }
                }
                if let Some(eb) = else_block {
                    scan_block(eb, ctx);
                }
            }
            Stmt::Expr(e) => scan_expr_tree(e, ctx),
            Stmt::Item(_) => {} // nested items are scanned as items
        }
    }
}

/// Walks an expression tree looking for sinks, updating assignment
/// taint along the way.
fn scan_expr_tree(e: &Expr, ctx: &mut FnCtx<'_>) {
    match &e.kind {
        ExprKind::Assign { lhs, rhs, .. } => {
            scan_expr_tree(rhs, ctx);
            if let ExprKind::Path(segs) = &lhs.kind {
                if segs.len() == 1 {
                    if is_tainted(rhs, &ctx.tainted, ctx.float_fns) {
                        ctx.tainted.insert(segs[0].clone());
                    } else {
                        ctx.tainted.remove(&segs[0]);
                    }
                }
            }
        }
        ExprKind::Call { callee, args } => {
            // Calls into exact-type constructors are sinks.
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(ty) = segs.iter().rev().nth(1) {
                    if SINK_TYPES.contains(&ty.as_str()) {
                        for a in args {
                            if is_tainted(a, &ctx.tainted, ctx.float_fns) {
                                ctx.out.push(sink_finding(
                                    ctx.path,
                                    a.line,
                                    &format!("passed to `{ty}::{}`", segs.last().unwrap()),
                                ));
                            }
                        }
                    }
                }
            }
            scan_expr_tree(callee, ctx);
            for a in args {
                scan_expr_tree(a, ctx);
            }
        }
        ExprKind::Return(Some(inner)) => {
            if let Some(head) = ctx.ret_head {
                if SINK_TYPES.contains(&head) && is_tainted(inner, &ctx.tainted, ctx.float_fns) {
                    ctx.out.push(sink_finding(
                        ctx.path,
                        inner.line,
                        &format!("returned as `{head}`"),
                    ));
                }
            }
            scan_expr_tree(inner, ctx);
        }
        ExprKind::StructLit { path, fields, rest } => {
            if let Some(ty) = path.last() {
                if SINK_TYPES.contains(&ty.as_str()) {
                    for (fname, v) in fields {
                        if let Some(v) = v {
                            if is_tainted(v, &ctx.tainted, ctx.float_fns) {
                                ctx.out.push(sink_finding(
                                    ctx.path,
                                    v.line,
                                    &format!("assigned to field `{ty}.{fname}`"),
                                ));
                            }
                        }
                    }
                }
            }
            for (_, v) in fields {
                if let Some(v) = v {
                    scan_expr_tree(v, ctx);
                }
            }
            if let Some(r) = rest {
                scan_expr_tree(r, ctx);
            }
        }
        // Structured recursion for everything else.
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } | ExprKind::Try(expr) => {
            scan_expr_tree(expr, ctx);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr_tree(lhs, ctx);
            scan_expr_tree(rhs, ctx);
        }
        ExprKind::MethodCall { recv, args, .. } => {
            scan_expr_tree(recv, ctx);
            for a in args {
                scan_expr_tree(a, ctx);
            }
        }
        ExprKind::Field { recv, .. } => scan_expr_tree(recv, ctx),
        ExprKind::Index { recv, index } => {
            scan_expr_tree(recv, ctx);
            scan_expr_tree(index, ctx);
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for it in items {
                scan_expr_tree(it, ctx);
            }
        }
        ExprKind::Repeat { elem, len } => {
            scan_expr_tree(elem, ctx);
            scan_expr_tree(len, ctx);
        }
        ExprKind::Block(b) | ExprKind::Loop(b) => scan_block(b, ctx),
        ExprKind::If { cond, then, els } => {
            scan_expr_tree(cond, ctx);
            scan_block(then, ctx);
            if let Some(e) = els {
                scan_expr_tree(e, ctx);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            scan_expr_tree(scrutinee, ctx);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    scan_expr_tree(g, ctx);
                }
                scan_expr_tree(&arm.body, ctx);
            }
        }
        ExprKind::While { cond, body } => {
            scan_expr_tree(cond, ctx);
            scan_block(body, ctx);
        }
        ExprKind::For { iter, body, .. } => {
            scan_expr_tree(iter, ctx);
            scan_block(body, ctx);
        }
        ExprKind::Closure { body, .. } => scan_expr_tree(body, ctx),
        ExprKind::Break(Some(inner)) => scan_expr_tree(inner, ctx),
        ExprKind::Range { lo, hi } => {
            if let Some(l) = lo {
                scan_expr_tree(l, ctx);
            }
            if let Some(h) = hi {
                scan_expr_tree(h, ctx);
            }
        }
        _ => {}
    }
}

/// True when the expression's value may derive from a float.
fn is_tainted(e: &Expr, tainted: &BTreeSet<String>, float_fns: &BTreeSet<String>) -> bool {
    match &e.kind {
        ExprKind::Float => true,
        ExprKind::Path(segs) => match segs.as_slice() {
            [one] => tainted.contains(one),
            _ => false,
        },
        // Taint survives casts, integer targets included: that is the
        // laundering path (`(w * 1e6) as i64`).
        ExprKind::Cast { expr, ty } => ty.is_float() || is_tainted(expr, tainted, float_fns),
        ExprKind::Unary { expr, .. } | ExprKind::Try(expr) => is_tainted(expr, tainted, float_fns),
        ExprKind::Binary { lhs, rhs, .. } => {
            is_tainted(lhs, tainted, float_fns) || is_tainted(rhs, tainted, float_fns)
        }
        ExprKind::Call { callee, args } => {
            let callee_float = match &callee.kind {
                ExprKind::Path(segs) => {
                    let bare = segs.last().is_some_and(|s| float_fns.contains(s));
                    let qual = segs.len() >= 2
                        && float_fns.contains(&format!(
                            "{}::{}",
                            segs[segs.len() - 2],
                            segs[segs.len() - 1]
                        ));
                    bare || qual
                }
                _ => false,
            };
            callee_float || args.iter().any(|a| is_tainted(a, tainted, float_fns))
        }
        ExprKind::MethodCall { recv, name, args } => {
            FLOAT_METHODS.contains(&name.as_str())
                || float_fns.contains(name)
                || is_tainted(recv, tainted, float_fns)
                || args.iter().any(|a| is_tainted(a, tainted, float_fns))
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            items.iter().any(|it| is_tainted(it, tainted, float_fns))
        }
        ExprKind::If { then, els, .. } => {
            then.stmts
                .last()
                .is_some_and(|s| matches!(s, Stmt::Expr(e) if is_tainted(e, tainted, float_fns)))
                || els
                    .as_ref()
                    .is_some_and(|e| is_tainted(e, tainted, float_fns))
        }
        ExprKind::Block(b) => b
            .stmts
            .last()
            .is_some_and(|s| matches!(s, Stmt::Expr(e) if is_tainted(e, tainted, float_fns))),
        _ => false,
    }
}

fn sink_finding(path: &str, line: u32, what: &str) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        lint: FLOAT_TAINT.to_string(),
        message: format!(
            "float-derived value {what}; exact quantities must be computed \
             in integer/rational arithmetic end to end"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_source;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![analyze_source("crates/s/src/lib.rs", src)],
        };
        let mut cfg = Config::default();
        cfg.lints.entry(FLOAT_TAINT.to_string()).or_default();
        run(&ws, &cfg)
    }

    #[test]
    fn laundered_float_reaching_rational_is_caught() {
        let src = "
pub fn bad(w: f64) -> u32 {
    let scaled = (w * 1000000.0) as i64;
    let r = Rational::new(scaled, 1000000);
    0
}
";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("Rational::new"));
    }

    #[test]
    fn float_returning_workspace_fn_taints_callers() {
        let src = "
fn jitter() -> f64 { 0.5 }
pub fn bad() {
    let j = jitter() as i64;
    let w: Weight = Weight::from_ratio(j, 10);
}
pub fn also_bad() {
    let s: Slot = helper(jitter() as u64);
}
fn helper(x: u64) -> u64 { x }
";
        let got = findings(src);
        // `Weight::from_ratio(j, ..)` fires both the call-arg sink and
        // the `let w: Weight` binding sink; `let s: Slot = ..` fires one.
        assert_eq!(got.len(), 3, "{got:?}");
    }

    #[test]
    fn exact_arithmetic_is_clean_and_shadowing_kills_taint() {
        let src = "
pub fn good(n: i64) -> u32 {
    let x = 0.5;
    let x = n * 2;
    let r = Rational::new(x, 2);
    0
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn returning_taint_as_exact_type_is_caught() {
        let src = "
pub fn bad(w: f64) -> Rational {
    Rational { num: 1, den: 2 }
}
pub fn worse(w: f64) -> Priority {
    (w as u128)
}
";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("returned as `Priority`"));
    }
}
