//! Pass 3: interval/overflow analysis.
//!
//! Functions opted in with `// audit: prove(overflow-bounds)` are run
//! through an abstract interpreter over the interval domain of
//! [`crate::absint`]. Parameter ranges come from the declared integer
//! types, tightened by `// audit: assume(<name> in <lo>..=<hi>)`
//! contracts whose bounds may reference workspace constants (so
//! `-SLOT_BOUND..=SLOT_BOUND` stays in sync with `priority.rs`). The
//! pass reports every `+`, `-`, `*`, `<<`, or `abs()` whose result
//! interval escapes the result type's range, every `/`, `%`, or
//! `rem_euclid` whose divisor may be zero, and any function return
//! that cannot be bounded inside the declared return type.
//!
//! Joins are interval unions at `if`/`match` merge points; loops
//! widen every variable assigned in the body to its declared type's
//! full range before a single body pass (a one-shot widening that is
//! sound without fixpoint iteration). Branch conditions do *not*
//! refine intervals (the AST collapses comparison operators), so
//! guard-style code should either use `clamp`/`min`/`max` — which are
//! modeled precisely — or carry an `assume` contract.

use std::collections::{BTreeMap, BTreeSet};

use crate::absint::{Bound, Interval, TOP};
use crate::ast::*;
use crate::config::Config;
use crate::lexer::LexFile;
use crate::lints::{parse_assumes, parse_proves, Assume, OVERFLOW_INTERVAL};
use crate::parser::parse_file;
use crate::passes::Workspace;
use crate::Finding;

/// Workspace constant environment: value plus, when suffixed, the
/// declared integer type (bits, signed), keyed by constant name.
type ConstEnv = BTreeMap<String, (i128, Option<(u32, bool)>)>;

/// The abstract value: an interval plus, when known, the expression's
/// integer type (bits, signed).
#[derive(Clone, Copy, Debug)]
struct AbsVal {
    iv: Interval,
    ty: Option<(u32, bool)>,
}

const UNKNOWN: AbsVal = AbsVal { iv: TOP, ty: None };

impl AbsVal {
    fn of_type(bits: u32, signed: bool) -> AbsVal {
        AbsVal {
            iv: Interval::of_type(bits, signed),
            ty: Some((bits, signed)),
        }
    }
}

/// Runs the pass: analyzes every `prove(overflow-bounds)` function in
/// files the `overflow-interval` lint scopes.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let consts = collect_consts(ws);
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.lint_applies(OVERFLOW_INTERVAL, &file.path) {
            continue;
        }
        analyze_file(file.path.as_str(), &file.lex, &file.ast, &consts, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn analyze_file(
    path: &str,
    lex: &LexFile,
    ast: &SourceFile,
    consts: &ConstEnv,
    out: &mut Vec<Finding>,
) {
    // Every function item by line, for directive attachment.
    let mut fns: Vec<(u32, &FnItem, bool)> = Vec::new();
    index_fns(&ast.items, false, &mut fns);
    fns.sort_by_key(|(line, _, _)| *line);
    let next_fn = |line: u32| fns.iter().find(|(l, _, _)| *l > line);

    let mut proven: BTreeSet<u32> = BTreeSet::new();
    for prove in parse_proves(lex) {
        if prove.property != "overflow-bounds" {
            out.push(finding(
                path,
                prove.line,
                format!(
                    "unknown prove property `{}`; supported: overflow-bounds",
                    prove.property
                ),
            ));
            continue;
        }
        match next_fn(prove.line) {
            Some((l, _, false)) => {
                proven.insert(*l);
            }
            _ => out.push(finding(
                path,
                prove.line,
                "prove(overflow-bounds) does not precede a function".to_string(),
            )),
        }
    }

    // Assume contracts attach to the nearest following function.
    let mut assumes_by_fn: BTreeMap<u32, Vec<Assume>> = BTreeMap::new();
    for assume in parse_assumes(lex) {
        if assume.lo.is_empty() || assume.hi.is_empty() {
            out.push(finding(
                path,
                assume.line,
                format!(
                    "malformed assume for `{}`; expected \
                     `audit: assume(<name> in <lo>..=<hi>)`",
                    assume.name
                ),
            ));
            continue;
        }
        match next_fn(assume.line) {
            Some((l, _, _)) if proven.contains(l) => {
                assumes_by_fn.entry(*l).or_default().push(assume);
            }
            _ => out.push(finding(
                path,
                assume.line,
                format!(
                    "assume(`{}`) does not precede a prove(overflow-bounds) function",
                    assume.name
                ),
            )),
        }
    }

    for (line, func, _) in &fns {
        if proven.contains(line) {
            let assumes = assumes_by_fn.remove(line).unwrap_or_default();
            analyze_fn(path, func, &assumes, consts, out);
        }
    }
}

fn index_fns<'a>(items: &'a [Item], in_test: bool, out: &mut Vec<(u32, &'a FnItem, bool)>) {
    for item in items {
        let in_test = in_test || item.in_test;
        match &item.kind {
            ItemKind::Fn(f) => out.push((item.line, f, in_test)),
            ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Mod {
                items: Some(items), ..
            } => index_fns(items, in_test, out),
            _ => {}
        }
    }
}

struct Ctx<'a> {
    path: &'a str,
    locals: BTreeMap<String, AbsVal>,
    /// Contracts not yet bound to a parameter, applied at the first
    /// `let` of that name.
    pending_assumes: BTreeMap<String, Interval>,
    consts: &'a ConstEnv,
    ret: Option<(u32, bool)>,
    out: &'a mut Vec<Finding>,
}

fn analyze_fn(
    path: &str,
    func: &FnItem,
    assumes: &[Assume],
    consts: &ConstEnv,
    out: &mut Vec<Finding>,
) {
    let Some(body) = &func.body else {
        return;
    };
    let mut ctx = Ctx {
        path,
        locals: BTreeMap::new(),
        pending_assumes: BTreeMap::new(),
        consts,
        ret: func.ret.as_ref().and_then(|t| int_type_bits(&t.head)),
        out,
    };
    for p in &func.params {
        if let Some(name) = &p.name {
            let val = match int_type_bits(&p.ty.head) {
                Some((bits, signed)) => AbsVal::of_type(bits, signed),
                None => UNKNOWN,
            };
            ctx.locals.insert(name.clone(), val);
        }
    }
    for assume in assumes {
        let Some((lo, hi)) = eval_bound(&assume.lo, consts).zip(eval_bound(&assume.hi, consts))
        else {
            ctx.out.push(finding(
                path,
                assume.line,
                format!(
                    "assume bounds for `{}` are not constant-evaluable \
                     (`{}..={}`)",
                    assume.name, assume.lo, assume.hi
                ),
            ));
            continue;
        };
        let range = Interval::range(lo, hi);
        match ctx.locals.get_mut(&assume.name) {
            Some(val) => {
                if let Some((bits, signed)) = val.ty {
                    if !range.subset_of(&Interval::of_type(bits, signed)) {
                        ctx.out.push(finding(
                            path,
                            assume.line,
                            format!(
                                "assume range {} for `{}` exceeds the parameter's \
                                 declared type",
                                fmt_iv(range),
                                assume.name
                            ),
                        ));
                        continue;
                    }
                }
                val.iv = val.iv.intersect(range);
            }
            None => {
                ctx.pending_assumes.insert(assume.name.clone(), range);
            }
        }
    }
    let tail = eval_block(body, &mut ctx);
    check_return(&tail, body_tail_line(body).unwrap_or(body.line), &mut ctx);
}

fn body_tail_line(b: &Block) -> Option<u32> {
    match b.stmts.last()? {
        Stmt::Expr(e) => Some(e.line),
        Stmt::Let { line, .. } => Some(*line),
        Stmt::Item(i) => Some(i.line),
    }
}

fn check_return(val: &AbsVal, line: u32, ctx: &mut Ctx<'_>) {
    let Some((bits, signed)) = ctx.ret else {
        return;
    };
    let range = Interval::of_type(bits, signed);
    if !val.iv.subset_of(&range) {
        let detail = if val.iv == TOP {
            "cannot be bounded".to_string()
        } else {
            format!("lies in {}", fmt_iv(val.iv))
        };
        ctx.out.push(finding(
            ctx.path,
            line,
            format!(
                "return value {detail}, outside the declared `{}` range",
                ty_name(bits, signed)
            ),
        ));
    }
}

fn eval_block(b: &Block, ctx: &mut Ctx<'_>) -> AbsVal {
    let mut last = UNKNOWN;
    for stmt in &b.stmts {
        last = UNKNOWN;
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                else_block,
                ..
            } => {
                let mut val = match init {
                    Some(e) => eval_expr(e, ctx),
                    None => UNKNOWN,
                };
                if let Some(declared) = ty.as_ref().and_then(|t| int_type_bits(&t.head)) {
                    // The compiler guarantees the binding's type; keep
                    // the tighter of the computed and declared ranges.
                    val.ty = Some(declared);
                    val.iv = val.iv.intersect(Interval::of_type(declared.0, declared.1));
                }
                if let Some(eb) = else_block {
                    let saved = ctx.locals.clone();
                    eval_block(eb, ctx);
                    ctx.locals = saved;
                }
                if let Some(n) = name {
                    if let Some(assumed) = ctx.pending_assumes.remove(n) {
                        val.iv = val.iv.intersect(assumed);
                    }
                    ctx.locals.insert(n.clone(), val);
                }
            }
            Stmt::Expr(e) => last = eval_expr(e, ctx),
            Stmt::Item(_) => {}
        }
    }
    last
}

/// Merges branch-local states back: every pre-existing variable takes
/// the union of its value across the branch exits.
fn merge_branches(base: &mut BTreeMap<String, AbsVal>, branches: &[BTreeMap<String, AbsVal>]) {
    for (name, val) in base.iter_mut() {
        for br in branches {
            if let Some(b) = br.get(name) {
                val.iv = val.iv.union(b.iv);
            }
        }
    }
}

fn eval_expr(e: &Expr, ctx: &mut Ctx<'_>) -> AbsVal {
    match &e.kind {
        ExprKind::Int { value, suffix } => AbsVal {
            iv: value.map_or(TOP, Interval::exact),
            ty: suffix.as_deref().and_then(int_type_bits),
        },
        ExprKind::Path(segs) => eval_path(segs, ctx),
        ExprKind::Unary { op, expr } => {
            let v = eval_expr(expr, ctx);
            match op {
                UnOp::Neg => {
                    let mut r = AbsVal {
                        iv: v.iv.neg(),
                        ty: v.ty,
                    };
                    check_op(&mut r, "-", e.line, ctx);
                    r
                }
                UnOp::Not => AbsVal {
                    iv: if v.ty.is_some() {
                        TOP
                    } else {
                        Interval::range(0, 1)
                    },
                    ty: v.ty,
                },
                UnOp::Deref | UnOp::Ref => v,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = eval_expr(lhs, ctx);
            let b = eval_expr(rhs, ctx);
            eval_binop(*op, a, b, e.line, ctx)
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let b = eval_expr(rhs, ctx);
            let target = match &lhs.kind {
                ExprKind::Path(segs) if segs.len() == 1 => Some(segs[0].clone()),
                _ => None,
            };
            let new_val = match op {
                Some(op) => {
                    let a = target
                        .as_ref()
                        .and_then(|n| ctx.locals.get(n).copied())
                        .unwrap_or(UNKNOWN);
                    eval_binop(*op, a, b, e.line, ctx)
                }
                None => b,
            };
            if let Some(n) = target {
                if let Some(slot) = ctx.locals.get_mut(&n) {
                    let ty = slot.ty.or(new_val.ty);
                    *slot = AbsVal { iv: new_val.iv, ty };
                }
            }
            UNKNOWN
        }
        ExprKind::Cast { expr, ty } => {
            let v = eval_expr(expr, ctx);
            match int_type_bits(&ty.head) {
                Some((bits, signed)) => {
                    let range = Interval::of_type(bits, signed);
                    let iv = if v.iv.subset_of(&range) {
                        v.iv
                    } else {
                        // Lossy: `as` wraps; the token lint owns the
                        // style question, the value is the full range.
                        range
                    };
                    AbsVal {
                        iv,
                        ty: Some((bits, signed)),
                    }
                }
                None => UNKNOWN,
            }
        }
        ExprKind::Call { callee, args } => {
            let vals: Vec<AbsVal> = args.iter().map(|a| eval_expr(a, ctx)).collect();
            eval_call(callee, &vals, ctx)
        }
        ExprKind::MethodCall { recv, name, args } => {
            let r = eval_expr(recv, ctx);
            let vals: Vec<AbsVal> = args.iter().map(|a| eval_expr(a, ctx)).collect();
            eval_method(r, name, &vals, e.line, ctx)
        }
        ExprKind::Try(expr) | ExprKind::Field { recv: expr, .. } => {
            let _ = eval_expr(expr, ctx);
            UNKNOWN
        }
        ExprKind::Index { recv, index } => {
            let _ = eval_expr(recv, ctx);
            let _ = eval_expr(index, ctx);
            UNKNOWN
        }
        ExprKind::Tuple(items) => match items.as_slice() {
            [one] => eval_expr(one, ctx), // parenthesization
            items => {
                for it in items {
                    let _ = eval_expr(it, ctx);
                }
                UNKNOWN
            }
        },
        ExprKind::Array(items) => {
            for it in items {
                let _ = eval_expr(it, ctx);
            }
            UNKNOWN
        }
        ExprKind::Repeat { elem, len } => {
            let _ = eval_expr(elem, ctx);
            let _ = eval_expr(len, ctx);
            UNKNOWN
        }
        ExprKind::Block(b) => {
            let saved = ctx.locals.clone();
            let v = eval_block(b, ctx);
            let inner = std::mem::replace(&mut ctx.locals, saved);
            merge_branches(&mut ctx.locals, &[inner]);
            v
        }
        ExprKind::If { cond, then, els } => {
            let _ = eval_expr(cond, ctx);
            let saved = ctx.locals.clone();
            let tv = eval_block(then, ctx);
            let then_locals = std::mem::replace(&mut ctx.locals, saved);
            let ev = els.as_ref().map(|e| eval_expr(e, ctx));
            let else_locals = ctx.locals.clone();
            merge_branches(&mut ctx.locals, &[then_locals, else_locals]);
            match ev {
                Some(ev) => AbsVal {
                    iv: tv.iv.union(ev.iv),
                    ty: tv.ty.or(ev.ty),
                },
                None => UNKNOWN,
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            let _ = eval_expr(scrutinee, ctx);
            let saved = ctx.locals.clone();
            let mut exits = Vec::new();
            let mut val: Option<AbsVal> = None;
            for arm in arms {
                ctx.locals = saved.clone();
                for ident in &arm.pat_idents {
                    // Pattern binders shadow with unknown values.
                    ctx.locals.insert(ident.clone(), UNKNOWN);
                }
                if let Some(g) = &arm.guard {
                    let _ = eval_expr(g, ctx);
                }
                let av = eval_expr(&arm.body, ctx);
                val = Some(match val {
                    Some(v) => AbsVal {
                        iv: v.iv.union(av.iv),
                        ty: v.ty.or(av.ty),
                    },
                    None => av,
                });
                exits.push(std::mem::take(&mut ctx.locals));
            }
            ctx.locals = saved;
            merge_branches(&mut ctx.locals, &exits);
            val.unwrap_or(UNKNOWN)
        }
        ExprKind::While { cond, body } => {
            widen_loop_vars(body, ctx);
            let _ = eval_expr(cond, ctx);
            let _ = eval_block(body, ctx);
            UNKNOWN
        }
        ExprKind::Loop(body) => {
            widen_loop_vars(body, ctx);
            let _ = eval_block(body, ctx);
            UNKNOWN
        }
        ExprKind::For { pat, iter, body } => {
            let range = eval_expr(iter, ctx);
            widen_loop_vars(body, ctx);
            if let Some(binder) = pat {
                ctx.locals.insert(binder.clone(), range);
            }
            let _ = eval_block(body, ctx);
            UNKNOWN
        }
        ExprKind::Closure { body, .. } => {
            let _ = eval_expr(body, ctx);
            UNKNOWN
        }
        ExprKind::Return(inner) => {
            let v = inner.as_ref().map_or(UNKNOWN, |e| eval_expr(e, ctx));
            if inner.is_some() {
                check_return(&v, e.line, ctx);
            }
            UNKNOWN
        }
        ExprKind::Break(Some(inner)) => {
            let _ = eval_expr(inner, ctx);
            UNKNOWN
        }
        ExprKind::Range { lo, hi } => {
            // A range *value*: used by `for` loops; the inclusive hull
            // of both ends is a sound iteration interval.
            let l = lo.as_ref().map(|e| eval_expr(e, ctx));
            let h = hi.as_ref().map(|e| eval_expr(e, ctx));
            match (l, h) {
                (Some(l), Some(h)) => AbsVal {
                    iv: l.iv.union(h.iv),
                    ty: l.ty.or(h.ty),
                },
                _ => UNKNOWN,
            }
        }
        _ => UNKNOWN,
    }
}

fn eval_path(segs: &[String], ctx: &mut Ctx<'_>) -> AbsVal {
    if let [one] = segs {
        if let Some(v) = ctx.locals.get(one) {
            return *v;
        }
    }
    // `i64::MAX` / `u32::MIN` style associated constants.
    if segs.len() == 2 {
        if let Some((bits, signed)) = int_type_bits(&segs[0]) {
            let range = Interval::of_type(bits, signed);
            let iv = match segs[1].as_str() {
                "MAX" => Interval {
                    lo: range.hi,
                    hi: range.hi,
                },
                "MIN" => Interval {
                    lo: range.lo,
                    hi: range.lo,
                },
                _ => return UNKNOWN,
            };
            return AbsVal {
                iv,
                ty: Some((bits, signed)),
            };
        }
    }
    if let Some(name) = segs.last() {
        if let Some((v, ty)) = ctx.consts.get(name) {
            return AbsVal {
                iv: Interval::exact(*v),
                ty: *ty,
            };
        }
    }
    UNKNOWN
}

fn eval_binop(op: BinOp, a: AbsVal, b: AbsVal, line: u32, ctx: &mut Ctx<'_>) -> AbsVal {
    let ty = a.ty.or(b.ty);
    let val = |iv: Interval| AbsVal { iv, ty };
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl => {
            let iv = match op {
                BinOp::Add => a.iv.add(b.iv),
                BinOp::Sub => a.iv.sub(b.iv),
                BinOp::Mul => a.iv.mul(b.iv),
                _ => a.iv.shl(b.iv),
            };
            let mut r = val(iv);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                _ => "<<",
            };
            check_op(&mut r, sym, line, ctx);
            r
        }
        BinOp::Div | BinOp::Rem => {
            if b.iv.contains_zero() {
                let sym = if op == BinOp::Div { "/" } else { "%" };
                ctx.out.push(finding(
                    ctx.path,
                    line,
                    format!(
                        "`{sym}` divisor may be zero (divisor interval {})",
                        fmt_iv(b.iv)
                    ),
                ));
            }
            val(if op == BinOp::Div {
                a.iv.div(b.iv)
            } else {
                a.iv.rem(b.iv)
            })
        }
        BinOp::Shr => val(a.iv.shr(b.iv)),
        BinOp::BitAnd => val(a.iv.bitand(b.iv)),
        BinOp::BitOr => val(a.iv.bitor(b.iv)),
        BinOp::BitXor => val(a.iv.bitxor(b.iv)),
        BinOp::And | BinOp::Or | BinOp::Cmp => AbsVal {
            iv: Interval::range(0, 1),
            ty: None,
        },
    }
}

/// Flags a checked operation whose result escapes its type's range,
/// then clamps the interval to keep downstream findings independent.
fn check_op(val: &mut AbsVal, sym: &str, line: u32, ctx: &mut Ctx<'_>) {
    let Some((bits, signed)) = val.ty else {
        return;
    };
    let range = Interval::of_type(bits, signed);
    if !val.iv.subset_of(&range) {
        let detail = if val.iv == TOP {
            "operands are unbounded".to_string()
        } else {
            format!("result lies in {}", fmt_iv(val.iv))
        };
        ctx.out.push(finding(
            ctx.path,
            line,
            format!("`{sym}` may overflow `{}`: {detail}", ty_name(bits, signed)),
        ));
        val.iv = val.iv.intersect(range);
    }
}

fn eval_call(callee: &Expr, args: &[AbsVal], _ctx: &mut Ctx<'_>) -> AbsVal {
    let ExprKind::Path(segs) = &callee.kind else {
        return UNKNOWN;
    };
    if segs.len() == 2 {
        if let Some((bits, signed)) = int_type_bits(&segs[0]) {
            let range = Interval::of_type(bits, signed);
            match (segs[1].as_str(), args) {
                // `T::try_from(x)`: the success payload is `x` confined
                // to `T`'s range (the failure arm diverges or defaults,
                // handled by `unwrap_or`).
                ("try_from", [x]) => {
                    return AbsVal {
                        iv: x.iv.intersect(range),
                        ty: Some((bits, signed)),
                    }
                }
                // `T::from(x)`: lossless widening.
                ("from", [x]) => {
                    return AbsVal {
                        iv: x.iv,
                        ty: Some((bits, signed)),
                    }
                }
                ("min", [a, b]) => {
                    return AbsVal {
                        iv: a.iv.min_val(b.iv),
                        ty: Some((bits, signed)),
                    }
                }
                ("max", [a, b]) => {
                    return AbsVal {
                        iv: a.iv.max_val(b.iv),
                        ty: Some((bits, signed)),
                    }
                }
                _ => {}
            }
        }
    }
    UNKNOWN
}

fn eval_method(recv: AbsVal, name: &str, args: &[AbsVal], line: u32, ctx: &mut Ctx<'_>) -> AbsVal {
    let exact = |v: &AbsVal| match (v.iv.lo, v.iv.hi) {
        (Bound::Int(a), Bound::Int(b)) if a == b => Some(a),
        _ => None,
    };
    let ty_range = |ty: Option<(u32, bool)>| ty.map_or(TOP, |(b, s)| Interval::of_type(b, s));
    match (name, args) {
        ("clamp", [lo, hi]) => match (exact(lo), exact(hi)) {
            (Some(l), Some(h)) => AbsVal {
                iv: recv.iv.clamp(l, h),
                ty: recv.ty,
            },
            _ => AbsVal {
                iv: recv.iv.intersect(Interval {
                    lo: lo.iv.lo,
                    hi: hi.iv.hi,
                }),
                ty: recv.ty,
            },
        },
        ("min", [o]) => AbsVal {
            iv: recv.iv.min_val(o.iv),
            ty: recv.ty.or(o.ty),
        },
        ("max", [o]) => AbsVal {
            iv: recv.iv.max_val(o.iv),
            ty: recv.ty.or(o.ty),
        },
        ("abs", []) => {
            let mut r = AbsVal {
                iv: recv.iv.abs(),
                ty: recv.ty,
            };
            // `i64::MIN.abs()` panics/overflows; the range check owns it.
            check_op(&mut r, "abs", line, ctx);
            r
        }
        ("rem_euclid", [o]) => {
            if o.iv.contains_zero() {
                ctx.out.push(finding(
                    ctx.path,
                    line,
                    format!(
                        "`rem_euclid` divisor may be zero (divisor interval {})",
                        fmt_iv(o.iv)
                    ),
                ));
            }
            AbsVal {
                iv: recv.iv.rem_euclid(o.iv),
                ty: recv.ty,
            }
        }
        ("saturating_add", [o]) => AbsVal {
            iv: recv.iv.add(o.iv).intersect(ty_range(recv.ty.or(o.ty))),
            ty: recv.ty.or(o.ty),
        },
        ("saturating_sub", [o]) => AbsVal {
            iv: recv.iv.sub(o.iv).intersect(ty_range(recv.ty.or(o.ty))),
            ty: recv.ty.or(o.ty),
        },
        ("saturating_mul", [o]) => AbsVal {
            iv: recv.iv.mul(o.iv).intersect(ty_range(recv.ty.or(o.ty))),
            ty: recv.ty.or(o.ty),
        },
        ("wrapping_add" | "wrapping_sub" | "wrapping_mul" | "wrapping_neg", _) => AbsVal {
            iv: ty_range(recv.ty),
            ty: recv.ty,
        },
        // `checked_*` yields the success payload (confined to the type
        // by construction); `unwrap_or` below unions in the default.
        ("checked_add", [o]) => AbsVal {
            iv: recv.iv.add(o.iv).intersect(ty_range(recv.ty.or(o.ty))),
            ty: recv.ty.or(o.ty),
        },
        ("checked_sub", [o]) => AbsVal {
            iv: recv.iv.sub(o.iv).intersect(ty_range(recv.ty.or(o.ty))),
            ty: recv.ty.or(o.ty),
        },
        ("checked_mul", [o]) => AbsVal {
            iv: recv.iv.mul(o.iv).intersect(ty_range(recv.ty.or(o.ty))),
            ty: recv.ty.or(o.ty),
        },
        ("unwrap_or", [d]) => AbsVal {
            iv: recv.iv.union(d.iv),
            ty: recv.ty.or(d.ty),
        },
        ("unwrap_or_default", []) => AbsVal {
            iv: recv.iv.union(Interval::exact(0)),
            ty: recv.ty,
        },
        ("unwrap" | "expect", _) => recv,
        ("len" | "count", []) => AbsVal::of_type(64, false),
        ("leading_zeros" | "trailing_zeros" | "count_ones", []) => AbsVal {
            iv: Interval::range(0, 128),
            ty: Some((32, false)),
        },
        ("pow", [o]) => {
            // Model x.pow(k) as repeated multiplication only for exact
            // small exponents; otherwise unknown-in-type.
            match exact(o) {
                Some(k) if (0..=8).contains(&k) => {
                    let mut iv = Interval::exact(1);
                    for _ in 0..k {
                        iv = iv.mul(recv.iv);
                    }
                    let mut r = AbsVal { iv, ty: recv.ty };
                    check_op(&mut r, "pow", line, ctx);
                    r
                }
                _ => AbsVal {
                    iv: ty_range(recv.ty),
                    ty: recv.ty,
                },
            }
        }
        _ => UNKNOWN,
    }
}

/// One-shot widening: every variable assigned anywhere in the loop
/// body jumps to its declared type's full range (or [`TOP`]).
fn widen_loop_vars(body: &Block, ctx: &mut Ctx<'_>) {
    let mut assigned = BTreeSet::new();
    walk_block(body, &mut |e| {
        if let ExprKind::Assign { lhs, .. } = &e.kind {
            if let ExprKind::Path(segs) = &lhs.kind {
                if let [one] = segs.as_slice() {
                    assigned.insert(one.clone());
                }
            }
        }
    });
    for name in assigned {
        if let Some(val) = ctx.locals.get_mut(&name) {
            val.iv = val.ty.map_or(TOP, |(b, s)| Interval::of_type(b, s));
        }
    }
}

/// Parses an assume bound's expression text and evaluates it against
/// the workspace constants.
fn eval_bound(text: &str, consts: &ConstEnv) -> Option<i128> {
    let src = format!("const __BOUND: i128 = {text};");
    let lex = LexFile::lex(&src);
    let (ast, errors) = parse_file(&lex);
    if !errors.is_empty() {
        return None;
    }
    match ast.items.into_iter().next()?.kind {
        ItemKind::Const { value: Some(e), .. } => eval_const(&e, consts),
        _ => None,
    }
}

/// Constant expression evaluation over literals, negation, the four
/// widening-checked operators, shifts, casts, and known const names.
fn eval_const(e: &Expr, env: &ConstEnv) -> Option<i128> {
    match &e.kind {
        ExprKind::Int { value, .. } => *value,
        ExprKind::Path(segs) => {
            if segs.len() == 2 {
                if let Some((bits, signed)) = int_type_bits(&segs[0]) {
                    let range = Interval::of_type(bits, signed);
                    return match (segs[1].as_str(), range.lo, range.hi) {
                        ("MAX", _, Bound::Int(v)) => Some(v),
                        ("MIN", Bound::Int(v), _) => Some(v),
                        _ => None,
                    };
                }
            }
            env.get(segs.last()?).map(|(v, _)| *v)
        }
        ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => eval_const(expr, env)?.checked_neg(),
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (eval_const(lhs, env)?, eval_const(rhs, env)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => a.checked_div(b),
                BinOp::Shl => a.checked_shl(u32::try_from(b).ok()?),
                BinOp::Shr => a.checked_shr(u32::try_from(b).ok()?),
                _ => None,
            }
        }
        ExprKind::Cast { expr, .. } => eval_const(expr, env),
        ExprKind::Tuple(items) if items.len() == 1 => eval_const(&items[0], env),
        _ => None,
    }
}

/// Workspace `const`/`static` integer values, resolved iteratively so
/// consts may reference each other across files.
fn collect_consts(ws: &Workspace) -> ConstEnv {
    let mut decls: Vec<(&str, &TypeRef, &Expr)> = Vec::new();
    for file in &ws.files {
        collect_const_decls(&file.ast.items, &mut decls);
    }
    let mut env: ConstEnv = BTreeMap::new();
    for _ in 0..3 {
        let mut progressed = false;
        for (name, ty, value) in &decls {
            if env.contains_key(*name) {
                continue;
            }
            if let Some(v) = eval_const(value, &env) {
                env.insert(name.to_string(), (v, int_type_bits(&ty.head)));
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    env
}

fn collect_const_decls<'a>(items: &'a [Item], out: &mut Vec<(&'a str, &'a TypeRef, &'a Expr)>) {
    for item in items {
        match &item.kind {
            ItemKind::Const {
                name,
                ty,
                value: Some(e),
            } => out.push((name, ty, e)),
            ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Mod {
                items: Some(items), ..
            } => collect_const_decls(items, out),
            _ => {}
        }
    }
}

fn finding(path: &str, line: u32, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        lint: OVERFLOW_INTERVAL.to_string(),
        message,
    }
}

fn ty_name(bits: u32, signed: bool) -> String {
    format!("{}{bits}", if signed { "i" } else { "u" })
}

fn fmt_iv(iv: Interval) -> String {
    let b = |b: Bound| match b {
        Bound::NegInf => "-inf".to_string(),
        Bound::PosInf => "+inf".to_string(),
        Bound::Int(v) => v.to_string(),
    };
    format!("[{}, {}]", b(iv.lo), b(iv.hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_source;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![analyze_source("crates/s/src/lib.rs", src)],
        };
        let mut cfg = Config::default();
        cfg.lints.entry(OVERFLOW_INTERVAL.to_string()).or_default();
        run(&ws, &cfg)
    }

    #[test]
    fn packing_pattern_is_proven_in_bounds() {
        let src = "
pub const SLOT_BOUND: i64 = 1 << 46;
// audit: prove(overflow-bounds)
// audit: assume(deadline in -SLOT_BOUND..=SLOT_BOUND)
pub fn pack(deadline: i64) -> u128 {
    let biased = (deadline + SLOT_BOUND) as u128;
    (biased << 64) | 511
}
";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn unbounded_packing_overflows() {
        let src = "
// audit: prove(overflow-bounds)
pub fn pack(deadline: i64) -> u128 {
    let biased = (deadline as u128) << 80;
    biased
}
";
        let got = findings(src);
        assert!(got.iter().any(|f| f.message.contains("<<")), "{got:?}");
    }

    #[test]
    fn clamp_and_rem_euclid_bound_results() {
        let src = "
const RING: i64 = 512;
// audit: prove(overflow-bounds)
pub fn bucket_of(slot: i64) -> u32 {
    let b = slot.rem_euclid(RING);
    b as u32
}
// audit: prove(overflow-bounds)
pub fn clamped(x: i64) -> i64 {
    x.clamp(-100, 100) * 1000
}
";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn zero_divisor_and_unsigned_underflow_are_flagged() {
        let src = "
// audit: prove(overflow-bounds)
pub fn f(a: u64, b: u64) -> u64 {
    let d = a / b;
    a - b
}
";
        let got = findings(src);
        assert!(
            got.iter()
                .any(|f| f.message.contains("divisor may be zero")),
            "{got:?}"
        );
        assert!(
            got.iter().any(|f| f.message.contains("may overflow `u64`")),
            "{got:?}"
        );
    }

    #[test]
    fn assume_contracts_tighten_parameters() {
        let src = "
// audit: prove(overflow-bounds)
// audit: assume(n in 1..=64)
pub fn f(a: u64, n: u64) -> u64 {
    a / n
}
";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn malformed_and_dangling_directives_are_findings() {
        let src = "
// audit: prove(overflow-bounds)
// audit: assume(n in ..)
pub fn f(n: u64) -> u64 { n }
// audit: assume(m in 0..=4)
pub fn unproven(m: u64) -> u64 { m }
// audit: prove(termination)
pub fn g() {}
";
        let got = findings(src);
        assert!(
            got.iter().any(|f| f.message.contains("malformed assume")),
            "{got:?}"
        );
        assert!(
            got.iter()
                .any(|f| f.message.contains("does not precede a prove")),
            "{got:?}"
        );
        assert!(
            got.iter()
                .any(|f| f.message.contains("unknown prove property")),
            "{got:?}"
        );
    }

    #[test]
    fn loops_widen_and_saturating_ops_stay_in_type() {
        let src = "
// audit: prove(overflow-bounds)
pub fn f(xs_len: u64) -> u64 {
    let mut acc: u64 = 0;
    let mut i: u64 = 0;
    while i < xs_len {
        acc = acc.saturating_add(i);
        i = i.saturating_add(1);
    }
    acc
}
";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn compound_assign_overflow_is_flagged() {
        let src = "
// audit: prove(overflow-bounds)
pub fn f(a: i64) -> i64 {
    let mut x = a;
    x += 1;
    x
}
";
        let got = findings(src);
        assert!(
            got.iter().any(|f| f.message.contains("may overflow `i64`")),
            "{got:?}"
        );
    }
}
