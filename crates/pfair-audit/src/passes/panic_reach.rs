//! Pass 1: panic-reachability over the workspace call graph.
//!
//! The scheduling core's entry points (configured as
//! `entry-points = [..]` under `[lint.panic-reach]` in `audit.toml`)
//! must not *transitively* reach a panic source: a panic-family macro,
//! `.unwrap()`/`.expect()`, an unchecked `[..]` index, or a
//! division/remainder whose divisor is not provably nonzero. The call
//! graph over-approximates edges (see [`crate::callgraph`]), so a
//! clean result is a proof relative to the modeled sources, while each
//! reported site may be a false positive — survivors are discharged
//! with a typed `// audit: allow(panic-reach, <reason>)` at the site.
//!
//! Soundness boundary: macro-generated code, trait-object dispatch to
//! methods defined outside the workspace, and panics inside the
//! standard library (beyond the modeled sources) are not seen.
//! Debug-only `debug_assert!` family macros are intentionally *not*
//! sources: the release gate is what runs unattended. Arithmetic
//! overflow panics (debug builds) are covered by the overflow pass.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ast::*;
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lints::PANIC_REACH;
use crate::passes::Workspace;
use crate::Finding;

/// Macros whose expansion unconditionally panics when reached.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Methods that panic on the error/none variant.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Resolution and verdict for one configured entry point.
#[derive(Clone, Debug)]
pub struct EntryStatus {
    /// The spec as written in `audit.toml`.
    pub spec: String,
    /// True when the spec resolved to at least one in-tree function.
    pub resolved: bool,
    /// True when no un-discharged panic source is reachable. (Allows
    /// are discharged by the central driver, so this field reflects
    /// the *raw* analysis; the report layer recomputes it after
    /// discharge.)
    pub panic_free: bool,
    /// Reachable functions, by qualified name — the proof obligation's
    /// extent, surfaced in the JSON report.
    pub reachable: Vec<String>,
}

/// The pass's full output.
#[derive(Debug, Default)]
pub struct PanicReachReport {
    /// One finding per reachable panic source site.
    pub findings: Vec<Finding>,
    /// Per-entry resolution status, in config order.
    pub entry_points: Vec<EntryStatus>,
}

/// Runs the pass. Entry points come from the `panic-reach` lint scope;
/// with none configured the pass is a no-op.
pub fn run(ws: &Workspace, cfg: &Config) -> PanicReachReport {
    let mut report = PanicReachReport::default();
    let specs = match cfg.lints.get(PANIC_REACH) {
        Some(scope) if !scope.entry_points.is_empty() => scope.entry_points.clone(),
        _ => return report,
    };
    let graph = CallGraph::build(&ws.ast_refs());
    let consts = collect_int_consts(ws);
    // `(owner, method)` pairs defined in-tree: `self.expect(..)` on a
    // type with its own `expect` is that method, not `Option::expect`.
    let own_methods: BTreeSet<(String, String)> = graph
        .nodes
        .iter()
        .filter_map(|n| n.owner.clone().map(|o| (o, n.name.clone())))
        .collect();

    // Panic sources per node, computed once.
    let mut sources: Vec<Vec<(u32, String)>> = Vec::with_capacity(graph.nodes.len());
    let mut bodies: BTreeMap<(String, u32), &FnItem> = BTreeMap::new();
    for file in &ws.files {
        index_fn_bodies(&file.path, &file.ast.items, &mut bodies);
    }
    for node in &graph.nodes {
        let sites = bodies
            .get(&(node.path.clone(), node.line))
            .and_then(|f| f.body.as_ref())
            .map(|b| panic_sites(b, &consts, node.owner.as_deref(), &own_methods))
            .unwrap_or_default();
        sources.push(sites);
    }

    // Per-entry BFS with a parent map for witness chains; findings are
    // deduplicated per source site across entries (the first entry to
    // reach a site names it).
    let mut reported: BTreeSet<(usize, u32)> = BTreeSet::new();
    for spec in specs {
        let roots = resolve_spec(&graph, &spec);
        if roots.is_empty() {
            report.findings.push(Finding {
                path: "audit.toml".to_string(),
                line: 0,
                lint: PANIC_REACH.to_string(),
                message: format!("entry point `{spec}` does not resolve to any workspace function"),
            });
            report.entry_points.push(EntryStatus {
                spec,
                resolved: false,
                panic_free: false,
                reachable: Vec::new(),
            });
            continue;
        }
        let (reach, parent) = bfs(&graph, &roots);
        let mut panic_free = true;
        for &idx in &reach {
            if sources[idx].is_empty() {
                continue;
            }
            panic_free = false;
            let chain = witness_chain(&graph, &parent, idx);
            for (line, desc) in &sources[idx] {
                if !reported.insert((idx, *line)) {
                    continue;
                }
                report.findings.push(Finding {
                    path: graph.nodes[idx].path.clone(),
                    line: *line,
                    lint: PANIC_REACH.to_string(),
                    message: format!("{desc} reachable from entry `{spec}` via {chain}"),
                });
            }
        }
        let mut reachable: Vec<String> =
            reach.iter().map(|&i| graph.nodes[i].qualified()).collect();
        reachable.sort();
        reachable.dedup();
        report.entry_points.push(EntryStatus {
            spec,
            resolved: true,
            panic_free,
            reachable,
        });
    }
    report.findings.sort();
    report
}

/// `Type::*` expands to every method of `Type`; otherwise the spec is
/// a qualified or free-function name.
fn resolve_spec(graph: &CallGraph, spec: &str) -> Vec<usize> {
    if let Some(ty) = spec.strip_suffix("::*") {
        let mut v: Vec<usize> = graph
            .methods_of(ty)
            .into_iter()
            .filter(|&i| !graph.nodes[i].in_test)
            .collect();
        v.sort_unstable();
        return v;
    }
    graph
        .resolve_qualified(spec)
        .filter(|&i| !graph.nodes[i].in_test)
        .into_iter()
        .collect()
}

/// Breadth-first closure over callees, skipping test-only nodes;
/// returns the reached set and each node's BFS predecessor.
fn bfs(graph: &CallGraph, roots: &[usize]) -> (BTreeSet<usize>, BTreeMap<usize, usize>) {
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut parent = BTreeMap::new();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    while let Some(i) = queue.pop_front() {
        for &j in &graph.nodes[i].callees {
            if graph.nodes[j].in_test || !seen.insert(j) {
                continue;
            }
            parent.insert(j, i);
            queue.push_back(j);
        }
    }
    (seen, parent)
}

/// `entry -> a -> b` call chain ending at `idx`.
fn witness_chain(graph: &CallGraph, parent: &BTreeMap<usize, usize>, idx: usize) -> String {
    let mut names = vec![graph.nodes[idx].qualified()];
    let mut cur = idx;
    while let Some(&p) = parent.get(&cur) {
        names.push(graph.nodes[p].qualified());
        cur = p;
        if names.len() > 24 {
            names.push("..".to_string());
            break;
        }
    }
    names.reverse();
    names.join(" -> ")
}

/// Workspace `const NAME: <int> = <literal>;` values, for proving
/// divisors nonzero.
fn collect_int_consts(ws: &Workspace) -> BTreeMap<String, i128> {
    let mut out = BTreeMap::new();
    for file in &ws.files {
        collect_consts_in(&file.ast.items, &mut out);
    }
    out
}

fn collect_consts_in(items: &[Item], out: &mut BTreeMap<String, i128>) {
    for item in items {
        match &item.kind {
            ItemKind::Const {
                name,
                value: Some(e),
                ..
            } => {
                if let Some(v) = const_value(e, out) {
                    out.insert(name.clone(), v);
                }
            }
            ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Mod {
                items: Some(items), ..
            } => collect_consts_in(items, out),
            _ => {}
        }
    }
}

/// Evaluates simple constant expressions (literals, negation, shifts,
/// already-seen const names).
fn const_value(e: &Expr, env: &BTreeMap<String, i128>) -> Option<i128> {
    match &e.kind {
        ExprKind::Int { value, .. } => *value,
        ExprKind::Path(segs) => env.get(segs.last()?).copied(),
        ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => const_value(expr, env)?.checked_neg(),
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (const_value(lhs, env)?, const_value(rhs, env)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Shl => a.checked_shl(u32::try_from(b).ok()?),
                _ => None,
            }
        }
        ExprKind::Cast { expr, .. } => const_value(expr, env),
        ExprKind::Tuple(items) if items.len() == 1 => const_value(&items[0], env),
        _ => None,
    }
}

/// All panic source sites in a function body, as `(line, description)`.
fn panic_sites(
    body: &Block,
    consts: &BTreeMap<String, i128>,
    self_ty: Option<&str>,
    own_methods: &BTreeSet<(String, String)>,
) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    walk_block(body, &mut |e| match &e.kind {
        ExprKind::Macro { name, .. } if PANIC_MACROS.contains(&name.as_str()) => {
            out.push((e.line, format!("`{name}!` macro")));
        }
        ExprKind::MethodCall { recv, name, .. } if PANIC_METHODS.contains(&name.as_str()) => {
            // `self.expect(..)` where the owning type defines its own
            // `expect` is that method (its body is analyzed on its
            // own), not the panicking `Option`/`Result` adapter.
            let shadowed = self_ty.is_some_and(|ty| {
                matches!(&recv.kind, ExprKind::Path(segs) if segs.as_slice() == ["self"])
                    && own_methods.contains(&(ty.to_string(), name.clone()))
            });
            if !shadowed {
                out.push((e.line, format!("`.{name}()` call")));
            }
        }
        ExprKind::Index { .. } => {
            out.push((e.line, "unchecked `[..]` index".to_string()));
        }
        ExprKind::Binary {
            op: op @ (BinOp::Div | BinOp::Rem),
            rhs,
            ..
        } if !provably_nonzero(rhs, consts) => {
            let sym = if *op == BinOp::Div { "/" } else { "%" };
            out.push((e.line, format!("`{sym}` with unproven-nonzero divisor")));
        }
        ExprKind::Assign {
            op: Some(BinOp::Div | BinOp::Rem),
            rhs,
            ..
        } if !provably_nonzero(rhs, consts) => {
            out.push((
                e.line,
                "compound divide with unproven-nonzero divisor".to_string(),
            ));
        }
        _ => {}
    });
    out.sort();
    out.dedup();
    out
}

/// Conservative nonzero proof for a divisor expression.
fn provably_nonzero(e: &Expr, consts: &BTreeMap<String, i128>) -> bool {
    match &e.kind {
        ExprKind::Int { value, .. } => value.is_some_and(|v| v != 0),
        ExprKind::Path(segs) => segs
            .last()
            .and_then(|n| consts.get(n))
            .is_some_and(|v| *v != 0),
        ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => provably_nonzero(expr, consts),
        ExprKind::Cast { expr, ty } => {
            // A nonzero value stays nonzero through a widening cast;
            // narrowing can truncate to zero, so require >= 64 bits.
            int_type_bits(&ty.head).is_some_and(|(bits, _)| bits >= 64)
                && provably_nonzero(expr, consts)
        }
        ExprKind::Tuple(items) if items.len() == 1 => provably_nonzero(&items[0], consts),
        // `x.max(k)` with k nonzero-positive, the idiomatic guard.
        ExprKind::MethodCall { name, args, .. } if name == "max" && args.len() == 1 => {
            positive(&args[0], consts)
        }
        // `1 << k`: nonzero for literal in-range shifts; the overflow
        // pass owns the general range question.
        ExprKind::Binary {
            op: BinOp::Shl,
            lhs,
            rhs,
        } => matches!(
            (&lhs.kind, &rhs.kind),
            (ExprKind::Int { value: Some(a), .. }, ExprKind::Int { value: Some(b), .. })
                if *a != 0 && (0..127).contains(b)
        ),
        _ => false,
    }
}

fn positive(e: &Expr, consts: &BTreeMap<String, i128>) -> bool {
    match &e.kind {
        ExprKind::Int { value, .. } => value.is_some_and(|v| v > 0),
        ExprKind::Path(segs) => segs
            .last()
            .and_then(|n| consts.get(n))
            .is_some_and(|v| *v > 0),
        _ => false,
    }
}

/// Indexes every function body by `(path, item line)` so graph nodes
/// map back to their ASTs.
fn index_fn_bodies<'a>(
    path: &str,
    items: &'a [Item],
    out: &mut BTreeMap<(String, u32), &'a FnItem>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => {
                out.insert((path.to_string(), item.line), f);
            }
            ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Mod {
                items: Some(items), ..
            } => index_fn_bodies(path, items, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![analyze_source("src/lib.rs", src)],
        }
    }

    fn cfg(entries: &[&str]) -> Config {
        let mut cfg = Config::default();
        let scope = cfg.lints.entry(PANIC_REACH.to_string()).or_default();
        scope.entry_points = entries
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        cfg
    }

    #[test]
    fn transitive_unwrap_is_reported_with_a_chain() {
        let src = "
pub struct Engine;
impl Engine {
    pub fn run(&self) { helper(); }
}
fn helper() { deep(); }
fn deep(x: Option<u32>) { x.unwrap(); }
";
        let report = run(&ws(src), &cfg(&["Engine::run"]));
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert!(f.message.contains("`.unwrap()`"), "{}", f.message);
        assert!(
            f.message.contains("Engine::run -> helper -> deep"),
            "{}",
            f.message
        );
        assert!(!report.entry_points[0].panic_free);
    }

    #[test]
    fn panic_free_entry_is_proven() {
        let src = "
pub struct Engine;
impl Engine {
    pub fn run(&self) -> Option<u32> { helper() }
}
fn helper() -> Option<u32> { Some(5 / 5) }
fn unrelated() { panic!(\"not reachable\"); }
";
        let report = run(&ws(src), &cfg(&["Engine::run"]));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.entry_points[0].panic_free);
        assert!(report.entry_points[0]
            .reachable
            .contains(&"helper".to_string()));
    }

    #[test]
    fn wildcard_and_unresolved_entries() {
        let src = "
pub struct Q;
impl Q {
    pub fn push(&self) { let _ = self.items[0]; }
    pub fn pop(&self) {}
}
";
        let report = run(&ws(src), &cfg(&["Q::*", "Ghost::run"]));
        assert_eq!(report.entry_points.len(), 2);
        assert!(report.entry_points[0].resolved);
        assert!(!report.entry_points[0].panic_free);
        assert!(!report.entry_points[1].resolved);
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("does not resolve")));
        assert!(report
            .findings
            .iter()
            .any(|f| f.message.contains("unchecked `[..]` index")));
    }

    #[test]
    fn nonzero_divisors_are_proven_safe() {
        let src = "
const QUANTUM: u64 = 512;
pub fn entry(t: u64, n: u64) -> u64 {
    let a = t / QUANTUM;
    let b = t % 8;
    let c = t / n.max(1);
    a + b + c + t / n
}
";
        let report = run(&ws(src), &cfg(&["entry"]));
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("`/`"));
    }

    #[test]
    fn own_expect_method_is_not_a_panic_source() {
        let src = "
pub struct P;
impl P {
    pub fn parse(&mut self) -> Result<(), E> { self.expect(b'[') }
    fn expect(&mut self, b: u8) -> Result<(), E> { Ok(()) }
}
";
        let report = run(&ws(src), &cfg(&["P::parse"]));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.entry_points[0].panic_free);
    }

    #[test]
    fn test_code_is_not_traversed() {
        let src = "
pub fn entry() { shared(); }
fn shared() {}
#[cfg(test)]
mod tests {
    fn t() { super::shared(); panic!(\"test only\"); }
}
";
        let report = run(&ws(src), &cfg(&["entry"]));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.entry_points[0].panic_free);
    }
}
