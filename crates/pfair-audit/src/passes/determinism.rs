//! Pass 2: determinism dataflow.
//!
//! The PD² tie-break chain and the trace/metrics probes must be
//! bit-reproducible across runs: the paper's accuracy comparisons
//! (drift under Efficient vs. Accurate reweighting) are only
//! meaningful when two runs of the same task system produce identical
//! schedules. This pass flags the nondeterminism *sources* Rust makes
//! easy to reach for — the dataflow property "no such value reaches a
//! scheduling decision or probe output" is enforced by containment:
//! scoped paths (the scheduling crates) may not contain the sources at
//! all, which over-approximates the flow-sensitive property without a
//! points-to analysis.
//!
//! Sources:
//! - `HashMap`/`HashSet` (iteration order is randomized per-process),
//!   whether imported, named in a type position, or constructed;
//! - wall-clock reads: `Instant::now`, `SystemTime::now`;
//! - thread identity: `thread::current`, `ThreadId`;
//! - pointer-to-integer casts (`p.as_ptr() as usize` — address-space
//!   layout leaks into values).
//!
//! `BTreeMap`/`BTreeSet`/`Vec` and logical clocks are the sanctioned
//! replacements; justified residues carry
//! `// audit: allow(nondeterminism, <reason>)`.

use crate::ast::*;
use crate::config::Config;
use crate::lints::NONDETERMINISM;
use crate::passes::Workspace;
use crate::Finding;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Runs the pass over every file the `nondeterminism` lint scopes.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.lint_applies(NONDETERMINISM, &file.path) {
            continue;
        }
        let mut sink = |line: u32, message: String| {
            out.push(Finding {
                path: file.path.clone(),
                line,
                lint: NONDETERMINISM.to_string(),
                message,
            });
        };
        for item in &file.ast.items {
            scan_item(item, false, &mut sink);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn scan_item(item: &Item, in_test: bool, sink: &mut impl FnMut(u32, String)) {
    let in_test = in_test || item.in_test;
    if in_test {
        return; // test code may hash and clock freely
    }
    match &item.kind {
        ItemKind::Use { paths } => {
            for path in paths {
                if let Some(seg) = path.iter().find(|s| HASH_TYPES.contains(&s.as_str())) {
                    sink(
                        item.line,
                        format!(
                            "`{seg}` imported in scheduling code: iteration order is \
                             per-process random; use BTreeMap/BTreeSet"
                        ),
                    );
                }
            }
        }
        ItemKind::Struct { fields, .. } => {
            for (name, ty) in fields {
                scan_type(ty, item.line, &format!("field `{name}`"), sink);
            }
        }
        ItemKind::Fn(f) => {
            for p in &f.params {
                let what = match &p.name {
                    Some(n) => format!("parameter `{n}`"),
                    None => "parameter".to_string(),
                };
                scan_type(&p.ty, item.line, &what, sink);
            }
            if let Some(ret) = &f.ret {
                scan_type(ret, item.line, "return type", sink);
            }
            if let Some(body) = &f.body {
                walk_block(body, &mut |e| scan_expr(e, sink));
            }
        }
        ItemKind::Const { ty, value, .. } => {
            scan_type(ty, item.line, "const", sink);
            if let Some(e) = value {
                walk_expr(e, &mut |e| scan_expr(e, sink));
            }
        }
        ItemKind::TypeAlias { ty, .. } => scan_type(ty, item.line, "type alias", sink),
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for it in items {
                scan_item(it, in_test, sink);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for it in items {
                scan_item(it, in_test, sink);
            }
        }
        _ => {}
    }
}

fn scan_type(ty: &TypeRef, line: u32, what: &str, sink: &mut impl FnMut(u32, String)) {
    if HASH_TYPES.contains(&ty.head.as_str()) {
        sink(
            line,
            format!(
                "{what} is `{}`: iteration order is per-process random; \
                 use BTreeMap/BTreeSet",
                ty.head
            ),
        );
    }
    if ty.head == "ThreadId" {
        sink(
            line,
            format!("{what} is `ThreadId`: thread identity is nondeterministic"),
        );
    }
    for arg in &ty.args {
        scan_type(arg, line, what, sink);
    }
}

fn scan_expr(e: &Expr, sink: &mut impl FnMut(u32, String)) {
    match &e.kind {
        ExprKind::Path(segs) => {
            let last = segs.last().map_or("", String::as_str);
            let prev = segs.len().checked_sub(2).map_or("", |i| segs[i].as_str());
            if last == "now" && (prev == "Instant" || prev == "SystemTime") {
                sink(
                    e.line,
                    format!(
                        "`{prev}::now()` in scheduling code: wall-clock reads are \
                         nondeterministic; drive time from the slot counter"
                    ),
                );
            }
            if last == "current" && prev == "thread" {
                sink(
                    e.line,
                    "`thread::current()` in scheduling code: thread identity is \
                     nondeterministic"
                        .to_string(),
                );
            }
            if HASH_TYPES.contains(&prev) {
                sink(
                    e.line,
                    format!(
                        "`{prev}::{last}` constructs a hash collection: iteration \
                         order is per-process random; use BTreeMap/BTreeSet"
                    ),
                );
            }
        }
        ExprKind::Cast { expr, ty } if ty.is_int() && casts_pointer(expr) => {
            sink(
                e.line,
                format!(
                    "pointer-to-`{}` cast: addresses vary per run and must not \
                     flow into scheduling state",
                    ty.head
                ),
            );
        }
        _ => {}
    }
}

/// True when the cast source is pointer-derived: `.as_ptr()` /
/// `.as_mut_ptr()`, a raw-pointer-typed cast, or a reference being
/// reinterpreted through a chain of casts.
fn casts_pointer(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::MethodCall { name, .. } => name == "as_ptr" || name == "as_mut_ptr",
        ExprKind::Cast { expr, ty } => ty.raw_ptr || casts_pointer(expr),
        ExprKind::Unary {
            op: UnOp::Ref | UnOp::Deref,
            expr,
        } => casts_pointer(expr),
        ExprKind::Tuple(items) if items.len() == 1 => casts_pointer(&items[0]),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze_source;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![analyze_source("crates/s/src/lib.rs", src)],
        };
        let mut cfg = Config::default();
        cfg.lints.entry(NONDETERMINISM.to_string()).or_default();
        run(&ws, &cfg)
    }

    #[test]
    fn hash_collections_are_flagged_everywhere() {
        let src = "
use std::collections::HashMap;
pub struct S { m: HashMap<u32, u32> }
pub fn f() { let m = HashMap::new(); }
";
        let got = findings(src);
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got.iter().all(|f| f.message.contains("BTreeMap")));
    }

    #[test]
    fn clocks_threads_and_pointer_casts_are_flagged() {
        let src = "
pub fn f(v: &[u8]) -> usize {
    let t = Instant::now();
    let id = std::thread::current();
    v.as_ptr() as usize
}
";
        let got = findings(src);
        let msgs: Vec<&str> = got.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("Instant::now")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("thread::current")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("pointer-to-`usize`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn btree_and_test_code_are_clean() {
        let src = "
use std::collections::BTreeMap;
pub struct S { m: BTreeMap<u32, u32> }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let m = HashMap::new(); }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn int_casts_of_values_are_not_pointer_casts() {
        let src = "pub fn f(x: u32) -> usize { x as usize }";
        assert!(findings(src).is_empty());
    }
}
