//! Deterministic scoped-thread fan-out over independent jobs.
//!
//! Promoted here from the experiment harness so library code — the
//! shard supervisor in `pfair-sched` in particular — can fan work
//! across a hand-rolled worker pool built on `std::thread::scope` (the
//! workspace is offline, so no rayon) and get results **in input
//! order**, byte-identical to a serial `map`. Determinism is by
//! construction, not by luck:
//!
//! * work is claimed by atomic index, so scheduling order varies, but
//!   each result is stored at its item's index;
//! * the merged vector is sorted by index before being returned;
//! * with one worker (or one item) the pool is bypassed entirely and
//!   the closure runs on the calling thread, serially.
//!
//! The default worker count comes from the `PFAIR_THREADS` environment
//! variable, falling back to the machine's available parallelism;
//! callers with their own policy (CLI overrides, shard specs) pass an
//! explicit count to [`par_map_threads`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable naming the worker-thread count.
pub const THREADS_ENV: &str = "PFAIR_THREADS";

/// Resolves the default worker-thread count: `PFAIR_THREADS`, then the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on the default-width worker pool, returning
/// results in input order (identical to `items.into_iter().map(f)`).
///
/// Panics in `f` are propagated to the caller, as they would be
/// serially — a failed assertion inside one run still aborts the sweep.
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    par_map_threads(default_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (the determinism tests
/// compare pools of different widths; the shard supervisor threads its
/// spec's width through here).
pub fn par_map_threads<I, O, F>(threads: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Ownership of each item moves to whichever worker claims its
    // index; a Mutex<Option<I>> per slot transfers it without unsafe.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, O)> = Vec::with_capacity(n);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        let item = slots[i]
                            .lock()
                            // audit: allow(panic, a poisoned slot means a sibling worker already panicked; that panic is re-raised to the caller, so this is never the first failure)
                            .expect("a worker panicked while claiming an item")
                            .take()
                            // audit: allow(panic, the atomic counter hands each index to exactly one worker)
                            .expect("each index is claimed exactly once");
                        local.push((i, f(item)));
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => tagged.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Restore input order: each result carries its item's index.
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 4, 7] {
            let got = par_map_threads(workers, items.clone(), |x| x * x + 1);
            assert_eq!(got, expected, "order broken at {workers} workers");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_threads(4, empty, |x| x).is_empty());
        assert_eq!(par_map_threads(4, vec![9u64], |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_count_never_exceeds_item_count() {
        // 100 workers over 3 items must still produce all 3 results.
        let got = par_map_threads(100, vec![1u64, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }
}
