//! Subtask window arithmetic: releases, deadlines, and b-bits.
//!
//! For a periodic/IS task of weight `w`, subtask `T_i` has
//!
//! ```text
//! r(T_i) = θ(T_i) + ⌊(i−1)/w⌋        (pseudo-release)
//! d(T_i) = θ(T_i) + ⌈i/w⌉            (pseudo-deadline)
//! b(T_i) = ⌈i/w⌉ − ⌊i/w⌋             (tie-breaking bit)
//! ```
//!
//! and the *window* `w(T_i) = [r(T_i), d(T_i))` is the interval in which
//! `T_i` must be scheduled to keep each task's allocation error under one
//! quantum (paper §2).
//!
//! In the adaptable (AIS) model, windows are computed relative to the
//! current *era*: when a weight change is enacted, releases/deadlines of
//! subsequent subtasks are those of a fresh task with the new weight
//! joining at the enactment (paper Eqns (2)–(4), with `z = Id(T_j) − 1`).
//! [`window_in_era`] implements exactly that: given the within-era rank
//! `k = j − z ≥ 1`, the era's scheduling weight, and the subtask's actual
//! release slot, it produces the deadline and b-bit; Eqn (4) — the
//! successor's earliest release `d(T_j) − b(T_j)` — falls out via
//! [`SubtaskWindow::next_release`].
//!
//! ```
//! use pfair_core::{rat, Weight};
//! use pfair_core::window::periodic_window;
//!
//! // Fig. 1(a): weight 5/16, T_2's window is [3, 7).
//! let w = Weight::new(rat(5, 16));
//! let t2 = periodic_window(w, 2, 0);
//! assert_eq!((t2.release, t2.deadline, t2.b), (3, 7, true));
//! assert_eq!(t2.next_release(), 6); // r(T_3) = d(T_2) − b(T_2)
//! ```

use crate::rational::Rational;
use crate::time::{slot_from_i128, Slot, SlotRange};
use crate::weight::Weight;

/// A concrete subtask window: release, deadline, and b-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SubtaskWindow {
    /// `r(T_i)`: the first slot in which the subtask may be scheduled.
    pub release: Slot,
    /// `d(T_i)`: the subtask must be scheduled in a slot `< deadline`.
    pub deadline: Slot,
    /// `b(T_i)`: 1 iff this subtask's window overlaps its successor's
    /// (in the absence of separations/reweighting). Ties in PD² between
    /// equal deadlines favor `b = 1`.
    pub b: bool,
}

impl pfair_json::ToJson for SubtaskWindow {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("release", self.release.to_json()),
            ("deadline", self.deadline.to_json()),
            ("b", self.b.to_json()),
        ])
    }
}

impl pfair_json::FromJson for SubtaskWindow {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        Ok(SubtaskWindow {
            release: value.field("release")?,
            deadline: value.field("deadline")?,
            b: value.field("b")?,
        })
    }
}

impl SubtaskWindow {
    /// The window as a slot range `[r, d)`.
    #[inline]
    pub fn range(&self) -> SlotRange {
        SlotRange::new(self.release, self.deadline)
    }

    /// Window length `d − r` in slots (always ≥ 1; windows are never
    /// empty, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> i64 {
        self.deadline - self.release
    }

    /// The earliest release of the successor subtask in the absence of
    /// IS separations and reweighting: `d(T_i) − b(T_i)` (Eqn (4) with
    /// `θ(T_{i+1}) = θ(T_i)`).
    #[inline]
    pub fn next_release(&self) -> Slot {
        self.deadline - if self.b { 1 } else { 0 }
    }
}

/// `b(T)` for the `k`-th subtask of a (virtual) task of weight `w`:
/// `⌈k/w⌉ − ⌊k/w⌋`, i.e. 1 unless `k/w` is an integer.
#[inline]
pub fn b_bit(weight: Weight, k: u64) -> bool {
    let w: Rational = weight.value();
    w.div_ceil_int(i128::from(k)) != w.div_floor_int(i128::from(k))
}

/// Window *length* of the `k`-th subtask of a task of weight `w`:
/// `⌈k/w⌉ − ⌊(k−1)/w⌋` (the bracketed term of Eqn (2)).
#[inline]
pub fn window_len(weight: Weight, k: u64) -> i64 {
    let w: Rational = weight.value();
    slot_from_i128(w.div_ceil_int(i128::from(k)) - w.div_floor_int(i128::from(k) - 1))
}

/// Window of the `k`-th subtask (within-era rank, 1-based) of an era with
/// scheduling weight `weight`, given the subtask's actual release slot.
///
/// This is Eqns (2) and (3) of the paper: the deadline is the release
/// plus the rank-`k` window length, and the b-bit depends only on the
/// rank and the era weight.
#[inline]
pub fn window_in_era(weight: Weight, k: u64, release: Slot) -> SubtaskWindow {
    debug_assert!(k >= 1, "within-era ranks are 1-based");
    SubtaskWindow {
        release,
        deadline: release + window_len(weight, k),
        b: b_bit(weight, k),
    }
}

/// Window of subtask `T_i` of a periodic task of weight `w` that joined
/// at time `join_at` with no separations: `r = join_at + ⌊(i−1)/w⌋`,
/// `d = join_at + ⌈i/w⌉` (paper §2).
#[inline]
pub fn periodic_window(weight: Weight, i: u64, join_at: Slot) -> SubtaskWindow {
    let w: Rational = weight.value();
    let release = join_at + slot_from_i128(w.div_floor_int(i128::from(i) - 1));
    SubtaskWindow {
        release,
        deadline: join_at + slot_from_i128(w.div_ceil_int(i128::from(i))),
        b: b_bit(weight, i),
    }
}

/// All windows of the first `n` subtasks of a periodic task (test and
/// visualization helper).
pub fn periodic_windows(weight: Weight, n: u64, join_at: Slot) -> Vec<SubtaskWindow> {
    (1..=n)
        .map(|i| periodic_window(weight, i, join_at))
        .collect()
}

/// The PD² *group deadline* `D(T_i)` of the rank-`k` subtask of an era
/// of (heavy) weight `w > 1/2` whose rank-`k` subtask is released at
/// `release`.
///
/// Successive windows of a heavy task are only 2 or 3 slots long, so
/// scheduling a subtask in its final slot can force a cascade of
/// squeezed successors. The cascade is absorbed at the first length-3
/// window or the first `b = 0` boundary; formally, `D(T_i)` is the
/// earliest time `t ≥ d(T_i)` such that for some `j ≥ i` either
/// `t = d(T_j) − 1` and `T_j`'s window has length 3, or `t = d(T_j)`
/// and `b(T_j) = 0` (Anderson & Srinivasan's PD² tie-break, paper §2's
/// deferred second rule). Among equal-deadline, `b = 1` subtasks, the
/// one with the *later* group deadline is favored.
///
/// For light weights (`w ≤ 1/2`) group deadlines play no role; this
/// function returns the subtask deadline itself, which compares
/// neutrally.
pub fn group_deadline(weight: Weight, k: u64, release: Slot) -> Slot {
    let win = window_in_era(weight, k, release);
    if weight.is_light() {
        return win.deadline;
    }
    // Walk successors of the same (virtual, fresh) heavy task, taking
    // the first absorbing boundary at or after d(T_i). The walk
    // terminates within one period: b = 0 at the rank where k/w is an
    // integer, at the latest.
    let d_i = win.deadline;
    let mut rank = k;
    let mut w = win;
    loop {
        if w.len() >= 3 && w.deadline > d_i {
            return w.deadline - 1;
        }
        if !w.b && w.deadline >= d_i {
            return w.deadline;
        }
        rank += 1;
        w = window_in_era(weight, rank, w.next_release());
    }
}

/// Memoized per-era window arithmetic for one scheduling weight.
///
/// Within an era every window is determined by the era's scheduling
/// weight `w = n/d` and the subtask's within-era rank `k`: the window
/// *length* and b-bit (Eqns (2)–(3)) and the group-deadline *offset*
/// `D(T_i) − r(T_i)` are all invariant under translating the release
/// slot, and periodic in `k` with period `n` (after `n` subtasks the
/// window pattern repeats `d` slots later). The engine releases one
/// subtask per task per window, so caching the per-rank triple removes
/// the rational `⌈·⌉`/`⌊·⌋` arithmetic — and for heavy weights the
/// whole group-deadline successor walk — from steady-state releases.
///
/// Construct once per era (the cache carries its weight, so a stale
/// cache is detected by comparing [`WindowCache::weight`]) and query
/// with [`WindowCache::window_and_group_deadline`].
#[derive(Clone, Debug)]
pub struct WindowCache {
    weight: Weight,
    /// Rank period: the weight's numerator (ranks repeat modulo this),
    /// or 0 when the numerator exceeds [`WindowCache::MEMO_CAP`] and
    /// memoization is bypassed.
    period: usize,
    /// `memo[(k − 1) mod period]` = (window length, b-bit, group
    /// deadline − release), filled lazily.
    memo: Vec<Option<(i64, bool, i64)>>,
}

impl WindowCache {
    /// Largest numerator for which per-rank memoization is attempted;
    /// weights with longer rank periods fall back to direct
    /// computation. The cap is deliberately small: a cache is rebuilt
    /// on every weight change, so under sustained reweighting (where
    /// eras last only a handful of releases) a large-numerator memo
    /// would be paid for — one `O(numerator)` allocation per enactment
    /// — and never filled, let alone hit twice. Small numerators cover
    /// the weights that actually stay stable (1/d sporadic-style tasks,
    /// m/(2n) uniform fixtures) at a per-era cost of ≤ ~1.5 KiB.
    pub const MEMO_CAP: usize = 64;

    /// An empty cache for one era's scheduling weight.
    pub fn new(weight: Weight) -> WindowCache {
        let numer = weight.value().numer();
        let period = usize::try_from(numer)
            .ok()
            .filter(|n| (1..=Self::MEMO_CAP).contains(n))
            .unwrap_or(0);
        WindowCache {
            weight,
            period,
            memo: vec![None; period],
        }
    }

    /// The weight this cache was built for.
    pub fn weight(&self) -> Weight {
        self.weight
    }

    fn triple(&mut self, k: u64) -> (i64, bool, i64) {
        debug_assert!(k >= 1, "within-era ranks are 1-based");
        let slot = match u64::try_from(self.period) {
            Ok(p) if p >= 1 => usize::try_from((k - 1) % p).ok(), // audit: allow(panic-reach, guarded by the p >= 1 match arm)
            _ => None,
        };
        if let Some(i) = slot {
            // audit: allow(panic-reach, memo index is (k-1) mod period, within the table by construction)
            if let Some(t) = self.memo[i] {
                return t;
            }
        }
        let win = window_in_era(self.weight, k, 0);
        let gd = group_deadline(self.weight, k, 0);
        let t = (win.len(), win.b, gd);
        if let Some(i) = slot {
            self.memo[i] = Some(t); // audit: allow(panic-reach, memo index is (k-1) mod period, within the table by construction)
        }
        t
    }

    /// Cached equivalent of [`window_in_era`].
    pub fn window(&mut self, k: u64, release: Slot) -> SubtaskWindow {
        let (len, b, _) = self.triple(k);
        SubtaskWindow {
            release,
            deadline: release + len,
            b,
        }
    }

    /// Cached equivalent of `(window_in_era(..), group_deadline(..))`.
    pub fn window_and_group_deadline(&mut self, k: u64, release: Slot) -> (SubtaskWindow, Slot) {
        let (len, b, gd_off) = self.triple(k);
        (
            SubtaskWindow {
                release,
                deadline: release + len,
                b,
            },
            release + gd_off,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn w(n: i128, d: i128) -> Weight {
        Weight::new(rat(n, d))
    }

    /// Fig. 1(a): periodic task of weight 5/16.
    #[test]
    fn fig1a_periodic_windows_weight_5_16() {
        let wt = w(5, 16);
        // T_1 window [0,4), T_2 window [3,7) (r(T_2)=3, d(T_2)=7).
        let t1 = periodic_window(wt, 1, 0);
        assert_eq!((t1.release, t1.deadline), (0, 4));
        let t2 = periodic_window(wt, 2, 0);
        assert_eq!((t2.release, t2.deadline), (3, 7));
        // b(T_i) = 1 for 1 ≤ i ≤ 4 and b(T_5) = 0.
        for i in 1..=4 {
            assert!(b_bit(wt, i), "b(T_{i}) should be 1");
        }
        assert!(!b_bit(wt, 5));
        // r(T_2) = d(T_1) − b(T_1) = 4 − 1 = 3.
        assert_eq!(t1.next_release(), 3);
        // r(T_6) = d(T_5) − b(T_5) = 16 − 0 = 16.
        let t5 = periodic_window(wt, 5, 0);
        assert_eq!(t5.deadline, 16);
        assert_eq!(t5.next_release(), 16);
        let t6 = periodic_window(wt, 6, 0);
        assert_eq!(t6.release, 16);
    }

    /// Fig. 1(b): IS task of weight 5/16, T_2 delayed by 2, T_3.. by 3.
    /// Releases and deadlines shift by the offsets.
    #[test]
    fn fig1b_is_offsets_shift_windows() {
        let wt = w(5, 16);
        // With θ(T_2)=2: r(T_2) = 2 + ⌊1/(5/16)⌋ = 5, d(T_2) = 2 + ⌈2/(5/16)⌉ = 9.
        let r2 = 2 + rat(5, 16).div_floor_int(1);
        let d2 = 2 + rat(5, 16).div_ceil_int(2);
        assert_eq!((r2, d2), (5, 9));
        // Chain form: T_2's window via window_in_era at rank 2, release 5,
        // must give the same deadline.
        let t2 = window_in_era(wt, 2, 5);
        assert_eq!(t2.deadline, 9);
    }

    /// Era-relative windows equal fresh-task windows (the paper's
    /// observation that after an enactment, T_3–T_5 of Fig. 3(a) look
    /// like U_1–U_3 of a weight-2/5 task, Fig. 3(c)).
    #[test]
    fn era_windows_match_fresh_task() {
        let wt = w(2, 5);
        let join = 10; // era starts at slot 10
        let mut release = join;
        for k in 1..=4u64 {
            let via_era = window_in_era(wt, k, release);
            let fresh = periodic_window(wt, k, join);
            assert_eq!(via_era, fresh, "rank {k}");
            release = via_era.next_release();
        }
    }

    /// Weight 2/5 windows (Fig. 3(c)/Fig. 4 task U): [0,3),[2,5),[5,8)...
    #[test]
    fn weight_2_5_window_sequence() {
        let wt = w(2, 5);
        let ws = periodic_windows(wt, 4, 0);
        assert_eq!((ws[0].release, ws[0].deadline, ws[0].b), (0, 3, true));
        assert_eq!((ws[1].release, ws[1].deadline, ws[1].b), (2, 5, false));
        assert_eq!((ws[2].release, ws[2].deadline, ws[2].b), (5, 8, true));
        assert_eq!((ws[3].release, ws[3].deadline, ws[3].b), (7, 10, false));
    }

    /// Weight 3/19 (task T of Fig. 3(a)): T_1 [0,7) b=1, T_2 [6,13) b=1.
    #[test]
    fn weight_3_19_windows() {
        let wt = w(3, 19);
        let t1 = periodic_window(wt, 1, 0);
        assert_eq!((t1.release, t1.deadline, t1.b), (0, 7, true));
        let t2 = periodic_window(wt, 2, 0);
        assert_eq!((t2.release, t2.deadline, t2.b), (6, 13, true));
    }

    /// Weight 1/10 (Fig. 8 task T): d(T_1) = 10, b(T_1) = 0 — so under
    /// leave/join the task cannot leave before time 10.
    #[test]
    fn weight_1_10_first_window() {
        let wt = w(1, 10);
        let t1 = periodic_window(wt, 1, 0);
        assert_eq!((t1.release, t1.deadline, t1.b), (0, 10, false));
        assert_eq!(t1.next_release(), 10);
    }

    /// A b-bit of 1 forces window length ≥ 3 for weights ≤ 1/2
    /// (used by Lemma 9 in the appendix).
    #[test]
    fn b1_windows_of_light_tasks_are_at_least_3_long() {
        for (n, d) in [
            (1i128, 2i128),
            (2, 5),
            (3, 19),
            (5, 16),
            (3, 20),
            (1, 7),
            (1, 21),
        ] {
            let wt = w(n, d);
            for k in 1..=(2 * d as u64) {
                if b_bit(wt, k) {
                    assert!(
                        window_len(wt, k) >= 3,
                        "weight {}/{} rank {} has b=1 but window length {}",
                        n,
                        d,
                        k,
                        window_len(wt, k)
                    );
                }
            }
        }
    }

    /// Windows of consecutive subtasks overlap by exactly b(T_i) slots.
    #[test]
    fn consecutive_windows_overlap_by_b() {
        for (n, d) in [(1i128, 2i128), (2, 5), (5, 16), (3, 20), (3, 19)] {
            let wt = w(n, d);
            let ws = periodic_windows(wt, 10, 0);
            for i in 0..9 {
                let overlap = ws[i].deadline - ws[i + 1].release;
                assert_eq!(
                    overlap,
                    if ws[i].b { 1 } else { 0 },
                    "weight {}/{} i={}",
                    n,
                    d,
                    i + 1
                );
            }
        }
    }

    /// Within one hyperperiod a weight-e/p task gets exactly e subtask
    /// deadlines at p, and windows tile the hyperperiod.
    #[test]
    fn hyperperiod_window_structure() {
        let wt = w(5, 16);
        let ws = periodic_windows(wt, 5, 0);
        assert_eq!(ws[4].deadline, 16);
        // Next hyperperiod repeats shifted by 16.
        let ws2 = periodic_windows(wt, 10, 0);
        for i in 0..5 {
            assert_eq!(ws2[i + 5].release, ws[i].release + 16);
            assert_eq!(ws2[i + 5].deadline, ws[i].deadline + 16);
            assert_eq!(ws2[i + 5].b, ws[i].b);
        }
    }
}

#[cfg(test)]
mod window_cache_tests {
    use super::*;
    use crate::rational::rat;

    fn w(n: i128, d: i128) -> Weight {
        Weight::new(rat(n, d))
    }

    /// The cache agrees with direct computation for light and heavy
    /// weights, across several rank periods and arbitrary releases.
    #[test]
    fn cache_matches_direct_computation() {
        for (n, d) in [
            (1i128, 2i128),
            (2, 5),
            (5, 16),
            (3, 19),
            (1, 10),
            (8, 11),
            (3, 4),
            (7, 9),
            (11, 12),
            (1, 1),
        ] {
            let wt = w(n, d);
            let mut cache = WindowCache::new(wt);
            let mut release = 17; // arbitrary era start
            for k in 1..=(3 * d as u64 + 2) {
                let (win, gd) = cache.window_and_group_deadline(k, release);
                assert_eq!(win, window_in_era(wt, k, release), "{n}/{d} rank {k}");
                assert_eq!(gd, group_deadline(wt, k, release), "{n}/{d} rank {k}");
                assert_eq!(win, cache.window(k, release));
                release = win.next_release();
            }
        }
    }

    /// Translation invariance: the same rank at two different releases
    /// yields windows and group deadlines shifted by the difference.
    #[test]
    fn cache_is_translation_invariant() {
        let wt = w(8, 11);
        let mut cache = WindowCache::new(wt);
        let (w0, g0) = cache.window_and_group_deadline(3, 0);
        let (w9, g9) = cache.window_and_group_deadline(3, 900);
        assert_eq!(w9.deadline - w0.deadline, 900);
        assert_eq!(g9 - g0, 900);
        assert_eq!(w9.b, w0.b);
    }

    /// A numerator beyond the memo cap bypasses memoization but still
    /// computes correct values.
    #[test]
    fn oversized_numerator_bypasses_memo() {
        let wt = Weight::new(Rational::new(4099, 8209)); // both prime
        let mut cache = WindowCache::new(wt);
        for k in [1u64, 2, 4099, 5000] {
            let win = cache.window(k, 5);
            assert_eq!(win, window_in_era(wt, k, 5), "rank {k}");
        }
    }

    /// The cache records the weight it was built for, so callers can
    /// detect staleness across era changes.
    #[test]
    fn cache_reports_its_weight() {
        let wt = w(2, 5);
        let cache = WindowCache::new(wt);
        assert_eq!(cache.weight().value(), rat(2, 5));
    }
}

#[cfg(test)]
mod group_deadline_tests {
    use super::*;
    use crate::rational::rat;

    fn w(n: i128, d: i128) -> Weight {
        Weight::new(rat(n, d))
    }

    /// Weight 8/11: windows have lengths 2,2,3,2,2,3,2,2 and b = 0 only
    /// at rank 8. Group deadlines follow the cascade-absorption rule.
    #[test]
    fn weight_8_11_group_deadlines() {
        let wt = w(8, 11);
        let ws = periodic_windows(wt, 8, 0);
        let lens: Vec<i64> = ws.iter().map(super::SubtaskWindow::len).collect();
        assert_eq!(lens, vec![2, 2, 3, 2, 2, 3, 2, 2]);
        assert!(!ws[7].b);
        // T_1: d = 2; first absorber at or after 2 is d(T_3) − 1 = 4.
        assert_eq!(group_deadline(wt, 1, ws[0].release), 4);
        // T_2: d = 3; same absorber.
        assert_eq!(group_deadline(wt, 2, ws[1].release), 4);
        // T_3: d = 5 (own length-3 window absorbs only *earlier*
        // cascades); next absorber is d(T_6) − 1 = 8.
        assert_eq!(group_deadline(wt, 3, ws[2].release), 8);
        // T_7: d = 10; absorber is the b = 0 boundary d(T_8) = 11.
        assert_eq!(group_deadline(wt, 7, ws[6].release), 11);
    }

    /// Weight 3/4: windows 2,2,2 then b = 0 at rank 3 (3/(3/4) = 4).
    #[test]
    fn weight_3_4_group_deadlines() {
        let wt = w(3, 4);
        let ws = periodic_windows(wt, 3, 0);
        assert_eq!(
            ws.iter().map(super::SubtaskWindow::len).collect::<Vec<_>>(),
            vec![2, 2, 2]
        );
        assert!(!ws[2].b);
        // All of T_1..T_3 cascade to the b = 0 boundary at d(T_3) = 4.
        assert_eq!(group_deadline(wt, 1, ws[0].release), 4);
        assert_eq!(group_deadline(wt, 2, ws[1].release), 4);
        assert_eq!(group_deadline(wt, 3, ws[2].release), 4);
        // The next group repeats one period later.
        let ws2 = periodic_windows(wt, 6, 0);
        assert_eq!(group_deadline(wt, 4, ws2[3].release), 8);
    }

    /// Weight 1 (a full processor): every window has length 1 and b = 0;
    /// each group deadline is the subtask's own deadline.
    #[test]
    fn weight_one_group_deadlines() {
        let wt = w(1, 1);
        for k in 1..=4 {
            let win = periodic_window(wt, k, 0);
            assert_eq!(win.len(), 1);
            assert!(!win.b);
            assert_eq!(group_deadline(wt, k, win.release), win.deadline);
        }
    }

    /// Light tasks return their own deadline (neutral in comparisons).
    #[test]
    fn light_tasks_are_neutral() {
        let wt = w(2, 5);
        let win = periodic_window(wt, 1, 0);
        assert_eq!(group_deadline(wt, 1, win.release), win.deadline);
    }

    /// Group deadlines are non-decreasing in the subtask index and the
    /// walk always terminates (bounded by one period).
    #[test]
    fn group_deadlines_are_monotone() {
        for (n, d) in [(8i128, 11i128), (3, 4), (7, 9), (5, 8), (11, 12)] {
            let wt = w(n, d);
            let mut last = 0;
            let mut release = 0;
            for k in 1..=(2 * d as u64) {
                let win = window_in_era(wt, k, release);
                let gd = group_deadline(wt, k, release);
                assert!(gd >= win.deadline - 1, "gd before own window end");
                assert!(gd >= last, "{n}/{d} rank {k}: gd {gd} < prior {last}");
                last = gd;
                release = win.next_release();
            }
        }
    }
}
