//! Exact rational arithmetic on `i128`.
//!
//! Every quantity the Pfair machinery reasons about — task weights,
//! per-slot ideal allocations, lag, drift — is a ratio of two integers
//! (weights are `e/p` with integer execution cost and period, and ideal
//! allocations are sums, differences, and min/max of weights). The
//! correctness arguments in the paper (windows, completion times,
//! drift bounds) are exact-arithmetic arguments; floating point would
//! silently break window boundaries such as `⌈i/wt⌉` for weights like
//! `3/19`. This module provides the small, overflow-checked rational
//! type used throughout the workspace.
//!
//! Invariants maintained by every constructor and operator:
//! * the denominator is strictly positive,
//! * numerator and denominator are coprime (`gcd == 1`),
//! * `0/x` normalizes to `0/1`.
//!
//! All arithmetic is overflow-checked and panics with a descriptive
//! message on overflow; with `i128` components and the gcd-normalized
//! representation, overflow is unreachable for the workloads in this
//! repository (denominators stay below ~10^7 over 10^4-slot horizons).
//!
//! ```
//! use pfair_core::rational::{rat, Rational};
//!
//! // The paper's window boundary for weight 3/19: d(T_2) = ⌈2/(3/19)⌉.
//! let w = rat(3, 19);
//! assert_eq!(w.div_ceil_int(2), 13);
//! // Exact accumulation — no floating-point drift.
//! let total = (0..19).fold(Rational::ZERO, |acc, _| acc + w);
//! assert_eq!(total, rat(3, 1));
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(|num|, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl pfair_json::ToJson for Rational {
    /// Serializes structurally as `{"num": …, "den": …}` — the codec is
    /// integer-exact, so components survive beyond `f64` precision.
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("num", pfair_json::Json::Int(self.num)),
            ("den", pfair_json::Json::Int(self.den)),
        ])
    }
}

impl pfair_json::FromJson for Rational {
    /// Deserialization validates and renormalizes: a zero denominator is
    /// rejected and unreduced or negative-denominator input is brought
    /// to canonical form, so the type invariants survive untrusted data.
    fn from_json(value: &pfair_json::Json) -> Result<Rational, pfair_json::JsonError> {
        let num: i128 = value.field("num")?;
        let den: i128 = value.field("den")?;
        if den == 0 {
            return Err(pfair_json::JsonError::new("Rational with zero denominator"));
        }
        Ok(Rational::new(num, den))
    }
}

/// Greatest common divisor of two unsigned integers (Euclid).
///
/// Operates on `u128` so that `i128::MIN.unsigned_abs()` (= 2^127) is a
/// valid operand — taking magnitudes in the signed domain would wrap.
// audit: prove(overflow-bounds)
#[inline]
fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b; // audit: allow(panic-reach, loop guard keeps b nonzero); allow(overflow-interval, the while guard keeps b nonzero, branch refinement is outside the interval domain)
        a = b;
        b = r;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Constructs `num/den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[inline]
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "Rational with zero denominator"); // audit: allow(panic-reach, documented contract: zero denominators and non-positive divisors panic)
        let (num, den) = if den < 0 {
            (
                num.checked_neg() // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
                    // audit: allow(panic, documented overflow contract: ±i128::MIN inputs)
                    .expect("Rational::new overflow: numerator is i128::MIN"),
                den.checked_neg() // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
                    // audit: allow(panic, documented overflow contract: ±i128::MIN inputs)
                    .expect("Rational::new overflow: denominator is i128::MIN"),
            )
        } else {
            (num, den)
        };
        // g divides the (positive) denominator, so it always fits in i128.
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        // audit: allow(panic, unreachable: gcd divides the positive denominator); allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
        let g = i128::try_from(g).expect("Rational::new: gcd exceeds i128");
        if g <= 1 {
            Rational { num, den }
        } else {
            Rational {
                num: num / g, // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
                den: den / g, // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
            }
        }
    }

    /// Constructs the integer `n` as a rational.
    #[inline]
    pub const fn from_int(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator of the reduced form (sign-carrying).
    #[inline]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The denominator of the reduced form (always positive).
    #[inline]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff the value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// `true` iff the value is an integer.
    #[inline]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    ///
    /// # Panics
    /// Panics if the numerator is `i128::MIN`.
    #[inline]
    pub fn abs(self) -> Rational {
        let num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .num
            .checked_abs()
            // audit: allow(panic, documented overflow contract: numerator i128::MIN)
            .expect("Rational::abs overflow: numerator is i128::MIN");
        Rational { num, den: self.den }
    }

    /// Largest integer `≤ self` (mathematical floor, correct for negatives).
    #[inline]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self` (mathematical ceiling, correct for negatives).
    #[inline]
    pub fn ceil(self) -> i128 {
        // floor + 1 unless exact; avoids negating the numerator, which
        // would overflow for i128::MIN. `q + 1` cannot overflow: den ≥ 2
        // whenever the remainder is nonzero, so q < i128::MAX.
        let q = self.num.div_euclid(self.den);
        // audit: allow(panic-reach, den is nonzero by the Rational::new contract)
        if self.num % self.den == 0 {
            q
        } else {
            q + 1
        }
    }

    /// Reciprocal `den/num`.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[inline]
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero"); // audit: allow(panic-reach, documented contract: zero denominators and non-positive divisors panic)
        Rational::new(self.den, self.num)
    }

    /// `self · n` for an integer factor, cross-reducing `gcd(n, den)`
    /// once and skipping the normalizing gcd entirely: the result of
    /// multiplying a canonical `num/den` by the coprime pair
    /// `(n/g) / (den/g)` is already in lowest terms. Agrees exactly with
    /// `self * Rational::from_int(n)` (proptested), one gcd cheaper —
    /// this is the per-interval multiply of the closed-form tracker
    /// advancement, where `n` is a slot count.
    ///
    /// # Panics
    /// Panics if the product numerator overflows `i128`.
    #[inline]
    pub fn mul_int(self, n: i64) -> Rational {
        let n = i128::from(n);
        let g = i128::try_from(gcd(n.unsigned_abs(), self.den.unsigned_abs())) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            // audit: allow(panic, unreachable: gcd divides the positive denominator)
            .expect("Rational mul_int: gcd exceeds i128");
        let num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .num
            .checked_mul(n / g) // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Rational mul_int overflow");
        // gcd(num·(n/g), den/g) = 1: num ⟂ den by canonical form and
        // (n/g) ⟂ (den/g) by construction, so no reduction is needed.
        Rational {
            num,
            den: self.den / g, // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
        }
    }

    /// Checked addition used by the operator impls.
    #[inline]
    fn checked_add(self, rhs: Rational) -> Rational {
        if self.den == rhs.den {
            // Same-denominator fast path: a/d + c/d = (a+c)/d, skipping
            // the denominator gcd and the two cross-multiplies. The
            // general path below degenerates to exactly this when b = d
            // (g = d collapses both scale factors to 1), so the result
            // and the overflow point are identical — only the reduction
            // inside `new` remains.
            let num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
                .num
                .checked_add(rhs.num)
                // audit: allow(panic, documented overflow contract of Rational arithmetic)
                .expect("Rational add overflow");
            return Rational::new(num, self.den);
        }
        // a/b + c/d = (a*d + c*b) / (b*d); reduce via g = gcd(b, d) first to
        // keep intermediates small (the classic Knuth trick).
        let g = i128::try_from(gcd(self.den.unsigned_abs(), rhs.den.unsigned_abs())) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            // audit: allow(panic, unreachable: gcd divides the positive denominator)
            .expect("Rational add: gcd exceeds i128");
        let (b, d) = (self.den / g, rhs.den / g); // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
        let num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .num
            .checked_mul(d)
            .and_then(|x| rhs.num.checked_mul(b).and_then(|y| x.checked_add(y)))
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Rational add overflow");
        // audit: allow(panic, documented overflow contract of Rational arithmetic); allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
        let den = self.den.checked_mul(d).expect("Rational add overflow");
        Rational::new(num, den)
    }

    /// Checked multiplication used by the operator impls.
    #[inline]
    fn checked_mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep intermediates small.
        // Each gcd divides a positive denominator, so both fit in i128.
        let g1 = i128::try_from(gcd(self.num.unsigned_abs(), rhs.den.unsigned_abs())) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            // audit: allow(panic, unreachable: gcd divides the positive denominator)
            .expect("Rational mul: gcd exceeds i128");
        let g2 = i128::try_from(gcd(rhs.num.unsigned_abs(), self.den.unsigned_abs())) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            // audit: allow(panic, unreachable: gcd divides the positive denominator)
            .expect("Rational mul: gcd exceeds i128");
        let num = (self.num / g1) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .checked_mul(rhs.num / g2) // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Rational mul overflow");
        let den = (self.den / g2) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .checked_mul(rhs.den / g1) // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Rational mul overflow");
        Rational::new(num, den)
    }

    /// The minimum of two rationals.
    #[inline]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals.
    #[inline]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Lossy conversion to `f64` (for statistics and plotting only; never
    /// used in scheduling decisions).
    #[inline]
    #[allow(clippy::disallowed_types)]
    // audit: allow(float, report-only conversion; never feeds scheduling)
    pub fn to_f64(self) -> f64 {
        // audit: allow(float, report-only conversion; never feeds scheduling)
        self.num as f64 / self.den as f64 // audit: allow(lossy-cast, i128→f64 for reporting only)
    }

    /// `⌊n / self⌋` for an integer `n` — the floor of `n` divided by this
    /// rational, computed exactly. Used for subtask releases
    /// `r(T_i) = ⌊(i−1)/wt⌋`.
    ///
    /// # Panics
    /// Panics if `self` is not strictly positive.
    #[inline]
    pub fn div_floor_int(self, n: i128) -> i128 {
        assert!(self.is_positive(), "div_floor_int by non-positive rational"); // audit: allow(panic-reach, documented contract: zero denominators and non-positive divisors panic)
                                                                               // n / (num/den) = n*den / num
                                                                               // audit: allow(panic, documented overflow contract of Rational arithmetic); allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
        let prod = n.checked_mul(self.den).expect("div_floor_int overflow");
        prod.div_euclid(self.num)
    }

    /// `⌈self / rhs⌉` as an integer, computed directly from the cross
    /// products without materializing (and gcd-normalizing) the
    /// intermediate quotient — the closed-form completion count of the
    /// interval trackers calls this once per subtask, so the two spared
    /// reductions matter.
    ///
    /// # Panics
    /// Panics if `rhs` is not strictly positive.
    #[inline]
    pub fn div_ceil(self, rhs: Rational) -> i128 {
        assert!(rhs.is_positive(), "div_ceil by non-positive rational"); // audit: allow(panic-reach, documented contract: zero denominators and non-positive divisors panic)
                                                                         // (a/b) / (c/d) = a·d / (b·c), with b, d > 0 canonical.
                                                                         // audit: allow(panic, documented overflow contract of Rational arithmetic); allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
        let num = self.num.checked_mul(rhs.den).expect("div_ceil overflow");
        // audit: allow(panic, documented overflow contract of Rational arithmetic); allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
        let den = rhs.num.checked_mul(self.den).expect("div_ceil overflow");
        // Same negation-free ceiling as `Rational::ceil`.
        let q = num.div_euclid(den);
        // audit: allow(panic-reach, den is a product of nonzero i128s, checked against overflow)
        if num % den == 0 {
            q
        } else {
            q + 1
        }
    }

    /// `⌈n / self⌉` for an integer `n` — the ceiling of `n` divided by this
    /// rational, computed exactly. Used for subtask deadlines
    /// `d(T_i) = ⌈i/wt⌉`.
    ///
    /// # Panics
    /// Panics if `self` is not strictly positive.
    #[inline]
    pub fn div_ceil_int(self, n: i128) -> i128 {
        assert!(self.is_positive(), "div_ceil_int by non-positive rational"); // audit: allow(panic-reach, documented contract: zero denominators and non-positive divisors panic)
                                                                              // audit: allow(panic, documented overflow contract of Rational arithmetic); allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
        let prod = n.checked_mul(self.den).expect("div_ceil_int overflow");
        // Same negation-free ceiling as `Rational::ceil`.
        let q = prod.div_euclid(self.num);
        // audit: allow(panic-reach, num is positive by the assert above)
        if prod % self.num == 0 {
            q
        } else {
            q + 1
        }
    }
}

/// Exact running sum with deferred reduction: a single un-normalized
/// numerator over a running common denominator, reduced by one gcd only
/// when [`Accumulator::finish`] is called — instead of gcd-normalizing
/// after every `+=` the way the operator does.
///
/// The payoff is the era-constant case the interval trackers live in:
/// every per-slot `I_SW`/`I_PS` allocation within an era shares the era
/// weight's denominator, so each push is one checked `i128` add and no
/// gcd at all. Mixed-denominator pushes rescale to the lcm (one gcd),
/// matching chained `+` exactly in value; the intermediate numerator may
/// grow larger than a reduced chain would, which is covered by the same
/// documented overflow-panics contract as the rest of this module.
#[derive(Clone, Copy, Debug)]
pub struct Accumulator {
    num: i128,
    den: i128,
}

impl Accumulator {
    /// An empty sum (zero over denominator one).
    #[inline]
    pub const fn new() -> Accumulator {
        Accumulator { num: 0, den: 1 }
    }

    /// Adds `r` to the running sum.
    ///
    /// # Panics
    /// Panics if the rescaled numerator or the lcm denominator
    /// overflows `i128` (same contract as `Rational` addition).
    #[inline]
    pub fn push(&mut self, r: Rational) {
        if r.den == self.den {
            self.num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
                .num
                .checked_add(r.num)
                // audit: allow(panic, documented overflow contract of Rational arithmetic)
                .expect("Accumulator overflow");
            return;
        }
        // Rescale both sides to the lcm of the denominators.
        let g = i128::try_from(gcd(self.den.unsigned_abs(), r.den.unsigned_abs())) // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            // audit: allow(panic, unreachable: gcd divides the positive denominator)
            .expect("Accumulator: gcd exceeds i128");
        let (scale_self, scale_r) = (r.den / g, self.den / g); // audit: allow(panic-reach, divisor is a gcd or a normalized denominator, both nonzero by construction)
        self.num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .num
            .checked_mul(scale_self)
            .and_then(|x| r.num.checked_mul(scale_r).and_then(|y| x.checked_add(y)))
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Accumulator overflow");
        self.den = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .den
            .checked_mul(scale_self)
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Accumulator overflow");
    }

    /// The exact sum so far, reduced to canonical form (the one gcd).
    #[inline]
    pub fn finish(&self) -> Rational {
        Rational::new(self.num, self.den)
    }
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator::new()
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(i128::from(n))
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_int(i128::from(n))
    }
}

impl Add for Rational {
    type Output = Rational;
    #[inline]
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs)
    }
}

impl AddAssign for Rational {
    #[inline]
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[inline]
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_add(-rhs)
    }
}

impl SubAssign for Rational {
    #[inline]
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    /// # Panics
    /// Panics if the numerator is `i128::MIN`.
    #[inline]
    fn neg(self) -> Rational {
        let num = self // audit: allow(panic-reach, documented contract: Rational panics on i128 overflow instead of wrapping)
            .num
            .checked_neg()
            // audit: allow(panic, documented overflow contract: numerator i128::MIN)
            .expect("Rational::neg overflow: numerator is i128::MIN");
        Rational { num, den: self.den }
    }
}

impl Mul for Rational {
    type Output = Rational;
    #[inline]
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
    }
}

impl Mul<i128> for Rational {
    type Output = Rational;
    #[inline]
    fn mul(self, rhs: i128) -> Rational {
        self.checked_mul(Rational::from_int(rhs))
    }
}

impl Div for Rational {
    type Output = Rational;
    #[inline]
    fn div(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs.recip())
    }
}

impl PartialOrd for Rational {
    #[inline]
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    #[inline]
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0). Overflow-checked.
        // audit: allow(panic-reach, documented overflow contract of Rational arithmetic)
        let lhs = self
            .num
            .checked_mul(other.den)
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Rational cmp overflow");
        // audit: allow(panic-reach, documented overflow contract of Rational arithmetic)
        let rhs = other
            .num
            .checked_mul(self.den)
            // audit: allow(panic, documented overflow contract of Rational arithmetic)
            .expect("Rational cmp overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Convenience constructor: `rat(3, 19)` is `3/19`.
#[inline]
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, -7), Rational::ZERO);
        assert_eq!(rat(0, 7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn add_sub_mul_div_basic() {
        assert_eq!(rat(1, 3) + rat(1, 6), rat(1, 2));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(3, 19) * rat(19, 3), Rational::ONE);
        assert_eq!(rat(5, 16) / rat(5, 16), Rational::ONE);
        assert_eq!(-rat(3, 4), rat(-3, 4));
    }

    #[test]
    fn floor_ceil_handle_negatives() {
        assert_eq!(rat(7, 2).floor(), 3);
        assert_eq!(rat(7, 2).ceil(), 4);
        assert_eq!(rat(-7, 2).floor(), -4);
        assert_eq!(rat(-7, 2).ceil(), -3);
        assert_eq!(rat(6, 2).floor(), 3);
        assert_eq!(rat(6, 2).ceil(), 3);
        assert_eq!(Rational::ZERO.floor(), 0);
        assert_eq!(Rational::ZERO.ceil(), 0);
    }

    #[test]
    fn div_floor_ceil_int_match_paper_window_math() {
        // Weight 5/16 (Fig. 1): r(T_2) = ⌊1/(5/16)⌋ = 3, d(T_2) = ⌈2/(5/16)⌉ = 7.
        let w = rat(5, 16);
        assert_eq!(w.div_floor_int(1), 3);
        assert_eq!(w.div_ceil_int(2), 7);
        // Weight 2/5: d(T_1) = ⌈1/(2/5)⌉ = 3.
        assert_eq!(rat(2, 5).div_ceil_int(1), 3);
        // Exact division has floor == ceil.
        assert_eq!(rat(1, 4).div_floor_int(2), 8);
        assert_eq!(rat(1, 4).div_ceil_int(2), 8);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(rat(1, 3) < rat(2, 5));
        assert!(rat(3, 19) < rat(2, 5));
        assert!(rat(-1, 2) < Rational::ZERO);
        assert_eq!(rat(10, 20).cmp(&rat(1, 2)), Ordering::Equal);
        assert_eq!(rat(1, 3).max(rat(2, 5)), rat(2, 5));
        assert_eq!(rat(1, 3).min(rat(2, 5)), rat(1, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", rat(3, 19)), "3/19");
        assert_eq!(format!("{}", rat(4, 2)), "2");
        assert_eq!(format!("{}", rat(-1, 2)), "-1/2");
    }

    #[test]
    fn to_f64_is_close() {
        assert!((rat(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn recip_and_integer_checks() {
        assert_eq!(rat(3, 19).recip(), rat(19, 3));
        assert!(rat(4, 2).is_integer());
        assert!(!rat(5, 2).is_integer());
        assert!(rat(1, 2).is_positive());
        assert!(rat(-1, 2).is_negative());
    }

    #[test]
    fn same_denominator_add_reduces_canonically() {
        // The fast path still ends at `new`, so sums that reduce must
        // come out in lowest terms.
        assert_eq!(rat(1, 6) + rat(1, 6), rat(1, 3));
        assert_eq!(rat(5, 6) + rat(1, 6), Rational::ONE);
        assert_eq!(rat(1, 6) - rat(1, 6), Rational::ZERO);
        assert_eq!(rat(1, 6) - rat(5, 6), rat(-2, 3));
        // Near-overflow same-denominator operands stay exact.
        let d = i128::MAX;
        assert_eq!(
            Rational::new(i128::MAX - 3, d) + Rational::new(2, d),
            Rational::new(i128::MAX - 1, d)
        );
    }

    #[test]
    fn mul_int_matches_general_multiplication() {
        assert_eq!(rat(3, 20).mul_int(0), Rational::ZERO);
        assert_eq!(rat(3, 20).mul_int(20), rat(3, 1));
        assert_eq!(rat(3, 20).mul_int(7), rat(21, 20));
        assert_eq!(rat(-3, 20).mul_int(5), rat(-3, 4));
        assert_eq!(rat(3, 20).mul_int(-5), rat(-3, 4));
        // Result is canonical without a final reduction.
        let r = rat(25, 2520).mul_int(504);
        assert_eq!((r.numer(), r.denom()), (5, 1));
    }

    #[test]
    fn accumulator_matches_chained_addition() {
        let terms = [rat(3, 19), rat(2, 19), rat(5, 16), rat(-1, 2), rat(7, 19)];
        let mut acc = Accumulator::new();
        let mut chained = Rational::ZERO;
        for t in terms {
            acc.push(t);
            chained += t;
        }
        assert_eq!(acc.finish(), chained);
        assert_eq!(Accumulator::new().finish(), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "Accumulator overflow")]
    fn accumulator_overflow_is_descriptive() {
        let mut acc = Accumulator::new();
        acc.push(Rational::new(i128::MAX - 1, i128::MAX));
        acc.push(Rational::new(i128::MAX - 1, i128::MAX - 2));
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use pfair_json::{FromJson, Json, ToJson};

    fn from_str<T: FromJson>(text: &str) -> Result<T, pfair_json::JsonError> {
        T::from_json(&Json::parse(text).expect("test JSON parses"))
    }

    #[test]
    fn roundtrip_and_normalization() {
        let a = rat(-3, 19);
        let json = a.to_json().to_string();
        let back: Rational = from_str(&json).unwrap();
        assert_eq!(back, a);
        // Unreduced / sign-denormalized input is canonicalized.
        let odd: Rational = from_str(r#"{"num":2,"den":-4}"#).unwrap();
        assert_eq!(odd, rat(-1, 2));
    }

    #[test]
    fn zero_denominator_rejected() {
        let r: Result<Rational, _> = from_str(r#"{"num":1,"den":0}"#);
        assert!(r.is_err());
    }

    #[test]
    fn huge_components_survive_exactly() {
        // Beyond f64's 2^53 integer precision: a float-backed codec
        // would corrupt these; the exact-integer codec must not.
        let big = Rational::new(i128::MAX - 1, i128::MAX);
        let back: Rational = from_str(&big.to_json().to_string()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn out_of_range_weight_rejected() {
        use crate::weight::Weight;
        let ok: Weight = from_str(r#"{"num":1,"den":2}"#).unwrap();
        assert_eq!(ok.value(), rat(1, 2));
        let bad: Result<Weight, _> = from_str(r#"{"num":3,"den":2}"#);
        assert!(bad.is_err());
        let zero: Result<Weight, _> = from_str(r#"{"num":0,"den":2}"#);
        assert!(zero.is_err());
    }
}
