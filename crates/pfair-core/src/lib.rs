//! # pfair-core
//!
//! Foundation types for Pfair multiprocessor scheduling with
//! fine-grained task reweighting, reproducing Block, Anderson & Bishop,
//! *Fine-Grained Task Reweighting on Multiprocessors* (UNC TR06-008; the
//! extended version of the IPPS/WPDRTS 2005 "Task Reweighting on
//! Multiprocessors: Efficiency versus Accuracy" line of work).
//!
//! This crate is deliberately scheduler-free: it provides the *task
//! model* and the *exact arithmetic* the schedulers in `pfair-sched`
//! build on:
//!
//! * [`rational`] — overflow-checked exact rationals (`i128`); every
//!   weight, allocation, lag, and drift value in the workspace is one.
//! * [`time`] — quanta/slots.
//! * [`weight`] — validated task weights in `(0, 1]`, light (`≤ 1/2`)
//!   vs. heavy classification.
//! * [`task`] — task/subtask identities and join-time task specs.
//! * [`window`] — subtask releases, deadlines, and b-bits for periodic,
//!   intra-sporadic (IS), and adaptable (AIS) tasks (paper Eqns (2)–(4)).
//! * [`ideal`] — the four ideal schedules (`I_IS`, `I_SW`, `I_CSW`,
//!   `I_PS`) as incremental per-slot trackers.
//! * [`lag`] — lag/LAG series against an ideal schedule.
//! * [`analysis`] — feasibility tests (condition (W)), hyperperiods,
//!   capacity arithmetic.
//! * [`drift`] — the per-reweighting-event allocation error (Eqn (5)).
//! * [`arena`] — dense-id occupancy bitmaps for arena/SoA task storage.
//! * [`pool`] — the deterministic scoped-thread worker pool (input-order
//!   results, byte-identical across pool widths).
//!
//! ## Model summary
//!
//! Processor time comes in unit quanta; slot `t` is `[t, t+1)`. A task
//! `T` of weight `wt(T) = e/p ≤ 1/2` is divided into unit-length
//! subtasks `T_i` with windows `[r(T_i), d(T_i))`; the PD² scheduler
//! (in `pfair-sched`) schedules subtasks earliest-pseudo-deadline-first
//! with the b-bit as tie-break, and is optimal. The *adaptable* IS model
//! lets `wt(T, t)` vary with time: each *enacted* weight change opens a
//! new **era**, inside which windows are those of a fresh task with the
//! new weight (the `z = Id(T_j) − 1` shift in Eqns (2)–(4)).

// Conventional-lint mirror of the audit's no-float-in-scheduling and
// no-panic-in-library invariants (types/methods listed in the root
// clippy.toml). Test code is exempt, as under audit.toml.
#![cfg_attr(not(test), warn(clippy::disallowed_types, clippy::disallowed_methods))]

pub mod analysis;
pub mod arena;
pub mod drift;
pub mod ideal;
pub mod lag;
pub mod pool;
pub mod rational;
pub mod task;
pub mod time;
pub mod weight;
pub mod window;

pub use analysis::{classify, hyperperiod, is_feasible, total_weight, SetClass};
pub use arena::IdBitmap;
pub use drift::{DriftSample, DriftTrack};
pub use ideal::{is_ideal_table, CompletionEvent, HaltRecord, IswTracker, PsTracker};
pub use rational::{rat, Accumulator, Rational};
pub use task::{SubtaskRef, TaskId, TaskSpec};
pub use time::{Slot, SlotRange, NEVER};
pub use weight::{Weight, WeightRangeError};
pub use window::{
    b_bit, periodic_window, periodic_windows, window_in_era, window_len, SubtaskWindow,
};
