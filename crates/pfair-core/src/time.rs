//! Discrete time: quanta and slots.
//!
//! Under Pfair scheduling processor time is allocated in unit-length
//! *quanta*; the half-open interval `[t, t+1)` is *slot* `t`, and "time
//! `t`" means the start of slot `t` (paper §2). All scheduling decisions
//! happen at slot boundaries, so plain signed integers are the natural
//! representation. Signed (rather than unsigned) arithmetic keeps window
//! expressions such as `d(T_i) − b(T_i)` and drift bookkeeping free of
//! underflow hazards.

/// A slot index / quantum-boundary time. Slot `t` is the interval `[t, t+1)`.
pub type Slot = i64;

// Checked narrowing between the domains slot math moves through: window
// and lag quantities are computed exactly in `i128`, stored in `Slot`,
// and used to index per-slot tables as `usize`, with subtask ranks in
// `u64`. Each helper makes the narrowing explicit and loud — a value
// outside the target range means corrupted scheduling state (horizons
// in this repository are far below 2^63), and the panic says which
// conversion failed.

/// Narrows an exact `i128` window/lag quantity to a `Slot`.
#[inline]
pub fn slot_from_i128(x: i128) -> Slot {
    // audit: allow(panic, window math is horizon-bounded; out-of-range means corrupted state); allow(panic-reach, slot quantities stay within the horizon enforced at admission)
    Slot::try_from(x).expect("slot quantity exceeds the i64 range")
}

/// Converts a non-negative `Slot` to a container index.
#[inline]
pub fn slot_index(t: Slot) -> usize {
    // audit: allow(panic, indexing requires a non-negative in-range slot; violation is a logic error); allow(panic-reach, slot quantities stay within the horizon enforced at admission)
    usize::try_from(t).expect("slot is not a valid container index")
}

/// Converts a container index to the `u64` subtask-rank domain.
#[inline]
pub fn rank_from_index(i: usize) -> u64 {
    // audit: allow(panic, infallible on the supported 64-bit targets)
    u64::try_from(i).expect("index exceeds u64")
}

/// Converts a `u64` subtask index/rank to a container index.
#[inline]
pub fn index_from_rank(i: u64) -> usize {
    // audit: allow(panic, ranks are horizon-bounded; out-of-range means corrupted state)
    usize::try_from(i).expect("subtask rank exceeds usize")
}

/// Sentinel for "never" (e.g., the halt time of a subtask that is never
/// halted, `H(T_j) = ∞` in the paper).
pub const NEVER: Slot = Slot::MAX;

/// Inclusive-exclusive slot range `[start, end)`, used for windows and
/// measurement intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotRange {
    /// First slot of the range.
    pub start: Slot,
    /// One past the last slot of the range.
    pub end: Slot,
}

impl SlotRange {
    /// Creates `[start, end)`. Empty ranges (`start >= end`) are permitted.
    pub fn new(start: Slot, end: Slot) -> SlotRange {
        SlotRange { start, end }
    }

    /// Number of slots in the range (zero for empty ranges).
    pub fn len(&self) -> i64 {
        (self.end - self.start).max(0)
    }

    /// `true` iff the range contains no slots.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// `true` iff slot `t` lies in `[start, end)`.
    pub fn contains(&self, t: Slot) -> bool {
        self.start <= t && t < self.end
    }

    /// Iterates over the slots of the range.
    pub fn iter(&self) -> impl Iterator<Item = Slot> {
        self.start..self.end
    }

    /// The intersection of two ranges (possibly empty).
    pub fn intersect(&self, other: &SlotRange) -> SlotRange {
        SlotRange::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// `true` iff the two ranges share at least one slot.
    pub fn overlaps(&self, other: &SlotRange) -> bool {
        !self.intersect(other).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = SlotRange::new(3, 7);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(3));
        assert!(r.contains(6));
        assert!(!r.contains(7));
        assert!(!r.contains(2));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn empty_ranges() {
        let r = SlotRange::new(5, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        let r = SlotRange::new(7, 3);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn intersect_and_overlap() {
        let a = SlotRange::new(0, 10);
        let b = SlotRange::new(5, 15);
        assert_eq!(a.intersect(&b), SlotRange::new(5, 10));
        assert!(a.overlaps(&b));
        let c = SlotRange::new(10, 12);
        assert!(!a.overlaps(&c)); // [0,10) and [10,12) share no slot
    }
}

#[cfg(test)]
mod more_time_tests {
    use super::*;

    #[test]
    fn never_is_max() {
        assert_eq!(NEVER, Slot::MAX);
        const { assert!(NEVER > 1_000_000_000) };
    }

    #[test]
    fn intersect_is_commutative_and_idempotent() {
        let a = SlotRange::new(2, 9);
        let b = SlotRange::new(5, 14);
        assert_eq!(a.intersect(&b), b.intersect(&a));
        assert_eq!(a.intersect(&a), a);
    }
}
