//! The ideal schedule `I_IS` of a non-adaptive IS task (Fig. 2), as a
//! per-subtask, per-slot allocation table.
//!
//! `I_IS` is the constant-weight special case of the `I_SW` tracker: the
//! scheduling weight never changes and nothing halts. This module
//! provides it as a pure function over a task's subtask offsets, which
//! the tests use to check the allocation tables printed in Fig. 1 of the
//! paper, and which downstream visualization code uses to render window
//! diagrams.

use crate::ideal::isw::IswTracker;
use crate::rational::Rational;
use crate::time::{index_from_rank, rank_from_index, slot_index, Slot};
use crate::weight::Weight;
use crate::window::{b_bit, window_in_era};

/// Per-subtask, per-slot ideal allocations of an IS task.
#[derive(Clone, Debug)]
pub struct IsIdealTable {
    /// `table[j][t]` is `A(I_IS, T_{j+1}, t)` for `t < horizon`.
    pub per_subtask: Vec<Vec<Rational>>,
    /// `task[t]` is `A(I_IS, T, t)`.
    pub per_task: Vec<Rational>,
    /// The windows `[r, d)` of each subtask.
    pub windows: Vec<(Slot, Slot)>,
}

/// Computes the `I_IS` allocation table for a task of fixed `weight`
/// whose subtask `T_{i}` has offset `offsets[i−1]` (offsets must be
/// non-decreasing; pass all zeros for a periodic task). `n = offsets.len()`
/// subtasks are considered over `[0, horizon)`.
///
/// # Panics
/// Panics if offsets decrease (the IS model requires
/// `k ≥ i ⇒ θ(T_k) ≥ θ(T_i)`).
pub fn is_ideal_table(weight: Weight, offsets: &[i64], horizon: Slot) -> IsIdealTable {
    let n = offsets.len();
    for w in offsets.windows(2) {
        assert!(w[0] <= w[1], "IS offsets must be non-decreasing");
    }
    // Plain tracker (no retained history): the table is reconstructed
    // from the completion events alone, so nothing is read back.
    let mut tracker = IswTracker::new(weight.value(), 0);
    // Build the release chain: r(T_{i+1}) = d(T_i) − b(T_i) + (θ_{i+1} − θ_i).
    let mut windows = Vec::with_capacity(n);
    let mut release = *offsets.first().unwrap_or(&0);
    for i in 1..=rank_from_index(n) {
        let win = window_in_era(weight, i, release);
        windows.push((win.release, win.deadline));
        tracker.add_subtask(i, win.release, i == 1, i > 1 && b_bit(weight, i - 1));
        let idx = index_from_rank(i);
        if idx < n {
            release = win.next_release() + (offsets[idx] - offsets[idx - 1]);
        }
    }
    // One closed-form jump over the whole horizon: the completion events
    // carry each subtask's `D(I_IS, T_i)` and final-slot allocation, and
    // with a constant weight those two values determine every row of the
    // table — release slot, `swt` interiors, final remainder (Fig. 5).
    let (_, completions) = tracker.advance_to(horizon);
    let mut final_of: Vec<Option<(Slot, Rational)>> = vec![None; n];
    for c in &completions {
        final_of[index_from_rank(c.index) - 1] = Some((c.complete_at, c.final_slot_alloc));
    }
    let swt = weight.value();
    let mut per_subtask = vec![vec![Rational::ZERO; slot_index(horizon)]; n];
    let mut per_task = vec![Rational::ZERO; slot_index(horizon)];
    for j in 0..n {
        let (release, _) = windows[j];
        if release >= horizon {
            continue;
        }
        // Release-slot allocation (Fig. 5 line 4): full weight, or the
        // weight minus the b=1 predecessor's final-slot allocation.
        let open = if j > 0 && b_bit(weight, rank_from_index(j)) {
            // The tracker asserts the predecessor completes before the
            // successor's release, so its event is always present here.
            assert!(
                final_of[j - 1].is_some(),
                "shared release without a predecessor completion"
            );
            let pred_final = final_of[j - 1].map_or(Rational::ZERO, |(_, f)| f);
            swt - pred_final
        } else {
            swt
        };
        let mut write = |slot: Slot, value: Rational| {
            per_subtask[j][slot_index(slot)] = value;
            per_task[slot_index(slot)] += value;
        };
        match final_of[j] {
            Some((done_at, final_alloc)) => {
                let last = done_at - 1;
                if last == release {
                    // Single-slot window (weight-one case): the release
                    // allocation is the final one.
                    write(release, final_alloc);
                } else {
                    write(release, open);
                    for u in (release + 1)..last {
                        write(u, swt);
                    }
                    write(last, final_alloc);
                }
            }
            // Incomplete at the horizon: the min() of Fig. 5 line 8
            // never binds before the final slot, so every slot after
            // the release allocates exactly `swt`.
            None => {
                write(release, open);
                for u in (release + 1)..horizon {
                    write(u, swt);
                }
            }
        }
    }
    IsIdealTable {
        per_subtask,
        per_task,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    /// Fig. 1(a): periodic task of weight 5/16. Checks the headline value
    /// from §2: A(I, T, 6) = A(I, T_2, 6) + A(I, T_3, 6) = 2/16 + 3/16.
    #[test]
    fn fig1a_slot6_decomposition() {
        let w = Weight::new(rat(5, 16));
        let table = is_ideal_table(w, &[0; 5], 16);
        assert_eq!(table.per_subtask[1][6], rat(2, 16)); // T_2 at slot 6
        assert_eq!(table.per_subtask[2][6], rat(3, 16)); // T_3 at slot 6
        assert_eq!(table.per_task[6], rat(5, 16));
        // Windows match the figure.
        assert_eq!(table.windows[0], (0, 4));
        assert_eq!(table.windows[1], (3, 7));
    }

    /// Every subtask's allocations total exactly one quantum.
    #[test]
    fn each_subtask_totals_one() {
        for (num, den) in [(5i128, 16i128), (2, 5), (3, 19), (1, 2)] {
            let w = Weight::new(rat(num, den));
            let table = is_ideal_table(w, &[0; 4], 4 * den as i64);
            for (j, rows) in table.per_subtask.iter().enumerate() {
                let sum = rows.iter().fold(Rational::ZERO, |a, b| a + *b);
                assert_eq!(
                    sum,
                    Rational::ONE,
                    "weight {}/{} subtask {}",
                    num,
                    den,
                    j + 1
                );
            }
        }
    }

    /// Fig. 1(b): IS task of weight 5/16 with θ(T_1)=0, θ(T_2)=2,
    /// θ(T_i)=3 for i ≥ 3. T_2's window starts at 5... the figure shows
    /// T_1 in [0,4) and the task inactive in slot 4.
    #[test]
    fn fig1b_is_separations() {
        let w = Weight::new(rat(5, 16));
        let table = is_ideal_table(w, &[0, 2, 3, 3, 3], 24);
        // T_1: [0,4) as in the periodic case.
        assert_eq!(table.windows[0], (0, 4));
        // r(T_2) = d(T_1) − b(T_1) + (2 − 0) = 3 + 2 = 5.
        assert_eq!(table.windows[1].0, 5);
        // The task is inactive (zero allocation) in slot 4.
        assert_eq!(table.per_task[4], Rational::ZERO);
        // T_2's release-slot allocation is wt − T_1's final: 5/16 − 1/16.
        assert_eq!(table.per_subtask[1][5], rat(4, 16));
        // Totals still one per subtask.
        for rows in &table.per_subtask {
            let sum = rows.iter().fold(Rational::ZERO, |a, b| a + *b);
            assert_eq!(sum, Rational::ONE);
        }
    }

    /// In every slot the task-level allocation never exceeds its weight
    /// (property AF1 of the appendix, specialized to constant weight).
    #[test]
    fn af1_per_slot_at_most_weight() {
        for (num, den) in [(5i128, 16i128), (2, 5), (3, 20), (1, 7)] {
            let w = Weight::new(rat(num, den));
            let table = is_ideal_table(w, &[0; 6], 6 * den as i64);
            for (t, a) in table.per_task.iter().enumerate() {
                assert!(*a <= rat(num, den), "weight {num}/{den} slot {t}: {a}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_offsets_panic() {
        let w = Weight::new(rat(1, 2));
        let _ = is_ideal_table(w, &[2, 0], 10);
    }
}
