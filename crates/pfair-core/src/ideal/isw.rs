//! Incremental computation of the `I_SW` ideal schedule (Fig. 5) for one
//! task, with the bookkeeping needed to derive `I_CSW` from it.
//!
//! The pseudo-code of Fig. 5 defines the per-slot allocation to subtask
//! `T_i` at slot `t`:
//!
//! ```text
//! if t < r(T_i) or t ≥ D(I_SW, T_i):            0
//! else if t = r(T_i):
//!     if i = Id(T_i) or b(T_{i−1}) = 0:          swt(T, t)
//!     else:                                      swt(T, t) − A(I_SW, T_{i−1}, D(T_{i−1}) − 1)
//! else:                                          min(swt(T, t), 1 − A(I_SW, T_i, 0, t))
//! ```
//!
//! `D(I_SW, T_i)` — the completion time — is *discovered*, not
//! predicted: it is the first slot boundary at which the subtask's
//! cumulative allocation reaches one quantum, or the halt time for a
//! halted subtask. The reweighting rules only consult it after the fact
//! (paper §3.2), which is exactly what this incremental tracker
//! provides: [`IswTracker::advance`] processes one slot and reports
//! completions as they happen.
//!
//! `I_CSW` (the clairvoyant variant) equals `I_SW` minus every
//! allocation made to a subtask that is eventually halted. Halting only
//! ever strikes the task's most recently released subtask, so by the
//! time anything downstream needs `A(I_CSW, T, 0, u)` at an era boundary
//! `u`, all halts affecting the prefix `[0, u)` are known — the tracker
//! simply maintains the running total of "lost" allocations and reports
//! the per-slot breakdown in a [`HaltRecord`] for post-hoc per-slot
//! analyses.

use crate::rational::Rational;
use crate::time::{Slot, NEVER};

/// Emitted by [`IswTracker::advance`] when a subtask's cumulative `I_SW`
/// allocation reaches one quantum during the processed slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletionEvent {
    /// Subtask index `i` of `T_i`.
    pub index: u64,
    /// `D(I_SW, T_i)`: the slot boundary at which the subtask completed
    /// (one past the slot in which its allocation reached 1).
    pub complete_at: Slot,
    /// The allocation the subtask received in its final slot
    /// `D(I_SW, T_i) − 1` — the quantity line 7 of Fig. 5 subtracts from
    /// the successor's release-slot allocation.
    pub final_slot_alloc: Rational,
}

/// Emitted by [`IswTracker::halt`]: everything `I_SW` had granted the
/// halted subtask, so `I_CSW` can retroactively zero it out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HaltRecord {
    /// Subtask index `i` of the halted `T_i`.
    pub index: u64,
    /// `H(T_i)`, the halt time.
    pub halted_at: Slot,
    /// `A(I_SW, T_i, 0, H(T_i))`: total allocation lost to the halt.
    pub lost: Rational,
    /// Per-slot breakdown of `lost` (slot, allocation), for analyses that
    /// need the per-slot `I_CSW` series. Populated only when the tracker
    /// was built with [`IswTracker::with_slot_history`]; empty otherwise,
    /// so long-horizon simulations carry just the running `lost` total
    /// instead of O(horizon) entries per slow subtask.
    pub slot_allocs: Vec<(Slot, Rational)>,
}

/// How the release-slot allocation of a subtask is computed (line 4 of
/// Fig. 5): either the subtask opens an era / follows a `b = 0`
/// predecessor (full `swt`), or it shares its release slot with a `b = 1`
/// predecessor's final slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReleaseRule {
    /// `i = Id(T_i)` or `b(T_{i−1}) = 0`: release-slot allocation is `swt`.
    Full,
    /// `b(T_{i−1}) = 1`: release-slot allocation is
    /// `swt − final_slot_alloc(T_{i−1})`; the predecessor is identified by
    /// its index so its final allocation can be looked up at processing
    /// time (it is known by then — the predecessor completes no later
    /// than the successor's release slot).
    SharedWithPred(u64),
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct IswSub {
    index: u64,
    release: Slot,
    rule: ReleaseRule,
    /// `A(I_SW, T_i, 0, now)`.
    cum: Rational,
    /// `Some(D)` once complete.
    complete_at: Option<Slot>,
    final_slot_alloc: Rational,
    halted_at: Slot, // NEVER if not halted
    /// Per-slot allocations while incomplete (cleared on completion; a
    /// completed subtask can no longer halt).
    slot_allocs: Vec<(Slot, Rational)>,
}

impl IswSub {
    fn is_live_at(&self, t: Slot) -> bool {
        self.complete_at.is_none() && self.halted_at == NEVER && self.release <= t
    }
}

impl pfair_json::ToJson for IswSub {
    fn to_json(&self) -> pfair_json::Json {
        // `ReleaseRule` flattens to an optional predecessor index: absent
        // means `Full`, present means `SharedWithPred`.
        let pred = match self.rule {
            ReleaseRule::Full => None,
            ReleaseRule::SharedWithPred(p) => Some(p),
        };
        pfair_json::obj([
            ("index", self.index.to_json()),
            ("release", self.release.to_json()),
            ("pred", pred.to_json()),
            ("cum", self.cum.to_json()),
            ("complete_at", self.complete_at.to_json()),
            ("final_slot_alloc", self.final_slot_alloc.to_json()),
            ("halted_at", self.halted_at.to_json()),
            ("slot_allocs", self.slot_allocs.to_json()),
        ])
    }
}

impl pfair_json::FromJson for IswSub {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let index: u64 = value.field("index")?;
        let pred: Option<u64> = value.field("pred")?;
        let rule = match pred {
            None => ReleaseRule::Full,
            Some(p) if p < index => ReleaseRule::SharedWithPred(p),
            Some(_) => {
                return Err(pfair_json::JsonError::new(
                    "I_SW predecessor index must precede the subtask",
                ))
            }
        };
        let cum: Rational = value.field("cum")?;
        if cum.is_negative() || cum > Rational::ONE {
            return Err(pfair_json::JsonError::new(
                "I_SW cumulative allocation outside [0, 1]",
            ));
        }
        let complete_at: Option<Slot> = value.field("complete_at")?;
        if complete_at.is_some() && cum != Rational::ONE {
            return Err(pfair_json::JsonError::new(
                "completed I_SW subtask must hold exactly one quantum",
            ));
        }
        Ok(IswSub {
            index,
            release: value.field("release")?,
            rule,
            cum,
            complete_at,
            final_slot_alloc: value.field("final_slot_alloc")?,
            halted_at: value.field("halted_at")?,
            slot_allocs: value.field("slot_allocs")?,
        })
    }
}

impl pfair_json::ToJson for IswTracker {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("swt", self.swt.to_json()),
            ("subs", self.subs.to_json()),
            ("total", self.total.to_json()),
            ("halted_loss", self.halted_loss.to_json()),
            ("now", self.now.to_json()),
            ("keep_retired", self.keep_retired.to_json()),
            ("record_slot_allocs", self.record_slot_allocs.to_json()),
        ])
    }
}

impl pfair_json::FromJson for IswTracker {
    /// Re-validates the tracker invariants the methods rely on: subtasks
    /// strictly index-sorted, cumulative allocations inside `[0, 1]`
    /// (checked per subtask), completion implying a full quantum.
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let subs: Vec<IswSub> = value.field("subs")?;
        if subs.windows(2).any(|w| w[0].index >= w[1].index) {
            return Err(pfair_json::JsonError::new(
                "I_SW subtasks out of index order",
            ));
        }
        Ok(IswTracker {
            swt: value.field("swt")?,
            subs,
            total: value.field("total")?,
            halted_loss: value.field("halted_loss")?,
            now: value.field("now")?,
            keep_retired: value.field("keep_retired")?,
            record_slot_allocs: value.field("record_slot_allocs")?,
        })
    }
}

/// Incremental `I_SW` schedule of a single task.
///
/// Usage protocol (driven by the scheduler engine):
/// 1. [`IswTracker::set_swt`] whenever a weight change is *enacted*;
/// 2. [`IswTracker::add_subtask`] at (or before) each subtask release;
/// 3. [`IswTracker::halt`] when a reweighting rule halts the
///    last-released subtask;
/// 4. [`IswTracker::advance`] once per slot, in slot order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IswTracker {
    swt: Rational,
    subs: Vec<IswSub>,
    /// `A(I_SW, T, 0, now)`.
    total: Rational,
    /// Σ over halted subtasks of their lost allocation.
    halted_loss: Rational,
    /// Next slot to be processed by `advance`.
    now: Slot,
    /// When true, completed/halted subtasks are never dropped — needed by
    /// table builders that read back per-subtask cumulative values.
    keep_retired: bool,
    /// When true, incomplete subtasks keep a per-slot allocation
    /// breakdown for [`HaltRecord::slot_allocs`]. Opt-in: the breakdown
    /// grows with the horizon for slow subtasks.
    record_slot_allocs: bool,
}

impl IswTracker {
    /// Creates a tracker for a task whose first enacted weight is `swt`
    /// and which joins at slot `join_at` (no slots before `join_at` are
    /// processed).
    pub fn new(swt: Rational, join_at: Slot) -> IswTracker {
        IswTracker {
            swt,
            subs: Vec::new(),
            total: Rational::ZERO,
            halted_loss: Rational::ZERO,
            now: join_at,
            keep_retired: false,
            record_slot_allocs: false,
        }
    }

    /// Like [`IswTracker::new`], but retains all subtasks so callers can
    /// read back `subtask_cum`/`completion_of` for the whole history.
    /// Memory grows with the number of subtasks; meant for table builders
    /// and tests, not long-running simulations.
    pub fn new_keeping_history(swt: Rational, join_at: Slot) -> IswTracker {
        let mut t = IswTracker::new(swt, join_at);
        t.keep_retired = true;
        t
    }

    /// Builder-style switch: record the per-slot allocation breakdown of
    /// incomplete subtasks so [`IswTracker::halt`] can report
    /// [`HaltRecord::slot_allocs`] for per-slot `I_CSW` analyses. Off by
    /// default because the breakdown is O(horizon) memory for a subtask
    /// that never completes; without it a halt reports only the running
    /// `lost` total, which is all the drift accounting needs. While
    /// enabled, [`IswTracker::advance_to`] falls back to the per-slot
    /// oracle (a closed-form jump has no per-slot story to record).
    #[must_use]
    pub fn with_slot_history(mut self) -> IswTracker {
        self.record_slot_allocs = true;
        self
    }

    /// The current scheduling weight `swt(T, now)`.
    pub fn swt(&self) -> Rational {
        self.swt
    }

    /// The next slot `advance` will process.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// `A(I_SW, T, 0, now)`.
    pub fn isw_total(&self) -> Rational {
        self.total
    }

    /// `A(I_CSW, T, 0, now)`: the `I_SW` total minus everything granted
    /// to subtasks that have (so far) halted. Exact at era boundaries —
    /// see the module docs for why no later halt can invalidate it.
    pub fn icsw_total(&self) -> Rational {
        self.total - self.halted_loss
    }

    /// Enacts a weight change: allocations from the current slot onward
    /// use `swt`.
    pub fn set_swt(&mut self, swt: Rational) {
        self.swt = swt;
    }

    /// Registers subtask `T_index` with the given release slot.
    ///
    /// `era_first` is `i = Id(T_i)` — true when this is the first subtask
    /// released after an enacted weight change (including the join).
    /// `pred_b` is `b(T_{i−1})` of its (non-halted) predecessor, ignored
    /// when `era_first`.
    ///
    /// # Panics
    /// Panics if subtasks are added out of index order or with a release
    /// before an already-processed slot.
    pub fn add_subtask(&mut self, index: u64, release: Slot, era_first: bool, pred_b: bool) {
        // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
        assert!(
            release >= self.now,
            "subtask {} released at {} but slot {} already processed",
            index,
            release,
            self.now
        );
        let rule = if era_first || !pred_b {
            ReleaseRule::Full
        } else {
            let pred = self // audit: allow(panic-reach, predecessor is recorded at release and retained until its successor retires)
                .subs
                .iter()
                .rev()
                .find(|s| s.index < index && s.halted_at == NEVER)
                .map(|s| s.index)
                // audit: allow(panic, caller-contract violation; documented precondition of add_subtask)
                .expect("non-era-first subtask with b=1 predecessor must have a live predecessor");
            ReleaseRule::SharedWithPred(pred)
        };
        if let Some(last) = self.subs.last() {
            // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
            assert!(last.index < index, "subtasks must be added in index order");
        }
        self.subs.push(IswSub {
            index,
            release,
            rule,
            cum: Rational::ZERO,
            complete_at: None,
            final_slot_alloc: Rational::ZERO,
            halted_at: NEVER,
            slot_allocs: Vec::new(),
        });
    }

    /// Halts subtask `T_index` at time `t` (the current slot boundary).
    /// Returns the record of everything `I_SW` had granted it, which
    /// `I_CSW` treats as never allocated.
    ///
    /// # Panics
    /// Panics if the subtask is unknown, already complete, or already
    /// halted — the reweighting rules only halt incomplete, unscheduled
    /// subtasks.
    pub fn halt(&mut self, index: u64, t: Slot) -> HaltRecord {
        let sub = self // audit: allow(panic-reach, predecessor is recorded at release and retained until its successor retires)
            .subs
            .iter_mut()
            .find(|s| s.index == index)
            // audit: allow(panic, caller-contract violation; documented precondition of halt)
            .expect("halting unknown subtask");
        assert!(sub.complete_at.is_none(), "halting a complete subtask"); // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
        assert!(sub.halted_at == NEVER, "halting a halted subtask"); // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
        sub.halted_at = t;
        self.halted_loss += sub.cum;
        HaltRecord {
            index,
            halted_at: t,
            lost: sub.cum,
            slot_allocs: std::mem::take(&mut sub.slot_allocs),
        }
    }

    /// `D(I_SW, T_index)` if the subtask has completed.
    pub fn completion_of(&self, index: u64) -> Option<Slot> {
        self.subs
            .iter()
            .find(|s| s.index == index)
            .and_then(|s| s.complete_at)
    }

    /// Cumulative allocation `A(I_SW, T_index, 0, now)` of a tracked
    /// subtask (`None` if unknown/retired).
    pub fn subtask_cum(&self, index: u64) -> Option<Rational> {
        self.subs.iter().find(|s| s.index == index).map(|s| s.cum)
    }

    /// Processes slot `t` (which must be the tracker's `now`): computes
    /// every live subtask's allocation per Fig. 5, in index order.
    /// Returns the task's total allocation in the slot and any
    /// completions that occurred.
    pub fn advance(&mut self, t: Slot) -> (Rational, Vec<CompletionEvent>) {
        assert_eq!(t, self.now, "slots must be advanced in order"); // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
        self.now = t + 1;
        let mut slot_total = Rational::ZERO;
        let mut completions = Vec::new();
        // Index order matters: a successor's release-slot allocation may
        // reference the predecessor's final-slot allocation computed
        // earlier in this very call (their windows overlap by b = 1).
        for i in 0..self.subs.len() {
            // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            if !self.subs[i].is_live_at(t) {
                continue;
            }
            // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            let alloc = if t == self.subs[i].release {
                // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                match self.subs[i].rule {
                    ReleaseRule::Full => self.swt,
                    ReleaseRule::SharedWithPred(p) => {
                        let pred = self // audit: allow(panic-reach, predecessor is recorded at release and retained until its successor retires)
                            .subs
                            .iter()
                            .find(|s| s.index == p)
                            // audit: allow(panic, tracker invariant; a missing predecessor means corrupted state)
                            .expect("predecessor retired too early");
                        // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
                        assert!(
                            pred.complete_at.is_some(),
                            "predecessor T_{p} not complete at successor release {t}"
                        );
                        self.swt - pred.final_slot_alloc
                    }
                }
            } else {
                self.swt.min(Rational::ONE - self.subs[i].cum) // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            };
            debug_assert!(!alloc.is_negative(), "negative I_SW allocation");
            let sub = &mut self.subs[i]; // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            sub.cum += alloc;
            slot_total += alloc;
            if self.record_slot_allocs && !alloc.is_zero() {
                sub.slot_allocs.push((t, alloc));
            }
            debug_assert!(sub.cum <= Rational::ONE);
            if sub.cum == Rational::ONE {
                sub.complete_at = Some(t + 1);
                sub.final_slot_alloc = alloc;
                sub.slot_allocs.clear(); // complete subtasks can no longer halt
                completions.push(CompletionEvent {
                    index: sub.index,
                    complete_at: t + 1,
                    final_slot_alloc: alloc,
                });
            }
        }
        self.total += slot_total;
        self.retire();
        (slot_total, completions)
    }

    /// Processes every slot in `[now, t)` in one closed-form jump,
    /// returning the total allocation over the interval and all
    /// completions that occurred in it (in completion order). Work is
    /// O(subtasks released before `t`), not O(slots): within the
    /// interval the scheduling weight is constant (the usage protocol
    /// synchronizes before every `set_swt`/`halt`), so Fig. 5 collapses
    /// per subtask to a release-slot allocation, `swt` per interior
    /// slot, and the remainder `1 − cum − swt·(k−1)` in the final slot —
    /// with the final-slot position `k = ⌈(1 − cum)/swt⌉` computed
    /// directly from the era-constant weight. Interval totals are summed
    /// through [`crate::rational::Accumulator`], whose same-denominator
    /// pushes (all era allocations share the weight's denominator) defer
    /// the gcd to one reduction per jump.
    ///
    /// Bit-identical to calling [`IswTracker::advance`] once per slot —
    /// exact rational arithmetic is associative, and each closed-form
    /// quantity equals the per-slot recurrence's value at the same slot
    /// (asserted by the equivalence proptests). With
    /// [`IswTracker::with_slot_history`] enabled this delegates to the
    /// per-slot oracle so the breakdown stays complete.
    ///
    /// # Panics
    /// Panics if `t` is behind the tracker's current slot.
    pub fn advance_to(&mut self, t: Slot) -> (Rational, Vec<CompletionEvent>) {
        assert!(t >= self.now, "cannot advance a tracker backwards"); // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
        if self.record_slot_allocs {
            let mut total = crate::rational::Accumulator::new();
            let mut completions = Vec::new();
            while self.now < t {
                let (slot_total, mut done) = self.advance(self.now);
                total.push(slot_total);
                completions.append(&mut done);
            }
            return (total.finish(), completions);
        }
        let from = self.now;
        if from == t {
            return (Rational::ZERO, Vec::new());
        }
        self.now = t;
        let mut interval_total = crate::rational::Accumulator::new();
        let mut completions = Vec::new();
        // Index order matters for the same reason as in `advance`: a
        // successor's release-slot allocation reads the predecessor's
        // final-slot allocation, which this very call may compute.
        // Index order is completion order here, so the emitted events
        // match the per-slot discovery order (a predecessor always
        // completes strictly before its successor).
        for i in 0..self.subs.len() {
            if self.subs[i].complete_at.is_some() // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                || self.subs[i].halted_at != NEVER // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                || self.subs[i].release >= t
            {
                continue;
            }
            let mut cum = self.subs[i].cum; // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                                            // First slot of this subtask not yet folded into `cum`.
            let mut start = from;
            // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            if self.subs[i].release >= from {
                // The release slot lies inside the jump: Fig. 5 line 4.
                // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                let alloc = match self.subs[i].rule {
                    ReleaseRule::Full => self.swt,
                    ReleaseRule::SharedWithPred(p) => {
                        // `subs` is index-sorted (asserted in
                        // `add_subtask`), so the predecessor lookup is
                        // logarithmic — an era jump may process many
                        // thousands of subtasks in one call, and a
                        // linear scan here would make the jump
                        // quadratic.
                        let Ok(j) = self.subs.binary_search_by_key(&p, |s| s.index) else {
                            unreachable!("predecessor retired too early") // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
                        };
                        let pred = &self.subs[j]; // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                                                  // audit: allow(panic-reach, Fig. 5 bookkeeping invariant of the ideal tracker, a violation is a tracker bug)
                        assert!(
                            pred.complete_at.is_some(),
                            "predecessor T_{p} not complete at successor release"
                        );
                        self.swt - pred.final_slot_alloc
                    }
                };
                debug_assert!(!alloc.is_negative(), "negative I_SW allocation");
                // `cum` is always zero before the release slot; skip the
                // general add (this branch runs once per subtask).
                debug_assert!(cum.is_zero());
                cum = alloc;
                interval_total.push(alloc);
                start = self.subs[i].release + 1; // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            }
            debug_assert!(cum <= Rational::ONE);
            if cum == Rational::ONE {
                // Completed in its release slot (weight-1 era).
                // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                Self::complete(&mut self.subs[i], start, cum, &mut completions);
            } else if start < t && self.swt.is_positive() {
                let remaining = Rational::ONE - cum;
                // Slots still needed at `swt` apiece; ≥ 1 since cum < 1.
                let k = crate::time::slot_from_i128(remaining.div_ceil(self.swt));
                if k <= t - start {
                    // Completes inside the jump: k − 1 full slots, then
                    // the remainder in slot start + k − 1.
                    let final_alloc = remaining - self.swt.mul_int(k - 1);
                    interval_total.push(remaining);
                    // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                    Self::complete(&mut self.subs[i], start + k, final_alloc, &mut completions);
                } else {
                    // Still incomplete at t: every slot allocates swt.
                    let added = self.swt.mul_int(t - start);
                    self.subs[i].cum = cum + added; // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
                    interval_total.push(added);
                }
            } else {
                self.subs[i].cum = cum; // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            }
        }
        let added = interval_total.finish();
        self.total += added;
        self.retire();
        (added, completions)
    }

    /// Marks a subtask complete at boundary `done_at` with the given
    /// final-slot allocation and emits the event (shared by the
    /// closed-form completion sites of `advance_to`).
    fn complete(
        sub: &mut IswSub,
        done_at: Slot,
        final_alloc: Rational,
        completions: &mut Vec<CompletionEvent>,
    ) {
        sub.cum = Rational::ONE;
        sub.complete_at = Some(done_at);
        sub.final_slot_alloc = final_alloc;
        sub.slot_allocs.clear();
        completions.push(CompletionEvent {
            index: sub.index,
            complete_at: done_at,
            final_slot_alloc: final_alloc,
        });
    }

    /// `D(I_SW, T_index)`, discovered or projected: the recorded
    /// completion if known, otherwise the closed-form projection for a
    /// live, already-released subtask assuming `swt` stays constant.
    /// Exact within an era — any event that changes the weight both
    /// resynchronizes the tracker and supersedes decisions derived from
    /// this value, which is what lets the engine resolve
    /// "enact after `D(I_SW, T_i) + b`" waits eagerly instead of
    /// rediscovering the completion slot by slot. `None` for
    /// unknown/halted/not-yet-released subtasks or a non-positive
    /// weight.
    pub fn projected_completion(&self, index: u64) -> Option<Slot> {
        let sub = self.subs.iter().find(|s| s.index == index)?;
        if sub.complete_at.is_some() {
            return sub.complete_at;
        }
        if sub.halted_at != NEVER || sub.release >= self.now || !self.swt.is_positive() {
            return None;
        }
        let remaining = Rational::ONE - sub.cum;
        // Slots still needed at `swt` apiece; the last one is now+k−1,
        // so the completion boundary is now+k.
        let k = crate::time::slot_from_i128((remaining / self.swt).ceil()); // audit: allow(panic-reach, swt is a positive weight by the Weight::try_new contract)
        Some(self.now + k)
    }

    /// The tracker translated forward by `ds` slots, `di` subtask
    /// indices, and `dt` total allocation — the image of this state
    /// under one steady busy-span period. Every slot-valued field
    /// shifts by `ds` (`NEVER` sentinels stay put), every subtask index
    /// (including `SharedWithPred` back-references) by `di`, and the
    /// running totals by `dt`; `swt` and the per-subtask cumulative
    /// fractions are period-invariant so they are copied unchanged.
    /// `None` when any shifted field would overflow — the caller then
    /// simply declines to batch the span.
    #[must_use]
    pub fn translated(&self, ds: Slot, di: u64, dt: Rational) -> Option<IswTracker> {
        let subs = self
            .subs
            .iter()
            .map(|s| {
                let rule = match s.rule {
                    ReleaseRule::Full => ReleaseRule::Full,
                    ReleaseRule::SharedWithPred(p) => {
                        ReleaseRule::SharedWithPred(p.checked_add(di)?)
                    }
                };
                let complete_at = match s.complete_at {
                    None => None,
                    Some(d) => Some(d.checked_add(ds)?),
                };
                let halted_at = if s.halted_at == NEVER {
                    NEVER
                } else {
                    s.halted_at.checked_add(ds)?
                };
                let slot_allocs = s
                    .slot_allocs
                    .iter()
                    .map(|&(t, a)| Some((t.checked_add(ds)?, a)))
                    .collect::<Option<Vec<_>>>()?;
                Some(IswSub {
                    index: s.index.checked_add(di)?,
                    release: s.release.checked_add(ds)?,
                    rule,
                    cum: s.cum,
                    complete_at,
                    final_slot_alloc: s.final_slot_alloc,
                    halted_at,
                    slot_allocs,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(IswTracker {
            swt: self.swt,
            subs,
            total: self.total + dt,
            halted_loss: self.halted_loss,
            now: self.now.checked_add(ds)?,
            keep_retired: self.keep_retired,
            record_slot_allocs: self.record_slot_allocs,
        })
    }

    /// Number of per-slot breakdown entries currently retained across all
    /// incomplete subtasks. Always 0 unless
    /// [`IswTracker::with_slot_history`] was used — the bounded-memory
    /// regression test pins that.
    pub fn slot_history_len(&self) -> usize {
        self.subs.iter().map(|s| s.slot_allocs.len()).sum()
    }

    /// Drops subtasks that can no longer influence anything: completed or
    /// halted subtasks other than the last two entries (the release rule
    /// of the next subtask may still reference the most recent completed
    /// predecessor).
    fn retire(&mut self) {
        if self.keep_retired {
            return;
        }
        // One drain instead of repeated `remove(0)`: a closed-form era
        // jump can retire thousands of subtasks in a single call, and
        // front-removals would make that quadratic.
        let max_drop = self.subs.len().saturating_sub(2);
        let n = self.subs[..max_drop] // audit: allow(panic-reach, indices come from the tracker's own bounded iteration over subs)
            .iter()
            .take_while(|s| s.complete_at.is_some() || s.halted_at != NEVER)
            .count();
        self.subs.drain(..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;
    use crate::weight::Weight;
    use crate::window::{b_bit, periodic_window};

    /// Drives a constant-weight periodic task through the tracker and
    /// collects the per-slot task allocations.
    fn run_periodic(num: i128, den: i128, n_subs: u64, horizon: Slot) -> Vec<Rational> {
        let w = Weight::new(rat(num, den));
        let mut tr = IswTracker::new(w.value(), 0);
        for i in 1..=n_subs {
            let win = periodic_window(w, i, 0);
            let pred_b = if i > 1 { b_bit(w, i - 1) } else { false };
            tr.add_subtask(i, win.release, i == 1, pred_b);
        }
        (0..horizon).map(|t| tr.advance(t).0).collect()
    }

    /// Fig. 1(a): weight 5/16. A(I, T, 6) = 2/16 + 3/16 = 5/16, and the
    /// task receives exactly its weight in every slot of the first
    /// hyperperiod (windows tile perfectly for a periodic task).
    #[test]
    fn fig1a_periodic_5_16_per_slot_allocations() {
        let allocs = run_periodic(5, 16, 5, 16);
        for (t, a) in allocs.iter().enumerate() {
            assert_eq!(*a, rat(5, 16), "slot {t}");
        }
    }

    /// Subtask-level values from Fig. 1(a): T_1 gets 5/16 in slots 0–2
    /// and 1/16 in slot 3; T_2 gets 4/16 in slot 3 (= 5/16 − 1/16).
    #[test]
    fn fig1a_subtask_boundary_allocations() {
        let w = Weight::new(rat(5, 16));
        let mut tr = IswTracker::new(w.value(), 0);
        tr.add_subtask(1, 0, true, false);
        tr.add_subtask(2, 3, false, b_bit(w, 1));
        for t in 0..3 {
            assert_eq!(tr.advance(t).0, rat(5, 16));
        }
        // Slot 3: T_1 completes with 1/16, T_2 opens with 4/16.
        let (total, completions) = tr.advance(3);
        assert_eq!(total, rat(5, 16));
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].index, 1);
        assert_eq!(completions[0].complete_at, 4);
        assert_eq!(completions[0].final_slot_alloc, rat(1, 16));
        assert_eq!(tr.subtask_cum(2), Some(rat(4, 16)));
    }

    /// Fig. 3(b)/Fig. 7: task X of weight 3/19 enacting an increase to
    /// 2/5 at time 8. X_2 must receive 2/19 at slot 6, 3/19 at slot 7,
    /// 2/5 at slot 8, and 32/95 at slot 9, completing at time 10.
    #[test]
    fn fig7_weight_increase_mid_window() {
        let w = rat(3, 19);
        let mut tr = IswTracker::new(w, 0);
        tr.add_subtask(1, 0, true, false);
        // r(X_2) = d(X_1) − b(X_1) = 7 − 1 = 6.
        tr.add_subtask(2, 6, false, true);
        for t in 0..6 {
            tr.advance(t);
        }
        // Slot 6: X_1 completes with 1/19, X_2 opens with 3/19 − 1/19 = 2/19.
        let (_, completions) = tr.advance(6);
        assert_eq!(completions[0].index, 1);
        assert_eq!(completions[0].complete_at, 7);
        assert_eq!(tr.subtask_cum(2), Some(rat(2, 19)));
        tr.advance(7); // X_2: +3/19 → 5/19
        assert_eq!(tr.subtask_cum(2), Some(rat(5, 19)));
        // Weight change to 2/5 enacted at time 8 (rule I(i): immediate).
        tr.set_swt(rat(2, 5));
        tr.advance(8); // +2/5 → 63/95
        assert_eq!(tr.subtask_cum(2), Some(rat(63, 95)));
        let (slot9, completions) = tr.advance(9); // +32/95 → 1
        assert_eq!(slot9, rat(32, 95));
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].index, 2);
        assert_eq!(completions[0].complete_at, 10);
        assert_eq!(completions[0].final_slot_alloc, rat(32, 95));
    }

    /// Fig. 3(a): same task but T_2 is halted at time 8 (rule O). I_SW
    /// granted it 2/19 + 3/19 = 5/19 by then; I_CSW takes that back.
    /// Slot history is enabled so the halt record carries the per-slot
    /// breakdown.
    #[test]
    fn fig3a_halt_and_icsw_loss() {
        let w = rat(3, 19);
        let mut tr = IswTracker::new(w, 0).with_slot_history();
        tr.add_subtask(1, 0, true, false);
        tr.add_subtask(2, 6, false, true);
        for t in 0..8 {
            tr.advance(t);
        }
        assert_eq!(tr.subtask_cum(2), Some(rat(5, 19)));
        let rec = tr.halt(2, 8);
        assert_eq!(rec.lost, rat(5, 19));
        assert_eq!(rec.halted_at, 8);
        assert_eq!(rec.slot_allocs, vec![(6, rat(2, 19)), (7, rat(3, 19))]);
        // I_SW total counts the lost allocation; I_CSW does not.
        assert_eq!(tr.isw_total(), Rational::ONE + rat(5, 19));
        assert_eq!(tr.icsw_total(), Rational::ONE);
        // The halted subtask receives nothing afterwards.
        tr.set_swt(rat(2, 5));
        let (slot8, _) = tr.advance(8);
        assert_eq!(slot8, Rational::ZERO);
    }

    /// Completed subtasks total exactly one quantum each: after a long
    /// run, the I_SW total equals the number of completed subtasks.
    #[test]
    fn totals_equal_completed_subtasks() {
        let w = Weight::new(rat(2, 5));
        let mut tr = IswTracker::new(w.value(), 0);
        let mut release = 0;
        for i in 1..=8u64 {
            let win = periodic_window(w, i, 0);
            tr.add_subtask(i, win.release, i == 1, i > 1 && b_bit(w, i - 1));
            release = win.next_release();
        }
        let _ = release;
        let mut done = 0;
        for t in 0..20 {
            done += tr.advance(t).1.len();
        }
        assert_eq!(done, 8);
        assert_eq!(tr.isw_total(), Rational::from_int(8));
    }

    /// A task that joins late processes no early slots.
    #[test]
    fn late_join_starts_at_join_slot() {
        let mut tr = IswTracker::new(rat(1, 2), 10);
        tr.add_subtask(1, 10, true, false);
        assert_eq!(tr.now(), 10);
        let (a, _) = tr.advance(10);
        assert_eq!(a, rat(1, 2));
    }

    #[test]
    #[should_panic(expected = "slots must be advanced in order")]
    fn advancing_out_of_order_panics() {
        let mut tr = IswTracker::new(rat(1, 2), 0);
        tr.advance(0);
        tr.advance(2);
    }

    #[test]
    #[should_panic(expected = "index order")]
    fn out_of_order_subtasks_panic() {
        let mut tr = IswTracker::new(rat(1, 2), 0);
        tr.add_subtask(2, 0, true, false);
        tr.add_subtask(1, 1, true, false);
    }
}

#[cfg(test)]
mod advance_to_tests {
    use super::*;
    use crate::rational::rat;
    use crate::weight::Weight;
    use crate::window::{b_bit, periodic_window};

    /// Two trackers with identical subtask schedules: one driven per
    /// slot, one in a single jump; compares totals, per-subtask state,
    /// and the completion-event streams.
    fn assert_jump_matches_oracle(num: i128, den: i128, n_subs: u64, horizon: Slot) {
        let w = Weight::new(rat(num, den));
        let mut batch = IswTracker::new_keeping_history(w.value(), 0);
        let mut oracle = IswTracker::new_keeping_history(w.value(), 0);
        for i in 1..=n_subs {
            let win = periodic_window(w, i, 0);
            let pred_b = i > 1 && b_bit(w, i - 1);
            batch.add_subtask(i, win.release, i == 1, pred_b);
            oracle.add_subtask(i, win.release, i == 1, pred_b);
        }
        let (batch_total, batch_events) = batch.advance_to(horizon);
        let mut oracle_total = Rational::ZERO;
        let mut oracle_events = Vec::new();
        for t in 0..horizon {
            let (a, mut e) = oracle.advance(t);
            oracle_total += a;
            oracle_events.append(&mut e);
        }
        assert_eq!(batch_total, oracle_total, "interval total");
        assert_eq!(batch_events, oracle_events, "completion events");
        assert_eq!(batch.isw_total(), oracle.isw_total());
        assert_eq!(batch.now(), oracle.now());
        for i in 1..=n_subs {
            assert_eq!(batch.subtask_cum(i), oracle.subtask_cum(i), "cum of T_{i}");
            assert_eq!(batch.completion_of(i), oracle.completion_of(i));
        }
    }

    #[test]
    fn single_jump_matches_per_slot_for_paper_weights() {
        assert_jump_matches_oracle(5, 16, 5, 16); // Fig. 1(a)
        assert_jump_matches_oracle(3, 19, 3, 19); // Fig. 3/7 task X
        assert_jump_matches_oracle(2, 5, 8, 20); // heavy-ish, b=1 chains
        assert_jump_matches_oracle(1, 1, 6, 6); // weight one: one per slot
        assert_jump_matches_oracle(1, 7, 3, 21); // light, b=0 everywhere
    }

    /// A jump that stops mid-window leaves the same partial cumulative
    /// state as the per-slot oracle, and the follow-up jump finishes
    /// identically — the era-boundary cadence the engine uses.
    #[test]
    fn split_jumps_preserve_partial_state() {
        let w = Weight::new(rat(5, 16));
        for split in 0..=10 {
            let mut batch = IswTracker::new_keeping_history(w.value(), 0);
            let mut oracle = IswTracker::new_keeping_history(w.value(), 0);
            for i in 1..=4u64 {
                let win = periodic_window(w, i, 0);
                let pred_b = i > 1 && b_bit(w, i - 1);
                batch.add_subtask(i, win.release, i == 1, pred_b);
                oracle.add_subtask(i, win.release, i == 1, pred_b);
            }
            batch.advance_to(split);
            batch.advance_to(10);
            for t in 0..10 {
                oracle.advance(t);
            }
            assert_eq!(batch.isw_total(), oracle.isw_total(), "split at {split}");
            for i in 1..=4u64 {
                assert_eq!(batch.subtask_cum(i), oracle.subtask_cum(i));
                assert_eq!(batch.completion_of(i), oracle.completion_of(i));
            }
        }
    }

    /// Fig. 7's era change, driven by jumps: advance to the enactment
    /// boundary, change the weight, jump again. X_2 must complete at 10
    /// with a 32/95 final slot, exactly as the per-slot test observes.
    #[test]
    fn era_change_between_jumps_matches_fig7() {
        let mut tr = IswTracker::new(rat(3, 19), 0);
        tr.add_subtask(1, 0, true, false);
        tr.add_subtask(2, 6, false, true);
        let (_, first) = tr.advance_to(8);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].index, 1);
        assert_eq!(first[0].complete_at, 7);
        assert_eq!(tr.subtask_cum(2), Some(rat(5, 19)));
        tr.set_swt(rat(2, 5));
        let (added, second) = tr.advance_to(12);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].index, 2);
        assert_eq!(second[0].complete_at, 10);
        assert_eq!(second[0].final_slot_alloc, rat(32, 95));
        // Slots 8 and 9 allocate 2/5 and 32/95; 10 and 11 nothing.
        assert_eq!(added, rat(2, 5) + rat(32, 95));
    }

    /// Projection agrees with discovery: before the completion is
    /// reached, `projected_completion` names the slot the per-slot
    /// oracle will eventually report.
    #[test]
    fn projection_matches_discovery() {
        let mut tr = IswTracker::new(rat(3, 19), 0);
        tr.add_subtask(1, 0, true, false);
        tr.add_subtask(2, 6, false, true);
        tr.advance_to(8);
        tr.set_swt(rat(2, 5));
        // X_2 holds 5/19; at 2/5 per slot it needs ⌈(14/19)/(2/5)⌉ = 2
        // more slots, completing at boundary 10.
        assert_eq!(tr.projected_completion(2), Some(10));
        let (_, events) = tr.advance_to(10);
        assert_eq!(events[0].complete_at, 10);
        // After discovery the projection reports the recorded value.
        assert_eq!(tr.projected_completion(2), Some(10));
        // Unknown and unreleased subtasks project to nothing.
        assert_eq!(tr.projected_completion(99), None);
        tr.add_subtask(3, 15, true, false);
        assert_eq!(tr.projected_completion(3), None);
    }

    /// Without `with_slot_history` no per-slot breakdown is retained
    /// (bounded memory over long horizons) and halts report an empty
    /// breakdown but the exact `lost` total; with it, both survive.
    #[test]
    fn slot_history_is_opt_in_and_memory_stays_bounded() {
        // A never-completing subtask: weight tiny, horizon long.
        let mut lean = IswTracker::new(rat(1, 1_000_000), 0);
        lean.add_subtask(1, 0, true, false);
        lean.advance_to(100_000);
        assert_eq!(
            lean.slot_history_len(),
            0,
            "lean tracker retains no breakdown"
        );
        let rec = lean.halt(1, 100_000);
        assert_eq!(rec.lost, rat(100_000, 1_000_000));
        assert!(rec.slot_allocs.is_empty());

        let mut rich = IswTracker::new(rat(3, 19), 0).with_slot_history();
        rich.add_subtask(1, 0, true, false);
        rich.add_subtask(2, 6, false, true);
        for t in 0..8 {
            rich.advance(t);
        }
        assert_eq!(rich.slot_history_len(), 2); // X_2's slots 6 and 7
        let rec = rich.halt(2, 8);
        assert_eq!(rec.slot_allocs, vec![(6, rat(2, 19)), (7, rat(3, 19))]);
    }

    /// The with-history fallback still jumps correctly (delegating to
    /// the per-slot path) so callers need not branch.
    #[test]
    fn with_history_fallback_is_equivalent() {
        let mut jump = IswTracker::new(rat(5, 16), 0).with_slot_history();
        let mut oracle = IswTracker::new(rat(5, 16), 0).with_slot_history();
        for tr in [&mut jump, &mut oracle] {
            tr.add_subtask(1, 0, true, false);
            tr.add_subtask(2, 3, false, true);
        }
        let (jump_total, jump_events) = jump.advance_to(5);
        let mut oracle_total = Rational::ZERO;
        let mut oracle_events = Vec::new();
        for t in 0..5 {
            let (a, mut e) = oracle.advance(t);
            oracle_total += a;
            oracle_events.append(&mut e);
        }
        assert_eq!(jump_total, oracle_total);
        assert_eq!(jump_events, oracle_events);
        assert_eq!(jump.slot_history_len(), oracle.slot_history_len());
    }

    #[test]
    #[should_panic(expected = "cannot advance a tracker backwards")]
    fn backwards_jump_panics() {
        let mut tr = IswTracker::new(rat(1, 2), 5);
        tr.advance_to(3);
    }
}
