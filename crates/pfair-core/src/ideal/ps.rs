//! The ideal processor-sharing schedule `I_PS`.
//!
//! Under `I_PS` each task continuously receives a share equal to its
//! *actual* weight `wt(T, t)` — weight changes take effect the instant
//! they are **initiated**, with no enactment delay whatsoever (paper
//! §4.1). `I_PS` is the yardstick against which drift is measured: it is
//! what an unimplementable, infinitely-preemptive scheduler would give
//! each task.
//!
//! Because weight changes are initiated at slot boundaries (all times in
//! the paper are integral numbers of quanta), the integral
//! `A(I_PS, T, t1, t2) = ∫ wt(T, u) du` reduces to a per-slot sum of the
//! current weight, which this tracker accumulates exactly.

use crate::rational::Rational;
use crate::time::Slot;

/// Incremental `I_PS` allocation of a single task.
#[derive(Clone, Debug)]
pub struct PsTracker {
    wt: Rational,
    total: Rational,
    now: Slot,
    /// Slot intervals `[from, until)` during which allocation is zero —
    /// the "zero between active subtasks" case that intra-sporadic
    /// separations create when the early-release assumption is dropped.
    suspensions: Vec<(Slot, Slot)>,
}

impl PsTracker {
    /// A task of initial weight `wt` joining at `join_at`.
    pub fn new(wt: Rational, join_at: Slot) -> PsTracker {
        PsTracker {
            wt,
            total: Rational::ZERO,
            now: join_at,
            suspensions: Vec::new(),
        }
    }

    /// Suspends allocation for slots in `[from, until)` (IS separation:
    /// the task is between active subtasks there, so the instantaneous
    /// ideal owes it nothing). Intervals may lie in the future and may
    /// overlap; empty intervals are ignored.
    pub fn suspend_between(&mut self, from: Slot, until: Slot) {
        if from < until {
            self.suspensions.push((from, until));
        }
    }

    /// Suspends allocation from the current slot up to `until`.
    pub fn suspend_until(&mut self, until: Slot) {
        self.suspend_between(self.now, until);
    }

    /// The current actual weight `wt(T, now)`.
    pub fn wt(&self) -> Rational {
        self.wt
    }

    /// `A(I_PS, T, 0, now)`.
    pub fn total(&self) -> Rational {
        self.total
    }

    /// The next slot `advance` will process.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Initiates a weight change: slot allocations from the current slot
    /// onward use `wt`. (Under `I_PS`, initiation *is* enactment.)
    pub fn set_wt(&mut self, wt: Rational) {
        self.wt = wt;
    }

    /// Accrues slot `t`'s allocation (`wt(T, t) · 1`, or zero while
    /// suspended).
    pub fn advance(&mut self, t: Slot) -> Rational {
        assert_eq!(t, self.now, "slots must be advanced in order");
        self.now = t + 1;
        if self
            .suspensions
            .iter()
            .any(|(from, until)| *from <= t && t < *until)
        {
            // Drop intervals entirely in the past to keep the scan short.
            self.suspensions.retain(|(_, until)| *until > t);
            return Rational::ZERO;
        }
        self.suspensions.retain(|(_, until)| *until > t);
        self.total += self.wt;
        self.wt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    /// Fig. 7(b): X has weight 3/19 until time 8, then 2/5. Over [9, 11)
    /// it receives 4/5; over [0, 8) it receives 24/19.
    #[test]
    fn fig7_ps_allocations() {
        let mut ps = PsTracker::new(rat(3, 19), 0);
        for t in 0..8 {
            ps.advance(t);
        }
        assert_eq!(ps.total(), rat(24, 19));
        ps.set_wt(rat(2, 5));
        let before_9 = {
            ps.advance(8);
            ps.total()
        };
        ps.advance(9);
        ps.advance(10);
        assert_eq!(ps.total() - before_9, rat(4, 5));
    }

    /// Fig. 8: T has weight 1/10 until time 4, then 1/2. By time 10 the
    /// I_PS total is 4·(1/10) + 6·(1/2) = 17/5, so with I_CSW = 1 the
    /// drift reaches 24/10.
    #[test]
    fn fig8_ps_total_at_10() {
        let mut ps = PsTracker::new(rat(1, 10), 0);
        for t in 0..4 {
            ps.advance(t);
        }
        ps.set_wt(rat(1, 2));
        for t in 4..10 {
            ps.advance(t);
        }
        assert_eq!(ps.total(), rat(17, 5));
        assert_eq!(ps.total() - Rational::ONE, rat(24, 10));
    }

    /// A late joiner accrues nothing before its join slot.
    #[test]
    fn late_join() {
        let mut ps = PsTracker::new(rat(1, 2), 10);
        assert_eq!(ps.now(), 10);
        ps.advance(10);
        assert_eq!(ps.total(), rat(1, 2));
    }

    #[test]
    #[should_panic(expected = "slots must be advanced in order")]
    fn out_of_order_panics() {
        let mut ps = PsTracker::new(rat(1, 2), 0);
        ps.advance(1);
    }
}

#[cfg(test)]
mod suspension_tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn suspension_zeroes_allocation() {
        let mut ps = PsTracker::new(rat(1, 2), 0);
        ps.advance(0);
        ps.suspend_until(3);
        assert_eq!(ps.advance(1), Rational::ZERO);
        assert_eq!(ps.advance(2), Rational::ZERO);
        assert_eq!(ps.advance(3), rat(1, 2));
        assert_eq!(ps.total(), rat(1, 1));
    }

    #[test]
    fn suspensions_do_not_shorten() {
        let mut ps = PsTracker::new(rat(1, 2), 0);
        ps.suspend_until(5);
        ps.suspend_until(2); // no effect
        for t in 0..5 {
            assert_eq!(ps.advance(t), Rational::ZERO);
        }
        assert_eq!(ps.advance(5), rat(1, 2));
    }
}
