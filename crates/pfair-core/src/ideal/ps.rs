//! The ideal processor-sharing schedule `I_PS`.
//!
//! Under `I_PS` each task continuously receives a share equal to its
//! *actual* weight `wt(T, t)` — weight changes take effect the instant
//! they are **initiated**, with no enactment delay whatsoever (paper
//! §4.1). `I_PS` is the yardstick against which drift is measured: it is
//! what an unimplementable, infinitely-preemptive scheduler would give
//! each task.
//!
//! Because weight changes are initiated at slot boundaries (all times in
//! the paper are integral numbers of quanta), the integral
//! `A(I_PS, T, t1, t2) = ∫ wt(T, u) du` reduces to a per-slot sum of the
//! current weight, which this tracker accumulates exactly.

use crate::rational::Rational;
use crate::time::Slot;

/// Incremental `I_PS` allocation of a single task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsTracker {
    wt: Rational,
    total: Rational,
    now: Slot,
    /// Slot intervals `[from, until)` during which allocation is zero —
    /// the "zero between active subtasks" case that intra-sporadic
    /// separations create when the early-release assumption is dropped.
    suspensions: Vec<(Slot, Slot)>,
}

impl pfair_json::ToJson for PsTracker {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("wt", self.wt.to_json()),
            ("total", self.total.to_json()),
            ("now", self.now.to_json()),
            ("suspensions", self.suspensions.to_json()),
        ])
    }
}

impl pfair_json::FromJson for PsTracker {
    /// Re-validates the interval invariant `suspend_between` enforces:
    /// every suspension is non-empty (`from < until`).
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let suspensions: Vec<(Slot, Slot)> = value.field("suspensions")?;
        if suspensions.iter().any(|(from, until)| from >= until) {
            return Err(pfair_json::JsonError::new("empty I_PS suspension interval"));
        }
        Ok(PsTracker {
            wt: value.field("wt")?,
            total: value.field("total")?,
            now: value.field("now")?,
            suspensions,
        })
    }
}

impl PsTracker {
    /// A task of initial weight `wt` joining at `join_at`.
    pub fn new(wt: Rational, join_at: Slot) -> PsTracker {
        PsTracker {
            wt,
            total: Rational::ZERO,
            now: join_at,
            suspensions: Vec::new(),
        }
    }

    /// Suspends allocation for slots in `[from, until)` (IS separation:
    /// the task is between active subtasks there, so the instantaneous
    /// ideal owes it nothing). Intervals may lie in the future and may
    /// overlap; empty intervals are ignored.
    pub fn suspend_between(&mut self, from: Slot, until: Slot) {
        if from < until {
            self.suspensions.push((from, until));
        }
    }

    /// Suspends allocation from the current slot up to `until`.
    pub fn suspend_until(&mut self, until: Slot) {
        self.suspend_between(self.now, until);
    }

    /// The current actual weight `wt(T, now)`.
    pub fn wt(&self) -> Rational {
        self.wt
    }

    /// `A(I_PS, T, 0, now)`.
    pub fn total(&self) -> Rational {
        self.total
    }

    /// The next slot `advance` will process.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Initiates a weight change: slot allocations from the current slot
    /// onward use `wt`. (Under `I_PS`, initiation *is* enactment.)
    pub fn set_wt(&mut self, wt: Rational) {
        self.wt = wt;
    }

    /// Accrues slot `t`'s allocation (`wt(T, t) · 1`, or zero while
    /// suspended).
    pub fn advance(&mut self, t: Slot) -> Rational {
        assert_eq!(t, self.now, "slots must be advanced in order"); // audit: allow(panic-reach, fluid trackers advance monotonically by construction, a violation is a tracker bug)
        self.now = t + 1;
        if self
            .suspensions
            .iter()
            .any(|(from, until)| *from <= t && t < *until)
        {
            // Drop intervals entirely in the past to keep the scan short.
            self.suspensions.retain(|(_, until)| *until > t);
            return Rational::ZERO;
        }
        self.suspensions.retain(|(_, until)| *until > t);
        self.total += self.wt;
        self.wt
    }

    /// The tracker translated forward by `ds` slots and `dt` total
    /// allocation — the image of this state under one steady busy-span
    /// period. `wt` is period-invariant; `now` and every suspension
    /// interval shift by `ds`; the running total grows by `dt`. `None`
    /// when a shifted slot would overflow, in which case the caller
    /// declines to batch the span.
    #[must_use]
    pub fn translated(&self, ds: Slot, dt: Rational) -> Option<PsTracker> {
        let suspensions = self
            .suspensions
            .iter()
            .map(|&(a, b)| Some((a.checked_add(ds)?, b.checked_add(ds)?)))
            .collect::<Option<Vec<_>>>()?;
        Some(PsTracker {
            wt: self.wt,
            total: self.total + dt,
            now: self.now.checked_add(ds)?,
            suspensions,
        })
    }

    /// Accrues all slots up to (but excluding) boundary `t` in one step:
    /// `A(I_PS, T, now, t) = wt · |active slots in [now, t)|`, one
    /// rational multiply plus one add, with the active-slot count
    /// obtained from the suspension intervals — O(suspensions) work
    /// instead of O(slots). Returns the allocation added.
    ///
    /// Callers change the weight only at synchronization boundaries
    /// (`set_wt` after advancing to the initiation slot), so `wt` is
    /// constant over the interval and the product equals the per-slot
    /// sum exactly — [`PsTracker::advance`] called once per slot yields
    /// a bit-identical total, which the equivalence proptests assert.
    ///
    /// # Panics
    /// Panics if `t` is behind the tracker's current slot.
    pub fn advance_to(&mut self, t: Slot) -> Rational {
        assert!(t >= self.now, "cannot advance a tracker backwards"); // audit: allow(panic-reach, fluid trackers advance monotonically by construction, a violation is a tracker bug)
        if t == self.now {
            return Rational::ZERO;
        }
        let from = self.now;
        self.now = t;
        // Suspended slots in [from, t): clip each interval, then sweep
        // in order so overlapping intervals are not double-counted.
        let mut clipped: Vec<(Slot, Slot)> = self
            .suspensions
            .iter()
            .map(|&(a, b)| (a.max(from), b.min(t)))
            .filter(|&(a, b)| a < b)
            .collect();
        clipped.sort_unstable();
        let mut suspended = 0;
        let mut cursor = from;
        for (a, b) in clipped {
            let a = a.max(cursor);
            if a < b {
                suspended += b - a;
                cursor = b;
            }
        }
        // Same retention as per-slot advance after processing slot t−1.
        self.suspensions.retain(|&(_, until)| until >= t);
        let added = self.wt.mul_int((t - from) - suspended);
        self.total += added;
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    /// Fig. 7(b): X has weight 3/19 until time 8, then 2/5. Over [9, 11)
    /// it receives 4/5; over [0, 8) it receives 24/19.
    #[test]
    fn fig7_ps_allocations() {
        let mut ps = PsTracker::new(rat(3, 19), 0);
        for t in 0..8 {
            ps.advance(t);
        }
        assert_eq!(ps.total(), rat(24, 19));
        ps.set_wt(rat(2, 5));
        let before_9 = {
            ps.advance(8);
            ps.total()
        };
        ps.advance(9);
        ps.advance(10);
        assert_eq!(ps.total() - before_9, rat(4, 5));
    }

    /// Fig. 8: T has weight 1/10 until time 4, then 1/2. By time 10 the
    /// I_PS total is 4·(1/10) + 6·(1/2) = 17/5, so with I_CSW = 1 the
    /// drift reaches 24/10.
    #[test]
    fn fig8_ps_total_at_10() {
        let mut ps = PsTracker::new(rat(1, 10), 0);
        for t in 0..4 {
            ps.advance(t);
        }
        ps.set_wt(rat(1, 2));
        for t in 4..10 {
            ps.advance(t);
        }
        assert_eq!(ps.total(), rat(17, 5));
        assert_eq!(ps.total() - Rational::ONE, rat(24, 10));
    }

    /// A late joiner accrues nothing before its join slot.
    #[test]
    fn late_join() {
        let mut ps = PsTracker::new(rat(1, 2), 10);
        assert_eq!(ps.now(), 10);
        ps.advance(10);
        assert_eq!(ps.total(), rat(1, 2));
    }

    #[test]
    #[should_panic(expected = "slots must be advanced in order")]
    fn out_of_order_panics() {
        let mut ps = PsTracker::new(rat(1, 2), 0);
        ps.advance(1);
    }
}

#[cfg(test)]
mod suspension_tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn suspension_zeroes_allocation() {
        let mut ps = PsTracker::new(rat(1, 2), 0);
        ps.advance(0);
        ps.suspend_until(3);
        assert_eq!(ps.advance(1), Rational::ZERO);
        assert_eq!(ps.advance(2), Rational::ZERO);
        assert_eq!(ps.advance(3), rat(1, 2));
        assert_eq!(ps.total(), rat(1, 1));
    }

    #[test]
    fn suspensions_do_not_shorten() {
        let mut ps = PsTracker::new(rat(1, 2), 0);
        ps.suspend_until(5);
        ps.suspend_until(2); // no effect
        for t in 0..5 {
            assert_eq!(ps.advance(t), Rational::ZERO);
        }
        assert_eq!(ps.advance(5), rat(1, 2));
    }
}

#[cfg(test)]
mod advance_to_tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn interval_jump_matches_per_slot() {
        // Fig. 7(b)'s schedule, advanced in two closed-form jumps.
        let mut batch = PsTracker::new(rat(3, 19), 0);
        assert_eq!(batch.advance_to(8), rat(24, 19));
        batch.set_wt(rat(2, 5));
        batch.advance_to(11);

        let mut oracle = PsTracker::new(rat(3, 19), 0);
        for t in 0..8 {
            oracle.advance(t);
        }
        oracle.set_wt(rat(2, 5));
        for t in 8..11 {
            oracle.advance(t);
        }
        assert_eq!(batch.total(), oracle.total());
        assert_eq!(batch.now(), oracle.now());
    }

    #[test]
    fn overlapping_suspensions_counted_once() {
        let mut batch = PsTracker::new(rat(1, 2), 0);
        batch.suspend_between(2, 6);
        batch.suspend_between(4, 8);
        batch.suspend_between(20, 25); // entirely beyond the jump
        assert_eq!(batch.advance_to(10), rat(2, 1)); // 4 active slots

        let mut oracle = PsTracker::new(rat(1, 2), 0);
        oracle.suspend_between(2, 6);
        oracle.suspend_between(4, 8);
        oracle.suspend_between(20, 25);
        for t in 0..10 {
            oracle.advance(t);
        }
        assert_eq!(batch.total(), oracle.total());
        // The future interval must still suspend slots 20..25.
        batch.advance_to(25);
        for t in 10..25 {
            oracle.advance(t);
        }
        assert_eq!(batch.total(), oracle.total());
    }

    #[test]
    fn empty_jump_is_a_no_op() {
        let mut ps = PsTracker::new(rat(1, 3), 7);
        assert_eq!(ps.advance_to(7), Rational::ZERO);
        assert_eq!(ps.total(), Rational::ZERO);
        assert_eq!(ps.now(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot advance a tracker backwards")]
    fn backwards_jump_panics() {
        let mut ps = PsTracker::new(rat(1, 3), 7);
        ps.advance_to(3);
    }
}
