//! Ideal schedules: `I_IS`, `I_SW`, `I_CSW`, and `I_PS`.
//!
//! Fair-scheduling correctness is defined against *ideal* schedulers
//! that hand each task fractional processor time slot by slot. The paper
//! uses four of them:
//!
//! * **`I_IS`** — the ideal schedule of a (non-adaptive) intra-sporadic
//!   task system: each subtask receives its task's *fixed* weight in the
//!   interior of its window, with release/deadline slots adjusted so
//!   every subtask totals exactly one quantum (Fig. 2). Provided here by
//!   [`is_table::is_ideal_table`] as the constant-weight special case of
//!   the tracker.
//! * **`I_SW`** — like `I_IS` but for adaptable tasks: allocations track
//!   the *scheduling weight* (the last enacted weight), and a halted
//!   subtask accrues allocations until the moment it halts (Fig. 5).
//!   This is the schedule the reweighting rules consult — the completion
//!   time `D(I_SW, T_j)` decides when a weight change may be enacted and
//!   when the successor subtask is released. Implemented incrementally by
//!   [`isw::IswTracker`].
//! * **`I_CSW`** — the clairvoyant variant of `I_SW` that never allocates
//!   to a subtask that will halt; used for correctness and drift
//!   accounting. Obtained from the tracker by subtracting the recorded
//!   allocations of halted subtasks ([`isw::IswTracker::icsw_total`] and
//!   the per-slot [`isw::HaltRecord`] corrections).
//! * **`I_PS`** — ideal processor sharing: each task continuously
//!   receives its *actual* weight `wt(T, t)`, with weight changes taking
//!   effect the instant they are *initiated*. The yardstick for drift.
//!   Implemented by [`ps::PsTracker`].

pub mod is_table;
pub mod isw;
pub mod ps;

pub use is_table::is_ideal_table;
pub use isw::{CompletionEvent, HaltRecord, IswTracker};
pub use ps::PsTracker;
