//! Drift: the permanent allocation error caused by reweighting.
//!
//! When a task reweights, practical schemes cannot enact the change
//! instantaneously; the allocation lost (or gained) relative to the
//! instantaneous ideal `I_PS` shifts the center of the task's lag-bound
//! range. That shift is the *drift* (paper §4.1, Eqn (5)):
//!
//! ```text
//! drift(T, t) = A(I_PS, T, 0, u) − A(I_CSW, T, 0, u)
//! ```
//!
//! where `u` is the release of the last era-opening subtask (`Id(T_i) = i`)
//! at or before `t` (or `u = t` before the task's first subtask). Drift
//! is therefore piecewise constant, changing only at era boundaries; a
//! reweighting scheme is **fine-grained** iff the per-event change in
//! drift is bounded by a constant (PD²-OI guarantees 2, Theorem 5), and
//! **coarse-grained** otherwise (PD²-LJ's per-event drift grows with
//! `1/weight`, Theorem 3).
//!
//! The simulation engine records one [`DriftSample`] per era boundary —
//! evaluating `A(I_PS, …)` and `A(I_CSW, …)` exactly at the boundary —
//! and this module answers queries over those samples. Because drift is
//! only ever read at these boundaries, the engine does not need per-slot
//! tracker state: it advances the ideal trackers in closed form to each
//! boundary (an event-driven synchronization) and samples there, which
//! yields bit-identical values to per-slot accumulation.
//!
//! ```
//! use pfair_core::drift::DriftTrack;
//! use pfair_core::rat;
//!
//! let mut track = DriftTrack::new();
//! track.record(0, rat(0, 1), rat(0, 1));   // join: zero drift
//! track.record(10, rat(3, 2), rat(1, 1));  // Fig. 6(b): drift 1/2 from t = 10
//! assert_eq!(track.at(9), rat(0, 1));
//! assert_eq!(track.at(10), rat(1, 2));
//! assert_eq!(track.max_abs_delta(), rat(1, 2)); // fine-grained: ≤ 2
//! ```

use crate::rational::Rational;
use crate::time::Slot;

/// Drift value established at an era boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriftSample {
    /// `u`: the release slot of the era-opening subtask.
    pub at: Slot,
    /// `drift(T, t)` for all `t` from `u` until the next sample.
    pub drift: Rational,
}

/// Piecewise-constant drift history of a single task.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriftTrack {
    samples: Vec<DriftSample>,
}

impl pfair_json::ToJson for DriftSample {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([("at", self.at.to_json()), ("drift", self.drift.to_json())])
    }
}

impl pfair_json::FromJson for DriftSample {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        Ok(DriftSample {
            at: value.field("at")?,
            drift: value.field("drift")?,
        })
    }
}

impl pfair_json::ToJson for DriftTrack {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([("samples", self.samples.to_json())])
    }
}

impl pfair_json::FromJson for DriftTrack {
    /// Re-validates the time-ordering invariant of the samples.
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let samples: Vec<DriftSample> = value.field("samples")?;
        if samples.windows(2).any(|w| w[0].at > w[1].at) {
            return Err(pfair_json::JsonError::new(
                "drift samples out of time order",
            ));
        }
        Ok(DriftTrack { samples })
    }
}

impl DriftTrack {
    /// An empty track (drift 0 everywhere).
    pub fn new() -> DriftTrack {
        DriftTrack {
            samples: Vec::new(),
        }
    }

    /// Records the drift established at era boundary `u`:
    /// `ps_total − icsw_total`, both evaluated over `[0, u)`.
    ///
    /// # Panics
    /// Panics if samples are recorded out of time order.
    pub fn record(&mut self, u: Slot, ps_total: Rational, icsw_total: Rational) {
        if let Some(last) = self.samples.last() {
            // audit: allow(panic-reach, monotone-time invariant of the drift track, a violation is an engine bug)
            assert!(last.at <= u, "drift samples must be recorded in time order");
        }
        self.samples.push(DriftSample {
            at: u,
            drift: ps_total - icsw_total,
        });
    }

    /// `drift(T, t)`: the most recent sample at or before `t`, or zero if
    /// no era boundary has occurred yet.
    pub fn at(&self, t: Slot) -> Rational {
        self.samples
            .iter()
            .rev()
            .find(|s| s.at <= t)
            .map_or(Rational::ZERO, |s| s.drift)
    }

    /// All recorded samples, in time order.
    pub fn samples(&self) -> &[DriftSample] {
        &self.samples
    }

    /// The drift *added* by each reweighting event: successive
    /// differences of the samples (the first sample differs from the
    /// implicit zero before it). Theorem 5 bounds each of these by 2 in
    /// absolute value under PD²-OI.
    pub fn per_event_deltas(&self) -> Vec<Rational> {
        let mut prev = Rational::ZERO;
        self.samples
            .iter()
            .map(|s| {
                let d = s.drift - prev;
                prev = s.drift;
                d
            })
            .collect()
    }

    /// The largest absolute drift value ever reached.
    pub fn max_abs(&self) -> Rational {
        self.samples
            .iter()
            .map(|s| s.drift.abs())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// The largest absolute per-event drift delta.
    pub fn max_abs_delta(&self) -> Rational {
        self.per_event_deltas()
            .into_iter()
            .map(Rational::abs)
            .max()
            .unwrap_or(Rational::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    /// Fig. 6(b): drift of T is 0 at t = 9 and 1/2 from t = 10 (the rule-O
    /// reweighting event at time 10 halts T_2, losing its 1/2 I_CSW
    /// allocation).
    #[test]
    fn fig6b_drift_steps_at_era_boundary() {
        let mut track = DriftTrack::new();
        track.record(0, Rational::ZERO, Rational::ZERO); // join
        track.record(10, rat(3, 2), Rational::ONE); // reweight enacted at 10
        assert_eq!(track.at(9), Rational::ZERO);
        assert_eq!(track.at(10), rat(1, 2));
        assert_eq!(track.at(100), rat(1, 2));
        assert_eq!(track.per_event_deltas(), vec![Rational::ZERO, rat(1, 2)]);
    }

    /// Fig. 6(d): a weight decrease can produce negative drift (−3/20).
    #[test]
    fn fig6d_negative_drift() {
        let mut track = DriftTrack::new();
        track.record(0, Rational::ZERO, Rational::ZERO);
        track.record(4, rat(2, 5) + rat(3, 3 * 20), Rational::ONE); // placeholder values
                                                                    // What matters structurally: negative drift is representable and
                                                                    // max_abs sees it.
        let mut t2 = DriftTrack::new();
        t2.record(4, rat(17, 20), Rational::ONE);
        assert_eq!(t2.at(4), rat(-3, 20));
        assert_eq!(t2.max_abs(), rat(3, 20));
    }

    /// Fig. 8 / Theorem 3: under PD²-LJ the drift of the 1/10 → 1/2 task
    /// reaches 24/10 in one event — a per-event delta far above the OI
    /// bound of 2.
    #[test]
    fn fig8_lj_per_event_delta() {
        let mut track = DriftTrack::new();
        track.record(0, Rational::ZERO, Rational::ZERO);
        track.record(10, rat(17, 5), Rational::ONE);
        assert_eq!(track.per_event_deltas(), vec![Rational::ZERO, rat(24, 10)]);
        assert_eq!(track.max_abs_delta(), rat(24, 10));
        assert!(track.max_abs_delta() > rat(2, 1));
    }

    #[test]
    fn empty_track_is_zero() {
        let track = DriftTrack::new();
        assert_eq!(track.at(1_000), Rational::ZERO);
        assert_eq!(track.max_abs(), Rational::ZERO);
        assert!(track.per_event_deltas().is_empty());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_samples_panic() {
        let mut track = DriftTrack::new();
        track.record(10, Rational::ZERO, Rational::ZERO);
        track.record(5, Rational::ZERO, Rational::ZERO);
    }
}
