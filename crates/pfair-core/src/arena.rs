//! Dense-id arena primitives: word-scanned membership bitmaps.
//!
//! The engine keys every per-task table by the small dense integer
//! inside [`TaskId`](crate::task::TaskId). Hot per-slot questions —
//! "which tasks are present?", "which tasks ran last slot?" — are
//! one-bit-per-task facts, so they live in an [`IdBitmap`]: a `u64`
//! word vector scanned with `trailing_zeros`, the same occupancy-map
//! idiom the calendar ring and radix ready queue already use for slot
//! buckets. A membership sweep over 10⁶ tasks touches ~16 KB of words
//! instead of walking 10⁶ heterogeneous structs.

/// Bits per occupancy word.
const WORD_BITS: usize = 64;

/// A fixed-universe bitmap over dense ids `0..len`.
///
/// All operations are panic-free: out-of-range ids read as absent and
/// ignore writes (the caller's id validation lives at admission, not
/// here). Equality is structural, so two bitmaps over the same
/// universe compare bit for bit — the busy-span verifier relies on
/// this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdBitmap {
    words: Vec<u64>,
    len: usize,
}

impl IdBitmap {
    /// An all-clear bitmap over ids `0..len`.
    pub fn new(len: usize) -> IdBitmap {
        IdBitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of ids in the universe (not the popcount).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows the universe to `len` ids (no-op when already that big);
    /// new ids start clear.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(WORD_BITS), 0);
        }
    }

    /// Whether `id` is set (absent ids read `false`).
    pub fn get(&self, id: usize) -> bool {
        if id >= self.len {
            return false;
        }
        self.words
            .get(id / WORD_BITS)
            .is_some_and(|w| w & (1u64 << (id % WORD_BITS)) != 0)
    }

    /// Sets or clears `id`; out-of-range ids are ignored.
    pub fn set(&mut self, id: usize, value: bool) {
        if id >= self.len {
            return;
        }
        if let Some(w) = self.words.get_mut(id / WORD_BITS) {
            let bit = 1u64 << (id % WORD_BITS);
            if value {
                *w |= bit;
            } else {
                *w &= !bit;
            }
        }
    }

    /// Number of set ids.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            // audit: allow(lossy-cast, u32 popcount→usize is lossless on the supported targets)
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
    }

    /// The set ids, ascending — a word scan, not a per-id probe.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = wi * WORD_BITS;
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                // audit: allow(lossy-cast, trailing_zeros of a u64 is at most 64)
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(base + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = IdBitmap::new(130);
        assert!(!b.get(0));
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn out_of_range_reads_absent_and_ignores_writes() {
        let mut b = IdBitmap::new(10);
        b.set(10, true);
        b.set(1000, true);
        assert!(!b.get(10));
        assert!(!b.get(1000));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_is_ascending_and_word_spanning() {
        let mut b = IdBitmap::new(200);
        for id in [3, 5, 63, 64, 65, 127, 128, 199] {
            b.set(id, true);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 5, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn grow_preserves_bits_and_clears_new_ids() {
        let mut b = IdBitmap::new(4);
        b.set(2, true);
        b.grow(300);
        assert_eq!(b.len(), 300);
        assert!(b.get(2));
        assert!(!b.get(299));
        b.set(299, true);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![2, 299]);
    }

    #[test]
    fn equality_is_structural() {
        let mut a = IdBitmap::new(70);
        let mut b = IdBitmap::new(70);
        a.set(69, true);
        assert_ne!(a, b);
        b.set(69, true);
        assert_eq!(a, b);
    }
}
