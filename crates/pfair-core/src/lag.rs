//! Lag and LAG: allocation error of an actual schedule against an ideal.
//!
//! For schedules `S` (actual) and `I` (ideal),
//! `lag(S, I, T, t) = A(I, T, 0, t) − A(S, T, 0, t)` measures how far
//! task `T` has fallen behind (positive) or run ahead (negative) of its
//! ideal allocation; `LAG` sums lag over a task set (paper §2, Eqn (1)).
//! A schedule is Pfair iff every task's lag stays strictly inside
//! `(−1, 1)` at all times.
//!
//! These helpers operate on recorded per-slot series (ideal fractional
//! allocations and actual integral allocations), which is how the
//! simulation engine exposes its traces.

use crate::rational::Rational;
use crate::time::Slot;

/// Lag evaluated at a sparse set of slot boundaries, from *cumulative*
/// totals instead of per-slot series.
///
/// Each point is `(t, A(I, T, 0, t), A(S, T, 0, t))` — a boundary slot,
/// the cumulative ideal allocation there, and the number of quanta the
/// actual schedule has granted by then. This is the natural shape of
/// event-driven bookkeeping: the interval trackers expose exact totals
/// at synchronization boundaries without materializing any per-slot
/// series, so lag costs `O(boundaries)` instead of `O(horizon)`.
///
/// Where [`lag_series`] and this function observe the same boundary,
/// they agree exactly (the cumulative total is the per-slot prefix sum,
/// and exact rational addition is associative).
///
/// # Panics
/// Panics if boundary slots decrease.
pub fn lag_at_boundaries(points: &[(Slot, Rational, u64)]) -> Vec<(Slot, Rational)> {
    for w in points.windows(2) {
        assert!(w[0].0 <= w[1].0, "lag boundaries must be non-decreasing");
    }
    points
        .iter()
        .map(|&(t, ideal, sched)| (t, ideal - Rational::from_int(i128::from(sched))))
        .collect()
}

/// Per-slot-boundary lag series of one task.
///
/// Given the ideal per-slot allocations `ideal[t] = A(I, T, t)` and the
/// actual per-slot allocations `actual[t] = A(S, T, t)` (0 or 1 quantum
/// under a Pfair scheduler), returns `lags[t] = lag(T, t)` for
/// `t = 0..=n`, so `lags[0] == 0` and `lags` has one more entry than the
/// inputs.
///
/// # Panics
/// Panics if the two series have different lengths.
pub fn lag_series(ideal: &[Rational], actual: &[u32]) -> Vec<Rational> {
    assert_eq!(ideal.len(), actual.len(), "series length mismatch");
    let mut lags = Vec::with_capacity(ideal.len() + 1);
    let mut lag = Rational::ZERO;
    lags.push(lag);
    for (i, a) in ideal.iter().zip(actual.iter()) {
        lag += *i - Rational::from_int(i128::from(*a));
        lags.push(lag);
    }
    lags
}

/// `LAG(τ, t)` series: the element-wise sum of per-task lag series.
///
/// # Panics
/// Panics if the per-task series have differing lengths.
pub fn total_lag_series(per_task: &[Vec<Rational>]) -> Vec<Rational> {
    let Some(first) = per_task.first() else {
        return Vec::new();
    };
    let n = first.len();
    let mut out = vec![Rational::ZERO; n];
    for series in per_task {
        assert_eq!(series.len(), n, "per-task lag series length mismatch");
        for (o, s) in out.iter_mut().zip(series.iter()) {
            *o += *s;
        }
    }
    out
}

/// `true` iff every value lies strictly inside `(−bound, bound)` — the
/// Pfair condition with `bound = 1`.
pub fn within_open_bound(series: &[Rational], bound: Rational) -> bool {
    series.iter().all(|l| -bound < *l && *l < bound)
}

/// The maximum absolute value of a lag series (`0` for an empty series).
pub fn max_abs(series: &[Rational]) -> Rational {
    series
        .iter()
        .map(|l| l.abs())
        .max()
        .unwrap_or(Rational::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn lag_accumulates_ideal_minus_actual() {
        // Weight-1/2 task scheduled in slots 0 and 2 (windows [0,2), [2,4)).
        let ideal = vec![rat(1, 2); 4];
        let actual = vec![1, 0, 1, 0];
        let lags = lag_series(&ideal, &actual);
        assert_eq!(
            lags,
            vec![
                Rational::ZERO,
                rat(-1, 2),
                Rational::ZERO,
                rat(-1, 2),
                Rational::ZERO,
            ]
        );
        assert!(within_open_bound(&lags, Rational::ONE));
    }

    #[test]
    fn pfair_bound_violated_when_a_quantum_is_late() {
        // Same task never scheduled: lag reaches 1 at t = 2.
        let ideal = vec![rat(1, 2); 4];
        let actual = vec![0, 0, 0, 0];
        let lags = lag_series(&ideal, &actual);
        assert!(!within_open_bound(&lags, Rational::ONE));
        assert_eq!(max_abs(&lags), rat(2, 1));
    }

    #[test]
    fn total_lag_sums_tasks() {
        let a = vec![rat(1, 4), rat(-1, 4)];
        let b = vec![rat(1, 4), rat(1, 4)];
        let total = total_lag_series(&[a, b]);
        assert_eq!(total, vec![rat(1, 2), Rational::ZERO]);
    }

    #[test]
    fn boundary_lag_matches_series_sampling() {
        // Weight-2/5 task scheduled in slots 1 and 3 over [0, 5).
        let ideal = vec![rat(2, 5); 5];
        let actual = vec![0, 1, 0, 1, 0];
        let lags = lag_series(&ideal, &actual);

        // The same schedule observed only at boundaries 0, 2, and 5.
        let mut cum_ideal = Rational::ZERO;
        let mut cum_sched = 0u64;
        let mut points = Vec::new();
        for t in 0..=5u32 {
            if [0, 2, 5].contains(&t) {
                points.push((i64::from(t), cum_ideal, cum_sched));
            }
            if let Some(i) = ideal.get(t as usize) {
                cum_ideal += *i;
                cum_sched += u64::from(actual[t as usize]);
            }
        }
        let sparse = lag_at_boundaries(&points);
        assert_eq!(sparse.len(), 3);
        for (t, lag) in sparse {
            assert_eq!(lag, lags[usize::try_from(t).unwrap()], "boundary {t}");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_boundaries_panic() {
        let _ = lag_at_boundaries(&[(5, Rational::ZERO, 0), (3, Rational::ZERO, 0)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(total_lag_series(&[]).is_empty());
        assert_eq!(max_abs(&[]), Rational::ZERO);
        assert_eq!(lag_series(&[], &[]), vec![Rational::ZERO]);
    }
}
