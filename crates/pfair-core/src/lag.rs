//! Lag and LAG: allocation error of an actual schedule against an ideal.
//!
//! For schedules `S` (actual) and `I` (ideal),
//! `lag(S, I, T, t) = A(I, T, 0, t) − A(S, T, 0, t)` measures how far
//! task `T` has fallen behind (positive) or run ahead (negative) of its
//! ideal allocation; `LAG` sums lag over a task set (paper §2, Eqn (1)).
//! A schedule is Pfair iff every task's lag stays strictly inside
//! `(−1, 1)` at all times.
//!
//! These helpers operate on recorded per-slot series (ideal fractional
//! allocations and actual integral allocations), which is how the
//! simulation engine exposes its traces.

use crate::rational::Rational;

/// Per-slot-boundary lag series of one task.
///
/// Given the ideal per-slot allocations `ideal[t] = A(I, T, t)` and the
/// actual per-slot allocations `actual[t] = A(S, T, t)` (0 or 1 quantum
/// under a Pfair scheduler), returns `lags[t] = lag(T, t)` for
/// `t = 0..=n`, so `lags[0] == 0` and `lags` has one more entry than the
/// inputs.
///
/// # Panics
/// Panics if the two series have different lengths.
pub fn lag_series(ideal: &[Rational], actual: &[u32]) -> Vec<Rational> {
    assert_eq!(ideal.len(), actual.len(), "series length mismatch");
    let mut lags = Vec::with_capacity(ideal.len() + 1);
    let mut lag = Rational::ZERO;
    lags.push(lag);
    for (i, a) in ideal.iter().zip(actual.iter()) {
        lag += *i - Rational::from_int(i128::from(*a));
        lags.push(lag);
    }
    lags
}

/// `LAG(τ, t)` series: the element-wise sum of per-task lag series.
///
/// # Panics
/// Panics if the per-task series have differing lengths.
pub fn total_lag_series(per_task: &[Vec<Rational>]) -> Vec<Rational> {
    let Some(first) = per_task.first() else {
        return Vec::new();
    };
    let n = first.len();
    let mut out = vec![Rational::ZERO; n];
    for series in per_task {
        assert_eq!(series.len(), n, "per-task lag series length mismatch");
        for (o, s) in out.iter_mut().zip(series.iter()) {
            *o += *s;
        }
    }
    out
}

/// `true` iff every value lies strictly inside `(−bound, bound)` — the
/// Pfair condition with `bound = 1`.
pub fn within_open_bound(series: &[Rational], bound: Rational) -> bool {
    series.iter().all(|l| -bound < *l && *l < bound)
}

/// The maximum absolute value of a lag series (`0` for an empty series).
pub fn max_abs(series: &[Rational]) -> Rational {
    series
        .iter()
        .map(|l| l.abs())
        .max()
        .unwrap_or(Rational::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn lag_accumulates_ideal_minus_actual() {
        // Weight-1/2 task scheduled in slots 0 and 2 (windows [0,2), [2,4)).
        let ideal = vec![rat(1, 2); 4];
        let actual = vec![1, 0, 1, 0];
        let lags = lag_series(&ideal, &actual);
        assert_eq!(
            lags,
            vec![
                Rational::ZERO,
                rat(-1, 2),
                Rational::ZERO,
                rat(-1, 2),
                Rational::ZERO,
            ]
        );
        assert!(within_open_bound(&lags, Rational::ONE));
    }

    #[test]
    fn pfair_bound_violated_when_a_quantum_is_late() {
        // Same task never scheduled: lag reaches 1 at t = 2.
        let ideal = vec![rat(1, 2); 4];
        let actual = vec![0, 0, 0, 0];
        let lags = lag_series(&ideal, &actual);
        assert!(!within_open_bound(&lags, Rational::ONE));
        assert_eq!(max_abs(&lags), rat(2, 1));
    }

    #[test]
    fn total_lag_sums_tasks() {
        let a = vec![rat(1, 4), rat(-1, 4)];
        let b = vec![rat(1, 4), rat(1, 4)];
        let total = total_lag_series(&[a, b]);
        assert_eq!(total, vec![rat(1, 2), Rational::ZERO]);
    }

    #[test]
    fn empty_inputs() {
        assert!(total_lag_series(&[]).is_empty());
        assert_eq!(max_abs(&[]), Rational::ZERO);
        assert_eq!(lag_series(&[], &[]), vec![Rational::ZERO]);
    }
}
