//! Feasibility and schedulability analysis.
//!
//! Pfair scheduling's central result (Baruah, Gehrke & Plaxton \[3\])
//! makes multiprocessor feasibility a pure utilization test: a periodic
//! task set is schedulable on `M` processors iff its total weight is at
//! most `M` — condition (W) of the paper, extended to adaptable systems
//! by policing weight-change requests. This module provides that test,
//! the related capacity arithmetic the admission controller builds on,
//! and hyperperiod utilities for exact whole-schedule assertions in
//! tests and benchmarks.
//!
//! ```
//! use pfair_core::{rat, Weight};
//! use pfair_core::analysis::{hyperperiod, is_feasible, min_processors};
//!
//! let set = [Weight::new(rat(8, 11)), Weight::new(rat(8, 11)), Weight::new(rat(6, 11))];
//! assert!(is_feasible(&set, 2));      // Σ = 2 exactly
//! assert_eq!(min_processors(&set), 2);
//! assert_eq!(hyperperiod(&set), 11);
//! ```

use crate::rational::Rational;
use crate::weight::Weight;

/// Total weight (utilization) of a task set.
pub fn total_weight(weights: &[Weight]) -> Rational {
    weights
        .iter()
        .fold(Rational::ZERO, |acc, w| acc + w.value())
}

/// The Pfair feasibility test: schedulable on `processors` iff the
/// total weight is at most `M` (and, trivially, every weight ≤ 1,
/// which [`Weight`] already guarantees).
pub fn is_feasible(weights: &[Weight], processors: u32) -> bool {
    total_weight(weights) <= Rational::from_int(i128::from(processors))
}

/// The minimum number of processors on which the set is feasible:
/// `⌈Σ weights⌉`.
pub fn min_processors(weights: &[Weight]) -> u32 {
    // Saturating: a set whose total weight exceeds u32::MAX processors
    // is out of scope for every caller (and for the paper).
    u32::try_from(total_weight(weights).ceil().max(0)).unwrap_or(u32::MAX)
}

/// Spare capacity on `processors` processors (negative when infeasible).
pub fn spare_capacity(weights: &[Weight], processors: u32) -> Rational {
    Rational::from_int(i128::from(processors)) - total_weight(weights)
}

/// Least common multiple of two positive integers.
fn lcm(a: i128, b: i128) -> i128 {
    a / gcd(a, b) * b
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let r = a % b; // audit: allow(panic-reach, the loop guard proves b nonzero)
        a = b;
        b = r;
    }
    a
}

/// Overflow-checked least common multiple of two positive integers:
/// `None` when `lcm(a, b)` does not fit in `i128` (or an argument is
/// non-positive, for which no lcm is defined here).
///
/// The engine's busy-span batcher folds this over task periods to find
/// the steady-state repeat length; near-coprime denominators can push
/// the product past any fixed width, so the overflow must surface as a
/// value (the span is simply not batched), never as wraparound.
pub fn checked_lcm(a: i128, b: i128) -> Option<i128> {
    if a <= 0 || b <= 0 {
        return None;
    }
    (a / gcd(a, b)).checked_mul(b) // audit: allow(panic-reach, gcd of two positive integers is positive)
}

/// Overflow-checked [`hyperperiod`]: `None` on an empty set or when the
/// least common multiple of the periods exceeds `i128`.
pub fn checked_hyperperiod(weights: &[Weight]) -> Option<i128> {
    if weights.is_empty() {
        return None;
    }
    weights
        .iter()
        .try_fold(1i128, |acc, w| checked_lcm(acc, w.value().denom()))
}

/// The hyperperiod of a task set: the least common multiple of the
/// weights' periods (denominators in lowest terms). Over one
/// hyperperiod, a weight-`e/p` task receives exactly
/// `hyperperiod · e / p` quanta, and the window pattern repeats.
///
/// # Panics
/// Panics on an empty set (no hyperperiod exists).
pub fn hyperperiod(weights: &[Weight]) -> i128 {
    assert!(!weights.is_empty(), "hyperperiod of an empty task set");
    weights.iter().map(|w| w.value().denom()).fold(1i128, lcm)
}

/// Exact quanta a task of weight `w` receives over `slots` slots of an
/// ideal schedule (`w · slots`; integral whenever `slots` is a multiple
/// of the period).
pub fn ideal_quanta(weight: Weight, slots: i64) -> Rational {
    weight.value() * i128::from(slots)
}

/// Classifies a task set for the reweighting rules: all-light sets can
/// reweight freely; sets with heavy tasks schedule correctly but those
/// tasks must keep their weights (paper §2/§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetClass {
    /// Every weight ≤ 1/2: the full reweighting machinery applies.
    AllLight,
    /// Some weight > 1/2: heavy tasks are static.
    ContainsHeavy,
}

/// Classifies the set.
pub fn classify(weights: &[Weight]) -> SetClass {
    if weights.iter().all(|w| w.is_light()) {
        SetClass::AllLight
    } else {
        SetClass::ContainsHeavy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn w(n: i128, d: i128) -> Weight {
        Weight::new(rat(n, d))
    }

    #[test]
    fn feasibility_is_a_utilization_test() {
        let set = [w(1, 2), w(1, 2), w(1, 2), w(1, 2)];
        assert!(is_feasible(&set, 2));
        assert!(!is_feasible(&set, 1));
        assert_eq!(min_processors(&set), 2);
        assert_eq!(spare_capacity(&set, 2), Rational::ZERO);
        assert_eq!(spare_capacity(&set, 3), Rational::ONE);
    }

    #[test]
    fn exactly_full_is_feasible() {
        // The classic 8/11 + 8/11 + 6/11 = 2 set.
        let set = [w(8, 11), w(8, 11), w(6, 11)];
        assert!(is_feasible(&set, 2));
        assert_eq!(total_weight(&set), rat(2, 1));
        assert_eq!(min_processors(&set), 2);
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        assert_eq!(hyperperiod(&[w(1, 2), w(1, 3)]), 6);
        assert_eq!(hyperperiod(&[w(5, 16), w(2, 5)]), 80);
        assert_eq!(hyperperiod(&[w(3, 20), w(1, 2)]), 20);
        // Reduction matters: 2/4 has period 2.
        assert_eq!(hyperperiod(&[w(2, 4)]), 2);
    }

    #[test]
    fn ideal_quanta_over_hyperperiod_is_integral() {
        let set = [w(5, 16), w(2, 5)];
        let h = hyperperiod(&set) as i64;
        for t in set {
            assert!(ideal_quanta(t, h).is_integer());
        }
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&[w(1, 2), w(3, 20)]), SetClass::AllLight);
        assert_eq!(classify(&[w(1, 2), w(2, 3)]), SetClass::ContainsHeavy);
    }

    #[test]
    #[should_panic(expected = "empty task set")]
    fn empty_hyperperiod_panics() {
        let _ = hyperperiod(&[]);
    }

    #[test]
    fn checked_lcm_agrees_with_unchecked_in_range() {
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(7, 7), Some(7));
        assert_eq!(checked_lcm(1, 1), Some(1));
        assert_eq!(checked_lcm(0, 3), None);
        assert_eq!(checked_lcm(-2, 3), None);
    }

    #[test]
    fn checked_lcm_surfaces_overflow() {
        // Two large coprime values whose product exceeds i128.
        let a = (1i128 << 80) + 1; // odd
        let b = 1i128 << 79; // power of two, coprime with a
        assert_eq!(checked_lcm(a, b), None);
        // i128::MAX is its own lcm with 1 and with itself.
        assert_eq!(checked_lcm(i128::MAX, 1), Some(i128::MAX));
        assert_eq!(checked_lcm(i128::MAX, i128::MAX), Some(i128::MAX));
    }

    #[test]
    fn checked_hyperperiod_matches_hyperperiod() {
        let set = [w(5, 16), w(2, 5), w(3, 20)];
        assert_eq!(checked_hyperperiod(&set), Some(hyperperiod(&set)));
        assert_eq!(checked_hyperperiod(&[]), None);
    }

    mod prop {
        use super::super::{checked_lcm, gcd, lcm};
        use proptest::prelude::*;

        proptest! {
            /// Near `i128::MAX` the checked lcm either returns the exact
            /// lcm (verified divisible by both arguments) or `None` —
            /// never a wrapped value.
            #[test]
            fn checked_lcm_near_i128_max(
                a in (i128::MAX - 1_000_000)..i128::MAX,
                b in (0i128..2_000_000).prop_map(|x| {
                    // Half the domain small, half hugging i128::MAX.
                    if x < 1_000_000 { x + 1 } else { i128::MAX - (x - 1_000_000) }
                }),
            ) {
                match checked_lcm(a, b) {
                    Some(l) => {
                        prop_assert!(l > 0);
                        prop_assert_eq!(l % a, 0);
                        prop_assert_eq!(l % b, 0);
                        // Minimality against the closed form.
                        prop_assert_eq!(l, a / gcd(a, b) * b);
                    }
                    None => {
                        // Overflow is genuine: the exact product of the
                        // reduced pair does not fit.
                        let red = a / gcd(a, b);
                        prop_assert!(red.checked_mul(b).is_none());
                    }
                }
            }

            /// In the small domain the checked and unchecked versions
            /// agree exactly.
            #[test]
            fn checked_lcm_agrees_small(a in 1i128..10_000, b in 1i128..10_000) {
                prop_assert_eq!(checked_lcm(a, b), Some(lcm(a, b)));
            }
        }
    }
}
