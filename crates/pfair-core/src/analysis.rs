//! Feasibility and schedulability analysis.
//!
//! Pfair scheduling's central result (Baruah, Gehrke & Plaxton \[3\])
//! makes multiprocessor feasibility a pure utilization test: a periodic
//! task set is schedulable on `M` processors iff its total weight is at
//! most `M` — condition (W) of the paper, extended to adaptable systems
//! by policing weight-change requests. This module provides that test,
//! the related capacity arithmetic the admission controller builds on,
//! and hyperperiod utilities for exact whole-schedule assertions in
//! tests and benchmarks.
//!
//! ```
//! use pfair_core::{rat, Weight};
//! use pfair_core::analysis::{hyperperiod, is_feasible, min_processors};
//!
//! let set = [Weight::new(rat(8, 11)), Weight::new(rat(8, 11)), Weight::new(rat(6, 11))];
//! assert!(is_feasible(&set, 2));      // Σ = 2 exactly
//! assert_eq!(min_processors(&set), 2);
//! assert_eq!(hyperperiod(&set), 11);
//! ```

use crate::rational::Rational;
use crate::weight::Weight;

/// Total weight (utilization) of a task set.
pub fn total_weight(weights: &[Weight]) -> Rational {
    weights
        .iter()
        .fold(Rational::ZERO, |acc, w| acc + w.value())
}

/// The Pfair feasibility test: schedulable on `processors` iff the
/// total weight is at most `M` (and, trivially, every weight ≤ 1,
/// which [`Weight`] already guarantees).
pub fn is_feasible(weights: &[Weight], processors: u32) -> bool {
    total_weight(weights) <= Rational::from_int(i128::from(processors))
}

/// The minimum number of processors on which the set is feasible:
/// `⌈Σ weights⌉`.
pub fn min_processors(weights: &[Weight]) -> u32 {
    // Saturating: a set whose total weight exceeds u32::MAX processors
    // is out of scope for every caller (and for the paper).
    u32::try_from(total_weight(weights).ceil().max(0)).unwrap_or(u32::MAX)
}

/// Spare capacity on `processors` processors (negative when infeasible).
pub fn spare_capacity(weights: &[Weight], processors: u32) -> Rational {
    Rational::from_int(i128::from(processors)) - total_weight(weights)
}

/// Least common multiple of two positive integers.
fn lcm(a: i128, b: i128) -> i128 {
    fn gcd(mut a: i128, mut b: i128) -> i128 {
        while b != 0 {
            let r = a % b;
            a = b;
            b = r;
        }
        a
    }
    a / gcd(a, b) * b
}

/// The hyperperiod of a task set: the least common multiple of the
/// weights' periods (denominators in lowest terms). Over one
/// hyperperiod, a weight-`e/p` task receives exactly
/// `hyperperiod · e / p` quanta, and the window pattern repeats.
///
/// # Panics
/// Panics on an empty set (no hyperperiod exists).
pub fn hyperperiod(weights: &[Weight]) -> i128 {
    assert!(!weights.is_empty(), "hyperperiod of an empty task set");
    weights.iter().map(|w| w.value().denom()).fold(1i128, lcm)
}

/// Exact quanta a task of weight `w` receives over `slots` slots of an
/// ideal schedule (`w · slots`; integral whenever `slots` is a multiple
/// of the period).
pub fn ideal_quanta(weight: Weight, slots: i64) -> Rational {
    weight.value() * i128::from(slots)
}

/// Classifies a task set for the reweighting rules: all-light sets can
/// reweight freely; sets with heavy tasks schedule correctly but those
/// tasks must keep their weights (paper §2/§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetClass {
    /// Every weight ≤ 1/2: the full reweighting machinery applies.
    AllLight,
    /// Some weight > 1/2: heavy tasks are static.
    ContainsHeavy,
}

/// Classifies the set.
pub fn classify(weights: &[Weight]) -> SetClass {
    if weights.iter().all(|w| w.is_light()) {
        SetClass::AllLight
    } else {
        SetClass::ContainsHeavy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn w(n: i128, d: i128) -> Weight {
        Weight::new(rat(n, d))
    }

    #[test]
    fn feasibility_is_a_utilization_test() {
        let set = [w(1, 2), w(1, 2), w(1, 2), w(1, 2)];
        assert!(is_feasible(&set, 2));
        assert!(!is_feasible(&set, 1));
        assert_eq!(min_processors(&set), 2);
        assert_eq!(spare_capacity(&set, 2), Rational::ZERO);
        assert_eq!(spare_capacity(&set, 3), Rational::ONE);
    }

    #[test]
    fn exactly_full_is_feasible() {
        // The classic 8/11 + 8/11 + 6/11 = 2 set.
        let set = [w(8, 11), w(8, 11), w(6, 11)];
        assert!(is_feasible(&set, 2));
        assert_eq!(total_weight(&set), rat(2, 1));
        assert_eq!(min_processors(&set), 2);
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        assert_eq!(hyperperiod(&[w(1, 2), w(1, 3)]), 6);
        assert_eq!(hyperperiod(&[w(5, 16), w(2, 5)]), 80);
        assert_eq!(hyperperiod(&[w(3, 20), w(1, 2)]), 20);
        // Reduction matters: 2/4 has period 2.
        assert_eq!(hyperperiod(&[w(2, 4)]), 2);
    }

    #[test]
    fn ideal_quanta_over_hyperperiod_is_integral() {
        let set = [w(5, 16), w(2, 5)];
        let h = hyperperiod(&set) as i64;
        for t in set {
            assert!(ideal_quanta(t, h).is_integer());
        }
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&[w(1, 2), w(3, 20)]), SetClass::AllLight);
        assert_eq!(classify(&[w(1, 2), w(2, 3)]), SetClass::ContainsHeavy);
    }

    #[test]
    #[should_panic(expected = "empty task set")]
    fn empty_hyperperiod_panics() {
        let _ = hyperperiod(&[]);
    }
}
