//! Task and subtask identities and static task descriptions.
//!
//! Pfair scheduling treats each quantum of a task's execution — a
//! *subtask* `T_i`, `i ≥ 1` — as the schedulable entity. This module
//! defines the identifier types shared by the whole workspace and the
//! static description of a task joining a system ([`TaskSpec`]).

use crate::rational::Rational;
use crate::time::Slot;
use crate::weight::Weight;
use core::fmt;

/// Dense, copyable task identifier. Task ids index per-task state
/// vectors inside the schedulers, so they are assigned densely from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl pfair_json::ToJson for TaskId {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::Json::Int(i128::from(self.0))
    }
}

impl pfair_json::FromJson for TaskId {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        u32::from_json(value).map(TaskId)
    }
}

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
    }

    /// Builds an id from a container index (inverse of [`TaskId::idx`]).
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> TaskId {
        // audit: allow(panic, task counts are u32-bounded by construction)
        TaskId(u32::try_from(i).expect("task index exceeds u32"))
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A reference to subtask `T_i`: the `index`-th quantum of task `task`
/// (1-based, as in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubtaskRef {
    /// Owning task.
    pub task: TaskId,
    /// 1-based subtask index `i` of `T_i`.
    pub index: u64,
}

impl SubtaskRef {
    /// Constructs `T_i` for the given task.
    pub fn new(task: TaskId, index: u64) -> SubtaskRef {
        debug_assert!(index >= 1, "subtask indices are 1-based");
        SubtaskRef { task, index }
    }
}

impl fmt::Debug for SubtaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.task, self.index)
    }
}

impl fmt::Display for SubtaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.task, self.index)
    }
}

/// Static description of a task at the moment it joins the system.
///
/// Everything dynamic — weight changes, intra-sporadic separations,
/// halting — is expressed through scheduler events, not here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// The task's identity.
    pub id: TaskId,
    /// Initial weight (the paper treats the join as the first enacted
    /// weight change).
    pub weight: Weight,
    /// The slot at which the task joins; `r(T_1)` equals this time.
    pub join_at: Slot,
}

impl TaskSpec {
    /// Convenience constructor.
    pub fn new(id: TaskId, weight: Weight, join_at: Slot) -> TaskSpec {
        TaskSpec {
            id,
            weight,
            join_at,
        }
    }

    /// A periodic task `(e, p)` joining at time 0, the classic Pfair
    /// setting of paper §2.
    pub fn periodic(id: TaskId, exec: i128, period: i128) -> TaskSpec {
        TaskSpec {
            id,
            weight: Weight::new(Rational::new(exec, period)),
            join_at: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn ids_format_like_the_paper() {
        let t = TaskId(3);
        assert_eq!(format!("{t}"), "T3");
        let s = SubtaskRef::new(t, 2);
        assert_eq!(format!("{s}"), "T3_2");
        assert_eq!(s.task.idx(), 3);
    }

    #[test]
    fn periodic_spec_weight() {
        let spec = TaskSpec::periodic(TaskId(0), 5, 16);
        assert_eq!(spec.weight.value(), rat(5, 16));
        assert_eq!(spec.join_at, 0);
    }

    #[test]
    fn subtask_ordering_is_by_task_then_index() {
        let a = SubtaskRef::new(TaskId(0), 2);
        let b = SubtaskRef::new(TaskId(0), 3);
        let c = SubtaskRef::new(TaskId(1), 1);
        assert!(a < b);
        assert!(b < c);
    }
}
