//! Task weights (processor shares).
//!
//! A task `T` with integer execution cost `e` and period `p` has weight
//! `wt(T) = e/p`, with `0 < wt(T) ≤ 1`. The paper (and this library's
//! reweighting rules) restrict attention to *light* tasks, those of
//! weight at most `1/2`; heavy tasks need the group-deadline machinery
//! deferred to the first author's dissertation. The [`Weight`] type
//! enforces the open-closed range `(0, 1]` at construction, and
//! [`Weight::is_light`] distinguishes the supported class.

use crate::rational::Rational;
use core::fmt;

/// A validated task weight: a rational in `(0, 1]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Weight(Rational);

impl pfair_json::ToJson for Weight {
    fn to_json(&self) -> pfair_json::Json {
        self.0.to_json()
    }
}

impl pfair_json::FromJson for Weight {
    /// Deserialization re-validates the `(0, 1]` range, so untrusted
    /// data cannot construct an out-of-range weight.
    fn from_json(value: &pfair_json::Json) -> Result<Weight, pfair_json::JsonError> {
        let value = Rational::from_json(value)?;
        Weight::try_new(value).map_err(|e| pfair_json::JsonError::new(e.to_string()))
    }
}

/// Error returned when a ratio outside `(0, 1]` is used as a weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightRangeError(pub Rational);

impl fmt::Display for WeightRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "weight {} outside (0, 1]", self.0)
    }
}

impl std::error::Error for WeightRangeError {}

impl Weight {
    /// The maximum weight the fine-grained reweighting rules support
    /// (`1/2`; see paper §2, "we focus exclusively on tasks with weight
    /// at most 1/2").
    pub fn half() -> Weight {
        Weight(Rational::new(1, 2))
    }

    /// Validates `value ∈ (0, 1]`.
    pub fn try_new(value: Rational) -> Result<Weight, WeightRangeError> {
        if value.is_positive() && value <= Rational::ONE {
            Ok(Weight(value))
        } else {
            Err(WeightRangeError(value))
        }
    }

    /// Constructs a weight, panicking when `value ∉ (0, 1]`. Preferred in
    /// tests and example code; library paths use [`Weight::try_new`].
    pub fn new(value: Rational) -> Weight {
        // audit: allow(panic, documented panicking constructor; library paths use try_new)
        Weight::try_new(value).expect("weight out of range")
    }

    /// Constructs the weight `e/p` of a periodic task with execution cost
    /// `e` and period `p`.
    pub fn from_ratio(e: i128, p: i128) -> Weight {
        Weight::new(Rational::new(e, p))
    }

    /// The underlying rational value.
    #[inline]
    pub fn value(self) -> Rational {
        self.0
    }

    /// `true` iff the weight is at most `1/2` (the class the reweighting
    /// rules of this library support).
    #[inline]
    pub fn is_light(self) -> bool {
        self.0 <= Rational::new(1, 2)
    }

    /// `true` iff the weight exceeds `1/2`.
    #[inline]
    pub fn is_heavy(self) -> bool {
        !self.is_light()
    }

    /// Lossy conversion for statistics/plotting.
    #[inline]
    #[allow(clippy::disallowed_types)]
    // audit: allow(float, report-only conversion; never feeds scheduling)
    pub fn to_f64(self) -> f64 {
        self.0.to_f64()
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Weight> for Rational {
    fn from(w: Weight) -> Rational {
        w.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn range_validation() {
        assert!(Weight::try_new(rat(1, 2)).is_ok());
        assert!(Weight::try_new(Rational::ONE).is_ok());
        assert!(Weight::try_new(rat(1, 1000)).is_ok());
        assert_eq!(
            Weight::try_new(Rational::ZERO),
            Err(WeightRangeError(Rational::ZERO))
        );
        assert_eq!(Weight::try_new(rat(3, 2)), Err(WeightRangeError(rat(3, 2))));
        assert_eq!(
            Weight::try_new(rat(-1, 2)),
            Err(WeightRangeError(rat(-1, 2)))
        );
    }

    #[test]
    fn light_heavy_split() {
        assert!(Weight::from_ratio(1, 2).is_light());
        assert!(Weight::from_ratio(3, 19).is_light());
        assert!(Weight::from_ratio(2, 3).is_heavy());
        assert!(Weight::from_ratio(1, 1).is_heavy());
        assert_eq!(Weight::half().value(), rat(1, 2));
    }

    #[test]
    fn periodic_ratio_constructor() {
        // A periodic task with e = 5, p = 16 has weight 5/16 (Fig. 1).
        assert_eq!(Weight::from_ratio(5, 16).value(), rat(5, 16));
        // Reduction happens: 2/4 == 1/2.
        assert_eq!(Weight::from_ratio(2, 4), Weight::half());
    }

    #[test]
    fn display_and_error_display() {
        assert_eq!(format!("{}", Weight::from_ratio(3, 19)), "3/19");
        let err = Weight::try_new(rat(5, 2)).unwrap_err();
        assert_eq!(format!("{err}"), "weight 5/2 outside (0, 1]");
    }
}
