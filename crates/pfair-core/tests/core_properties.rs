//! Property-based tests of the core model invariants:
//!
//! * Rational arithmetic laws (the exactness everything rests on).
//! * Window-structure facts used throughout the paper's proofs.
//! * The appendix's allocation facts AF1–AF4 for the `I_SW`/`I_CSW`
//!   trackers under randomized weights, separations, weight changes,
//!   and halts.

use pfair_core::ideal::IswTracker;
use pfair_core::rational::{rat, Rational};
use pfair_core::weight::Weight;
use pfair_core::window::{b_bit, group_deadline, window_in_era, window_len};
use proptest::prelude::*;

fn arb_rat() -> impl Strategy<Value = Rational> {
    (-2000i128..=2000, 1i128..=400).prop_map(|(n, d)| rat(n, d))
}

fn arb_weight() -> impl Strategy<Value = Weight> {
    (1i128..=30, 2i128..=60).prop_map(|(n, d)| Weight::new(rat(n.min(d), d.max(n))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- rational laws -------------------------------------------------

    #[test]
    fn rational_add_is_commutative_and_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_mul_distributes(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_sub_is_inverse_of_add(a in arb_rat(), b in arb_rat()) {
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a - a, Rational::ZERO);
    }

    #[test]
    fn rational_ordering_is_total_and_compatible(a in arb_rat(), b in arb_rat()) {
        prop_assert_eq!(a < b, (b - a).is_positive());
        prop_assert_eq!(a == b, (a - b).is_zero());
    }

    #[test]
    fn floor_ceil_bracket(a in arb_rat()) {
        let f = Rational::from_int(a.floor());
        let c = Rational::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!((c - f) <= Rational::ONE);
        prop_assert_eq!(a.is_integer(), f == c);
    }

    #[test]
    fn div_floor_ceil_int_consistency(n in 0i128..500, num in 1i128..40, den in 1i128..80) {
        let w = rat(num.min(den), den.max(num)); // weight ≤ 1
        let fl = w.div_floor_int(n);
        let ce = w.div_ceil_int(n);
        prop_assert!(fl <= ce);
        // fl = ⌊n/w⌋ means fl·w ≤ n < (fl+1)·w.
        prop_assert!(w * fl <= Rational::from_int(n));
        prop_assert!(w * (fl + 1) > Rational::from_int(n) || w * fl == Rational::from_int(n));
    }

    // ---- window facts --------------------------------------------------

    #[test]
    fn window_lengths_bracket_inverse_weight(w in arb_weight(), k in 1u64..200) {
        let len = window_len(w, k);
        let inv = w.value().recip();
        // ⌈1/w⌉ ≤ |w(T_i)| ≤ ⌈1/w⌉ + 1 (standard Pfair fact).
        prop_assert!(Rational::from_int(i128::from(len)) >= inv.ceil().into());
        prop_assert!(len <= inv.ceil() as i64 + 1);
    }

    #[test]
    fn consecutive_windows_overlap_exactly_b(w in arb_weight(), k in 1u64..100) {
        let a = window_in_era(w, k, 0);
        let b = window_in_era(w, k + 1, a.next_release());
        let overlap = a.deadline - b.release;
        prop_assert_eq!(overlap, if a.b { 1 } else { 0 });
    }

    #[test]
    fn windows_tile_one_quantum_each(w in arb_weight()) {
        // Over one period p (weight e/p), exactly e subtasks complete.
        let e = w.value().numer() as u64;
        let p = w.value().denom() as i64;
        let last = window_in_era(
            w,
            e,
            (1..e).fold(0i64, |r, k| window_in_era(w, k, r).next_release()),
        );
        prop_assert_eq!(last.deadline, p);
        prop_assert!(!last.b); // e/w = p is an integer
    }

    #[test]
    fn group_deadline_bounds(w in arb_weight(), k in 1u64..60) {
        let win = window_in_era(w, k, 0);
        let gd = group_deadline(w, k, 0);
        prop_assert!(gd >= win.deadline - 1);
        if w.is_light() {
            prop_assert_eq!(gd, win.deadline);
        } else {
            // The cascade cannot extend past the end of the period after
            // the subtask's own deadline (a b = 0 boundary exists there).
            let p = w.value().denom() as i64;
            prop_assert!(gd <= win.deadline + p);
        }
    }

    // ---- I_SW tracker invariants (AF1–AF4) ------------------------------

    /// Drives one task's tracker with random separations and a single
    /// mid-run weight change, checking AF1 (per-slot allocation ≤ swt)
    /// and completion/accounting invariants.
    #[test]
    fn isw_af_invariants(
        w0 in arb_weight(),
        w1 in arb_weight(),
        seps in prop::collection::vec(0i64..3, 4..10),
        change_at_subtask in 2usize..4,
    ) {
        let horizon = 400i64;
        let mut tr = IswTracker::new_keeping_history(w0.value(), 0);
        // Build the release chain with separations; enact a weight
        // change at the completion of subtask `change_at_subtask` by
        // simply switching swt at its deadline (a decrease-style era).
        let mut release = 0i64;
        let mut weight = w0;
        let mut era_base = 0u64;
        let mut change_slot = i64::MAX;
        let mut sub_windows = Vec::new();
        for (i, sep) in seps.iter().enumerate() {
            let index = i as u64 + 1;
            let rank = index - era_base;
            let win = window_in_era(weight, rank, release);
            let era_first = rank == 1;
            let pred_b = if era_first { false } else { b_bit(weight, rank - 1) };
            tr.add_subtask(index, win.release, era_first, pred_b);
            sub_windows.push(win);
            // Weight change after the chosen subtask: new era.
            if i + 1 == change_at_subtask {
                change_slot = win.deadline;
                era_base = index;
                weight = w1;
                release = win.deadline + 1;
            } else {
                release = win.next_release() + sep;
            }
            // Stop adding once a subtask might not complete within the
            // horizon: windows are at most den + 1 ≤ 61 slots long here.
            if release > horizon - 70 {
                break;
            }
        }
        let n = sub_windows.len();
        let mut completions = 0usize;
        for t in 0..horizon {
            if t == change_slot {
                tr.set_swt(w1.value());
            }
            let (slot_alloc, done) = tr.advance(t);
            // AF1: per-slot task allocation never exceeds swt.
            prop_assert!(slot_alloc <= tr.swt(), "slot {}: {} > {}", t, slot_alloc, tr.swt());
            prop_assert!(!slot_alloc.is_negative());
            completions += done.len();
        }
        // Every added subtask eventually completes with exactly one
        // quantum (AF3-adjacent: D exists and ≤ its era deadline).
        prop_assert_eq!(completions, n);
        prop_assert_eq!(tr.isw_total(), Rational::from_int(n as i128));
        prop_assert_eq!(tr.icsw_total(), tr.isw_total()); // nothing halted
    }

    /// Halting: I_CSW takes back exactly the halted subtask's accruals
    /// (AF4: zero allocations outside [r, D)).
    #[test]
    fn halt_accounting(w in arb_weight(), halt_after in 1i64..6) {
        // Slot history is opt-in since the interval-advancement change;
        // this property reads the per-slot breakdown, so enable it.
        let mut tr = IswTracker::new_keeping_history(w.value(), 0).with_slot_history();
        tr.add_subtask(1, 0, true, false);
        let halt_at = halt_after.min(window_in_era(w, 1, 0).deadline - 1);
        for t in 0..halt_at {
            tr.advance(t);
        }
        let cum_before = tr.subtask_cum(1).unwrap();
        prop_assume!(cum_before < Rational::ONE); // still incomplete
        let rec = tr.halt(1, halt_at);
        prop_assert_eq!(rec.lost, cum_before);
        let per_slot_sum = rec
            .slot_allocs
            .iter()
            .fold(Rational::ZERO, |a, (_, x)| a + *x);
        prop_assert_eq!(per_slot_sum, cum_before);
        // After the halt, the subtask accrues nothing.
        for t in halt_at..halt_at + 5 {
            let (alloc, _) = tr.advance(t);
            prop_assert_eq!(alloc, Rational::ZERO);
        }
        prop_assert_eq!(tr.icsw_total(), Rational::ZERO);
    }
}

// ---- overflow boundaries: operands near ±i128::MAX ----------------------
//
// The Rational contract is "exact or a descriptive panic — never a silent
// wrap". These properties drive the constructor, Neg/abs, Div, ceiling,
// and comparison paths with components within 10^6 of the i128 extremes,
// where the pre-audit implementation either wrapped (`unsigned_abs() as
// i128` on i128::MIN) or overflowed while negating (`-num` in Neg/ceil).

fn arb_huge() -> impl Strategy<Value = i128> {
    (0i128..=1_000_000).prop_map(|k| i128::MAX - k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn construction_normalizes_huge_components(n in arb_huge(), d in arb_huge()) {
        let r = rat(n, d);
        prop_assert!(r.denom() > 0);
        // Reduced form: re-normalizing is a no-op.
        prop_assert_eq!(rat(r.numer(), r.denom()), r);
        // Sign normalization moves the sign to the numerator, exactly.
        prop_assert_eq!(rat(n, -d), -r);
        prop_assert_eq!(rat(-n, d), -r);
    }

    #[test]
    fn neg_abs_roundtrip_huge(n in arb_huge(), d in arb_huge()) {
        let r = rat(n, d);
        prop_assert_eq!(-(-r), r);
        prop_assert_eq!(r.abs(), r);
        prop_assert_eq!((-r).abs(), r);
    }

    #[test]
    fn identities_hold_at_huge_magnitudes(n in arb_huge(), d in arb_huge()) {
        let r = rat(n, d);
        prop_assert_eq!(r + Rational::ZERO, r);
        prop_assert_eq!(r - r, Rational::ZERO);
        prop_assert_eq!(r * Rational::ONE, r);
        // Div cross-reduces, so even r/r with huge components is exact.
        prop_assert_eq!(r / r, Rational::ONE);
        prop_assert_eq!(r.recip().recip(), r);
    }

    #[test]
    fn ordering_is_exact_at_the_extremes(a in arb_huge(), b in arb_huge()) {
        // Huge numerators over den = 1: ordering matches the integers.
        prop_assert_eq!(
            Rational::from_int(a).cmp(&Rational::from_int(b)),
            a.cmp(&b)
        );
        // Huge denominators: 1/a vs 1/b inverts the order.
        prop_assert_eq!(rat(1, a).cmp(&rat(1, b)), b.cmp(&a));
    }

    #[test]
    fn ceil_survives_min_numerator(k in 1i128..=500_000) {
        // Odd denominator keeps the reduced numerator at exactly
        // i128::MIN (gcd(2^127, odd) = 1); the old `-((-num).div_euclid(d))`
        // ceiling overflowed here.
        let d = 2 * k + 1;
        let r = Rational::new(i128::MIN, d);
        prop_assert_eq!(r.numer(), i128::MIN);
        prop_assert_eq!(r.floor(), i128::MIN.div_euclid(d));
        prop_assert_eq!(r.ceil(), r.floor() + 1); // never exact for d > 1 odd
    }

    #[test]
    fn int_division_near_max(n in arb_huge(), k in 1i128..1000) {
        let w = Rational::from_int(k);
        let fl = w.div_floor_int(n);
        let ce = w.div_ceil_int(n);
        prop_assert_eq!(fl, n.div_euclid(k));
        prop_assert!(ce == fl || ce == fl + 1);
        prop_assert_eq!(ce == fl, n % k == 0);
    }
}

/// The documented overflow panics fire with their advertised messages —
/// overflow is loud, never a wrap.
#[test]
fn overflow_panics_are_descriptive() {
    fn panics_with(f: impl FnOnce() + std::panic::UnwindSafe, needle: &str) {
        let err = std::panic::catch_unwind(f).expect_err("operation should panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains(needle),
            "panic message {msg:?} lacks {needle:?}"
        );
    }

    let min = Rational::from_int(i128::MIN);
    let max = Rational::from_int(i128::MAX);
    panics_with(
        || {
            let _ = -min;
        },
        "Rational::neg overflow",
    );
    panics_with(
        || {
            let _ = min.abs();
        },
        "Rational::abs overflow",
    );
    panics_with(
        || {
            let _ = Rational::new(i128::MIN, -1);
        },
        "Rational::new overflow",
    );
    panics_with(
        || {
            let _ = max + max;
        },
        "Rational add overflow",
    );
    panics_with(
        || {
            let _ = max * max;
        },
        "Rational mul overflow",
    );
    // cmp cross-multiplies: MAX/2 vs (MAX-2)/3 needs MAX·3.
    panics_with(
        || {
            let _ = rat(i128::MAX, 2).cmp(&rat(i128::MAX - 2, 3));
        },
        "Rational cmp overflow",
    );
}

/// i128::MIN numerators that reduce stay exact.
#[test]
fn min_numerator_reduces_exactly() {
    let r = Rational::new(i128::MIN, 2);
    assert_eq!(r, Rational::from_int(i128::MIN / 2));
    assert_eq!(Rational::new(i128::MIN, 4).denom(), 1);
}
