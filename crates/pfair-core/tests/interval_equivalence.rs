//! Interval advancement ≡ per-slot accumulation.
//!
//! The closed-form `advance_to` paths of [`IswTracker`] and [`PsTracker`]
//! must be *bit-identical* to the per-slot `advance` oracle — not merely
//! numerically close. Exact rational arithmetic is associative, so
//! grouping a run of constant-weight slots into one multiply must yield
//! the same canonical fraction as adding them one at a time; these
//! properties drive both implementations through the same randomized
//! schedule (weight changes, separations, halts) and compare every
//! observable: totals, completion events, cumulative allocations, and
//! drift samples.
//!
//! The second half pins the `Rational` fast paths (same-denominator
//! add, integer multiply) against the general route, including operands
//! near the `i128` extremes where a carelessly reordered computation
//! would overflow even though the result is representable.

use pfair_core::ideal::{IswTracker, PsTracker};
use pfair_core::rational::{rat, Rational};
use pfair_core::weight::Weight;
use pfair_core::window::{b_bit, window_in_era};
use proptest::prelude::*;

fn arb_weight() -> impl Strategy<Value = Weight> {
    (1i128..=30, 2i128..=60).prop_map(|(n, d)| Weight::new(rat(n.min(d), d.max(n))))
}

/// One scripted tracker mutation, applied at the start of its slot
/// (matching the engine: events fire before the slot's allocation).
#[derive(Clone, Debug)]
enum Op {
    AddSubtask {
        index: u64,
        era_first: bool,
        pred_b: bool,
    },
    SetSwt(Rational),
    /// Halt `index` — skipped (in both drivers) if already complete.
    Halt(u64),
}

/// Builds a release chain with random separations, one mid-run weight
/// change (a new era), and a halt attempt on the final subtask. Returns
/// the scripted events as `(slot, op)` in slot order, plus the horizon.
fn build_script(
    w0: Weight,
    w1: Weight,
    seps: &[i64],
    change_at_subtask: usize,
    halt_offset: i64,
) -> (Vec<(i64, Op)>, i64) {
    let horizon = 400i64;
    let mut events: Vec<(i64, Op)> = Vec::new();
    let mut release = 0i64;
    let mut weight = w0;
    let mut era_base = 0u64;
    let mut last = (1u64, 0i64, 1i64); // (index, release, deadline)
    for (i, sep) in seps.iter().enumerate() {
        let index = i as u64 + 1;
        let rank = index - era_base;
        let win = window_in_era(weight, rank, release);
        let era_first = rank == 1;
        let pred_b = if era_first {
            false
        } else {
            b_bit(weight, rank - 1)
        };
        events.push((
            win.release,
            Op::AddSubtask {
                index,
                era_first,
                pred_b,
            },
        ));
        last = (index, win.release, win.deadline);
        if i + 1 == change_at_subtask {
            events.push((win.deadline, Op::SetSwt(w1.value())));
            era_base = index;
            weight = w1;
            release = win.deadline + 1;
        } else {
            release = win.next_release() + sep;
        }
        if release > horizon - 70 {
            break;
        }
    }
    // Halt the last subtask a little after its release (clamped inside
    // its window); the drivers skip the halt if it completed first.
    let (h_index, h_release, h_deadline) = last;
    let halt_at = (h_release + halt_offset).min(h_deadline - 1).max(h_release);
    events.push((halt_at, Op::Halt(h_index)));
    events.sort_by_key(|(t, _)| *t);
    (events, horizon)
}

fn apply(tr: &mut IswTracker, op: &Op) {
    match op {
        Op::AddSubtask {
            index,
            era_first,
            pred_b,
        } => tr.add_subtask(*index, tr.now(), *era_first, *pred_b),
        Op::SetSwt(v) => tr.set_swt(*v),
        Op::Halt(index) => {
            if tr.completion_of(*index).is_none() {
                tr.halt(*index, tr.now());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tentpole equivalence: closed-form era jumps produce the same
    /// totals, the same completion events (index, boundary, final-slot
    /// allocation), and the same per-subtask cumulative state as slot-
    /// by-slot accumulation, under weight changes, separations, halts.
    #[test]
    fn isw_advance_to_is_bit_identical_to_per_slot(
        w0 in arb_weight(),
        w1 in arb_weight(),
        seps in prop::collection::vec(0i64..3, 4..10),
        change_at_subtask in 2usize..4,
        halt_offset in 0i64..4,
        extra_boundary in 1i64..399,
    ) {
        let (events, horizon) =
            build_script(w0, w1, &seps, change_at_subtask, halt_offset);

        // Per-slot oracle.
        let mut oracle = IswTracker::new(w0.value(), 0);
        let mut oracle_completions = Vec::new();
        let mut oracle_interval_sum = Rational::ZERO;
        let mut cursor = 0usize;
        for t in 0..horizon {
            while cursor < events.len() && events[cursor].0 == t {
                apply(&mut oracle, &events[cursor].1);
                cursor += 1;
            }
            let (alloc, done) = oracle.advance(t);
            oracle_interval_sum += alloc;
            oracle_completions.extend(done);
        }

        // Event-driven: one jump per distinct event slot, plus an
        // arbitrary extra boundary to exercise mid-interval splits.
        let mut batch = IswTracker::new(w0.value(), 0);
        let mut batch_completions = Vec::new();
        let mut batch_interval_sum = Rational::ZERO;
        let mut boundaries: Vec<i64> = events.iter().map(|(t, _)| *t).collect();
        boundaries.push(extra_boundary);
        boundaries.push(horizon);
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut cursor = 0usize;
        for b in boundaries {
            let (added, done) = batch.advance_to(b);
            batch_interval_sum += added;
            batch_completions.extend(done);
            while cursor < events.len() && events[cursor].0 == b {
                apply(&mut batch, &events[cursor].1);
                cursor += 1;
            }
        }

        prop_assert_eq!(oracle.now(), batch.now());
        prop_assert_eq!(oracle.isw_total(), batch.isw_total());
        prop_assert_eq!(oracle.icsw_total(), batch.icsw_total());
        prop_assert_eq!(oracle_interval_sum, batch_interval_sum);
        prop_assert_eq!(oracle_completions, batch_completions);
        // Residual per-subtask state agrees wherever both retain it.
        for (_, op) in &events {
            if let Op::AddSubtask { index, .. } = op {
                prop_assert_eq!(oracle.completion_of(*index), batch.completion_of(*index));
                prop_assert_eq!(oracle.subtask_cum(*index), batch.subtask_cum(*index));
            }
        }
    }

    /// `PsTracker::advance_to` against the per-slot oracle, with weight
    /// changes and overlapping suspensions straddling the jumps.
    #[test]
    fn ps_advance_to_is_bit_identical_to_per_slot(
        w0 in arb_weight(),
        w1 in arb_weight(),
        change_at in 1i64..200,
        susp in prop::collection::vec((0i64..250, 1i64..40), 0..4),
        boundaries in prop::collection::vec(1i64..250, 1..6),
    ) {
        let horizon = 250i64;
        let mut oracle = PsTracker::new(w0.value(), 0);
        let mut batch = PsTracker::new(w0.value(), 0);
        for &(from, len) in &susp {
            oracle.suspend_between(from, from + len);
            batch.suspend_between(from, from + len);
        }
        let mut oracle_samples = Vec::new();
        for t in 0..horizon {
            if t == change_at {
                oracle.set_wt(w1.value());
            }
            oracle.advance(t);
            oracle_samples.push(oracle.total());
        }

        let mut bs = boundaries;
        bs.push(change_at);
        bs.push(horizon);
        bs.sort_unstable();
        bs.dedup();
        for b in bs {
            batch.advance_to(b);
            if b == change_at {
                batch.set_wt(w1.value());
            }
            // The drift sample the engine would take at this boundary.
            // audit: allow(lossy-cast, boundary slots here are small positive test values)
            prop_assert_eq!(batch.total(), if b == 0 { Rational::ZERO } else { oracle_samples[(b - 1) as usize] },
                "boundary {}", b);
        }
        prop_assert_eq!(oracle.total(), batch.total());
        prop_assert_eq!(oracle.now(), batch.now());
    }

    /// Drift samples (`A(I_PS) − A(I_CSW)` at era boundaries) computed
    /// from interval jumps equal the per-slot-derived samples.
    #[test]
    fn drift_samples_agree_between_drivers(
        w0 in arb_weight(),
        w1 in arb_weight(),
        seps in prop::collection::vec(0i64..3, 4..8),
        change_at_subtask in 2usize..4,
    ) {
        let (events, horizon) = build_script(w0, w1, &seps, change_at_subtask, 1);
        let sample_at: Vec<i64> = events
            .iter()
            .filter(|(_, op)| matches!(op, Op::AddSubtask { era_first: true, .. } | Op::SetSwt(_)))
            .map(|(t, _)| *t)
            .collect();

        let mut o_isw = IswTracker::new(w0.value(), 0);
        let mut o_ps = PsTracker::new(w0.value(), 0);
        let mut o_samples = Vec::new();
        let mut cursor = 0usize;
        for t in 0..horizon {
            while cursor < events.len() && events[cursor].0 == t {
                apply(&mut o_isw, &events[cursor].1);
                if let Op::SetSwt(v) = events[cursor].1 {
                    o_ps.set_wt(v);
                }
                cursor += 1;
            }
            if sample_at.contains(&t) {
                o_samples.push((t, o_ps.total() - o_isw.icsw_total()));
            }
            o_isw.advance(t);
            o_ps.advance(t);
        }

        let mut b_isw = IswTracker::new(w0.value(), 0);
        let mut b_ps = PsTracker::new(w0.value(), 0);
        let mut b_samples = Vec::new();
        let mut boundaries: Vec<i64> = events.iter().map(|(t, _)| *t).collect();
        boundaries.push(horizon);
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut cursor = 0usize;
        for b in boundaries {
            b_isw.advance_to(b);
            b_ps.advance_to(b);
            let mut sampled = false;
            while cursor < events.len() && events[cursor].0 == b {
                if !sampled && sample_at.contains(&b) {
                    b_samples.push((b, b_ps.total() - b_isw.icsw_total()));
                    sampled = true;
                }
                apply(&mut b_isw, &events[cursor].1);
                if let Op::SetSwt(v) = events[cursor].1 {
                    b_ps.set_wt(v);
                }
                cursor += 1;
            }
        }
        prop_assert_eq!(o_samples, b_samples);
    }
}

// ---- Rational fast paths vs the general route ---------------------------

fn arb_huge() -> impl Strategy<Value = i128> {
    (0i128..=1_000_000).prop_map(|k| i128::MAX - k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The same-denominator add shortcut agrees with the distinct-
    /// denominator route (forced here by scaling both operands).
    #[test]
    fn same_den_add_matches_general_path(
        a in -2000i128..=2000,
        b in -2000i128..=2000,
        d in 1i128..=997,
    ) {
        let fast = rat(a, d) + rat(b, d);
        // (a·d)/(d·d) + (b·d)/(d·d) normalizes away from den d, so the
        // general lcm route is exercised; results must coincide.
        let general = rat(a * d, d * d) + rat(b, d);
        prop_assert_eq!(fast, general);
        prop_assert_eq!(fast, rat(a + b, d));
    }

    /// Near-overflow cancellation: integers within 10^6 of `i128::MAX`
    /// share denominator 1, and the fast path must add them exactly
    /// (opposite signs ⇒ the sum is representable).
    #[test]
    fn same_den_add_huge_cancellation(j in arb_huge(), k in arb_huge()) {
        let sum = Rational::from_int(j) + Rational::from_int(-k);
        prop_assert_eq!(sum, Rational::from_int(j - k));
        let diff = Rational::from_int(j) - Rational::from_int(k);
        prop_assert_eq!(diff, sum);
    }

    /// `mul_int` divides the multiplier by `gcd(n, den)` *before* the
    /// multiply, so a huge numerator times its own denominator is exact
    /// even though the naive product would overflow.
    #[test]
    fn mul_int_cancels_before_multiplying(n in arb_huge(), d in 2i64..=1000) {
        let r = Rational::new(n, i128::from(d));
        prop_assert_eq!(r.mul_int(d), Rational::from_int(n));
        prop_assert_eq!(r.mul_int(0), Rational::ZERO);
    }

    /// On ordinary operands `mul_int` is exactly multiplication by the
    /// integer as a rational.
    #[test]
    fn mul_int_matches_general_multiplication(
        n in -2000i128..=2000,
        d in 1i128..=400,
        k in -2000i64..=2000,
    ) {
        let r = rat(n, d);
        prop_assert_eq!(r.mul_int(k), r * Rational::from_int(i128::from(k)));
    }
}
