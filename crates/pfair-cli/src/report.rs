//! Human-readable run reports for the CLI.

use pfair_core::rational::Rational;
use pfair_sched::render::{render_task, ruler};
use pfair_sched::trace::SimResult;
use std::fmt::Write as _;

/// Formats the per-task summary table and run totals.
pub fn summary(result: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} processors, {} slots, {} deadline miss(es)",
        result.processors,
        result.horizon,
        result.misses.len()
    );
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>12} {:>12} {:>14} {:>12}",
        "task", "quanta", "ideal (IPS)", "% of ideal", "drift(end)", "max |Δdrift|"
    );
    for task in &result.tasks {
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>12} {:>12} {:>14} {:>12}",
            task.id.to_string(),
            task.scheduled_count,
            format_rat(task.ps_total),
            task.pct_of_ideal()
                .map_or_else(|| "-".into(), |p| format!("{p:.2}")),
            format_rat(task.drift.at(result.horizon)),
            format_rat(task.drift.max_abs_delta()),
        );
    }
    let c = &result.counters;
    let _ = writeln!(
        out,
        "events: {} initiated, {} enacted, {} halts; heap ops {}; migrations {}; preemptions {}",
        c.reweight_initiations,
        c.reweight_enactments,
        c.halts,
        c.heap_ops(),
        c.migrations,
        c.preemptions
    );
    let _ = writeln!(
        out,
        "queue: {} stale pops; {} compaction(s) dropping {} stale entries",
        c.stale_pops, c.compactions, c.compacted_stale
    );
    out
}

/// Formats the window diagrams of every task (history mode required).
pub fn diagrams(result: &SimResult) -> String {
    let mut out = String::new();
    let horizon = result.horizon.min(120); // keep lines terminal-sized
    let _ = writeln!(out, "{}", ruler(horizon));
    for task in &result.tasks {
        if let Some(hist) = &task.history {
            out.push_str(&render_task(&task.id.to_string(), hist, horizon));
        }
    }
    out
}

fn format_rat(r: Rational) -> String {
    if r.is_integer() {
        format!("{}", r.numer())
    } else {
        format!("{:.3}", r.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_sched::engine::{simulate, SimConfig};
    use pfair_sched::event::Workload;

    #[test]
    fn summary_contains_each_task_and_totals() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        w.join(1, 0, 1, 4);
        w.reweight(1, 8, 1, 2);
        let r = simulate(SimConfig::oi(1, 40).with_history(), &w);
        let s = summary(&r);
        assert!(s.contains("T0"));
        assert!(s.contains("T1"));
        assert!(s.contains("0 deadline miss(es)"));
        assert!(s.contains("1 initiated"));
        assert!(s.contains("stale pops"));
        assert!(s.contains("compaction(s)"));
    }

    #[test]
    fn diagrams_render_windows() {
        let mut w = Workload::new();
        w.join(0, 0, 2, 5);
        let r = simulate(SimConfig::oi(1, 20).with_history(), &w);
        let d = diagrams(&r);
        // A lone task is scheduled at each release, so the 'X' marks
        // overwrite the '[' marks; the deadline marks survive.
        assert!(d.contains(')'));
        assert!(d.contains('X'));
    }
}
