//! The `pfair snapshot` and `pfair resume` subcommands.
//!
//! `snapshot` parses a workload file, advances the engine to a
//! checkpoint slot, and writes the durable state (plus, optionally,
//! the metrics registry) to disk. `resume` loads that state and either
//! runs to the horizon — printing the same summary `pfair run` would —
//! or advances to another checkpoint, chaining segmented executions
//! across process boundaries. The persistence invariant (see
//! `pfair-persist`) guarantees the chained result is bit-identical to
//! an uninterrupted run.
//!
//! History mode is file-format default for `pfair run`, but snapshots
//! refuse unbounded history accumulators, so both subcommands run the
//! engine event-driven (`record_history = false`). Consequently a
//! resumed result is byte-comparable to another snapshot/resume chain,
//! not to `pfair run --json` output.

use crate::parser;
use pfair_json::{FromJson, Json, ToJson};
use pfair_obs::{MetricsProbe, Registry};
use pfair_persist::{read_snapshot, write_snapshot};
use pfair_sched::engine::Engine;
use pfair_sched::trace::SimResult;

/// Options for `pfair snapshot`.
#[derive(Clone, Debug, Default)]
pub struct SnapshotOptions {
    /// Checkpoint slot; defaults to half the workload's horizon.
    pub at: Option<i64>,
    /// Snapshot file to write (required).
    pub out: String,
    /// Optional metrics-registry JSON to write alongside.
    pub metrics_out: Option<String>,
}

/// Options for `pfair resume`.
#[derive(Clone, Debug, Default)]
pub struct ResumeOptions {
    /// Stop at this slot and write another checkpoint instead of
    /// finishing the run (requires `snapshot_out`).
    pub until: Option<i64>,
    /// Where to write the chained checkpoint when `until` is given.
    pub snapshot_out: Option<String>,
    /// Metrics-registry JSON persisted by the previous segment.
    pub metrics_in: Option<String>,
    /// Where to write the (possibly final) metrics registry.
    pub metrics_out: Option<String>,
    /// Where to write the final `SimResult` JSON.
    pub json_out: Option<String>,
}

/// Runs a workload file up to the checkpoint slot and writes the
/// snapshot (and optionally the metrics registry). Returns the status
/// lines to print.
pub fn snapshot_file(path: &str, opts: &SnapshotOptions) -> Result<String, String> {
    let input = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut spec = parser::parse(&input).map_err(|e| format!("{path}: {e}"))?;
    // Snapshots refuse unbounded history accumulators; run event-driven.
    spec.config.record_history = false;
    let at = opts.at.unwrap_or(spec.config.horizon / 2);
    let mut engine = Engine::with_probe(spec.config, &spec.workload, MetricsProbe::new());
    let snap = engine.snapshot_at(at)?;
    write_snapshot(std::path::Path::new(&opts.out), &snap).map_err(|e| e.to_string())?;
    let mut out = format!("checkpoint at slot {} -> {}\n", snap.now(), opts.out);
    if let Some(p) = &opts.metrics_out {
        write_registry(p, engine.probe_mut().registry())?;
        out.push_str(&format!("metrics -> {p}\n"));
    }
    Ok(out)
}

/// Restores a snapshot file and either finishes the run or advances to
/// the next checkpoint. Returns the status/summary text and, when the
/// run finished, the result.
pub fn resume_file(
    path: &str,
    opts: &ResumeOptions,
) -> Result<(String, Option<SimResult>), String> {
    let snap = read_snapshot(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    let registry = match &opts.metrics_in {
        Some(p) => read_registry(p)?,
        None => Registry::new(),
    };
    let mut engine = Engine::restore(snap, MetricsProbe::from_registry(registry))?;

    if let Some(until) = opts.until.filter(|&u| u < engine.config().horizon) {
        let Some(snapshot_out) = &opts.snapshot_out else {
            return Err("--until needs --snapshot-out to write the checkpoint".into());
        };
        let snap = engine.snapshot_at(until)?;
        write_snapshot(std::path::Path::new(snapshot_out), &snap).map_err(|e| e.to_string())?;
        let mut out = format!("checkpoint at slot {} -> {snapshot_out}\n", snap.now());
        if let Some(p) = &opts.metrics_out {
            write_registry(p, engine.probe_mut().registry())?;
            out.push_str(&format!("metrics -> {p}\n"));
        }
        return Ok((out, None));
    }

    engine.run();
    let (result, probe) = engine.finish_with_probe();
    let mut out = crate::report::summary(&result);
    if let Some(p) = &opts.json_out {
        std::fs::write(p, crate::to_json(&result)).map_err(|e| format!("writing {p}: {e}"))?;
        out.push_str(&format!("wrote {p}\n"));
    }
    if let Some(p) = &opts.metrics_out {
        write_registry(p, probe.registry())?;
        out.push_str(&format!("metrics -> {p}\n"));
    }
    Ok((out, Some(result)))
}

fn write_registry(path: &str, reg: &Registry) -> Result<(), String> {
    let mut text = reg.to_json().to_string_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

fn read_registry(path: &str) -> Result<Registry, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Registry::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("pfair-cli-persist-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn workload_file() -> String {
        let path = tmp("workload.txt");
        std::fs::write(&path, parser::EXAMPLE).unwrap();
        path
    }

    /// Segmented snapshot → resume → resume chain reproduces the
    /// one-shot resume result and metrics byte for byte.
    #[test]
    fn chained_resume_matches_one_shot() {
        let w = workload_file();
        let (s0, mid, last, m0, m_mid, m_last) = (
            tmp("c0.json"),
            tmp("c1.json"),
            tmp("final.json"),
            tmp("m0.json"),
            tmp("m1.json"),
            tmp("m-final.json"),
        );
        // Reference: checkpoint at slot 0, one uninterrupted resume.
        snapshot_file(
            &w,
            &SnapshotOptions {
                at: Some(0),
                out: s0.clone(),
                metrics_out: Some(m0.clone()),
            },
        )
        .unwrap();
        let (_, reference) = resume_file(
            &s0,
            &ResumeOptions {
                metrics_in: Some(m0.clone()),
                metrics_out: Some(m_last.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let reference_metrics = std::fs::read_to_string(&m_last).unwrap();

        // Chained: the same start, interrupted mid-run.
        let (_, none) = resume_file(
            &s0,
            &ResumeOptions {
                until: Some(9),
                snapshot_out: Some(mid.clone()),
                metrics_in: Some(m0.clone()),
                metrics_out: Some(m_mid.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(none.is_none());
        let (_, chained) = resume_file(
            &mid,
            &ResumeOptions {
                metrics_in: Some(m_mid.clone()),
                metrics_out: Some(m_last.clone()),
                json_out: Some(last.clone()),
                ..Default::default()
            },
        )
        .unwrap();

        use pfair_json::ToJson;
        assert_eq!(
            reference.unwrap().to_json().to_string_pretty(),
            chained.unwrap().to_json().to_string_pretty()
        );
        assert_eq!(reference_metrics, std::fs::read_to_string(&m_last).unwrap());
        assert!(std::fs::read_to_string(&last).unwrap().contains("horizon"));
        for p in [w, s0, mid, last, m0, m_mid, m_last] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn until_requires_snapshot_out() {
        let w = workload_file();
        let s = tmp("lone.json");
        snapshot_file(
            &w,
            &SnapshotOptions {
                at: Some(0),
                out: s.clone(),
                metrics_out: None,
            },
        )
        .unwrap();
        let err = resume_file(
            &s,
            &ResumeOptions {
                until: Some(5),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("--snapshot-out"), "{err}");
        for p in [w, s] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let err = resume_file(&tmp("does-not-exist.json"), &ResumeOptions::default()).unwrap_err();
        assert!(!err.is_empty());
    }
}
