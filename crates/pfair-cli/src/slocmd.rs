//! The `pfair slo` subcommand: run a Whisper scenario under the
//! [`SloMonitor`] probe and report watermarks and exact breach records
//! for the three service-level signals (sliding-window misses, Eqn (5)
//! drift against a rational budget, reweight latency). The monitor is
//! span-aware, so horizon-scale batched runs pay O(1) per span.

use pfair_core::rational::Rational;
use pfair_json::{obj, Json, ToJson};
use pfair_obs::{SloConfig, SloMonitor};
use pfair_sched::reweight::Scheme;
use std::fmt::Write as _;
use whisper_sim::{run_whisper_probed, Scenario, PROCESSORS};

/// Options for an SLO run.
#[derive(Clone, Debug)]
pub struct SloOptions {
    /// Scenario seed (each seed is one speaker-trajectory draw).
    pub seed: u64,
    /// Reweighting scheme (`oi` or `lj`).
    pub scheme: Scheme,
    /// Slots to simulate.
    pub horizon: i64,
    /// Sliding-window width for the miss-rate signal, in slots.
    pub window: i64,
    /// Misses tolerated per window; one more is a breach.
    pub max_misses: u64,
    /// Drift budget (`None` disables the signal, watermarks kept).
    pub drift_budget: Option<Rational>,
    /// Initiation→enactment latency threshold in slots.
    pub max_reweight_latency: Option<u64>,
}

impl Default for SloOptions {
    fn default() -> SloOptions {
        SloOptions {
            seed: 0,
            scheme: Scheme::Oi,
            horizon: 1000,
            window: 1000,
            max_misses: 0,
            drift_budget: None,
            max_reweight_latency: None,
        }
    }
}

/// Parses a `--drift-budget` value: an integer (`3`) or an exact
/// rational (`3/4`).
pub fn parse_budget(s: &str) -> Option<Rational> {
    let (num, den) = match s.split_once('/') {
        Some((n, d)) => (n.parse::<i128>().ok()?, d.parse::<i128>().ok()?),
        None => (s.parse::<i128>().ok()?, 1),
    };
    if den <= 0 {
        return None;
    }
    Some(Rational::new(num, den))
}

/// Runs the scenario under the SLO monitor and returns the
/// human-readable report plus the monitor's JSON dump (config,
/// watermarks, breaches) wrapped with the run parameters.
pub fn run_slo(opts: &SloOptions) -> (String, Json) {
    // audit: allow(no-float-in-scheduling, Whisper scenario knobs; speed/radius feed weight inputs, not schedules)
    let sc = Scenario::new(2.9, 0.25, true, opts.seed);
    let cfg = SloConfig {
        window: opts.window,
        max_misses: opts.max_misses,
        drift_budget: opts.drift_budget,
        max_reweight_latency: opts.max_reweight_latency,
    };
    let (metrics, slo) =
        run_whisper_probed(&sc, opts.scheme.clone(), opts.horizon, SloMonitor::new(cfg));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "whisper seed {}, scheme {:?}, horizon {} on {} processors",
        opts.seed, opts.scheme, opts.horizon, PROCESSORS
    );
    let _ = writeln!(
        out,
        "run summary: {} misses; {:.2}% of ideal",
        metrics.misses, metrics.pct_of_ideal
    );
    out.push('\n');
    out.push_str(&slo.report());

    let json = obj([
        (
            "run",
            obj([
                ("seed", Json::Int(i128::from(opts.seed))),
                ("scheme", format!("{:?}", opts.scheme).to_json()),
                ("horizon", Json::Int(i128::from(opts.horizon))),
                (
                    "misses",
                    Json::Int(i128::try_from(metrics.misses).unwrap_or(i128::MAX)),
                ),
            ]),
        ),
        ("slo", slo.to_json()),
    ]);
    (out, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_report_and_json_on_a_clean_run() {
        let opts = SloOptions {
            horizon: 400,
            ..SloOptions::default()
        };
        let (report, json) = run_slo(&opts);
        assert!(report.contains("SLO report"));
        assert!(report.contains("no SLO breaches"));
        let parsed = Json::parse(&json.to_string_pretty()).unwrap();
        assert!(parsed.get("run").and_then(|r| r.get("horizon")).is_some());
        let slo = parsed.get("slo").expect("slo section");
        for key in ["config", "watermarks", "breaches", "suppressed"] {
            assert!(slo.get(key).is_some(), "slo dump missing `{key}`");
        }
    }

    #[test]
    fn tight_drift_budget_produces_exact_breaches() {
        // Whisper reweights constantly, so a zero drift budget breaches
        // on the first nonzero era-opening sample.
        let opts = SloOptions {
            horizon: 600,
            drift_budget: Some(Rational::ZERO),
            ..SloOptions::default()
        };
        let (report, json) = run_slo(&opts);
        assert!(report.contains("drift_budget"), "report: {report}");
        let parsed = Json::parse(&json.to_string_pretty()).unwrap();
        let Some(Json::Array(breaches)) = parsed.get("slo").and_then(|s| s.get("breaches")) else {
            panic!("breaches must be an array");
        };
        assert!(!breaches.is_empty());
    }

    #[test]
    fn budget_parser_accepts_ints_and_rationals() {
        assert_eq!(parse_budget("3"), Some(Rational::new(3, 1)));
        assert_eq!(parse_budget("3/4"), Some(Rational::new(3, 4)));
        assert_eq!(parse_budget("-1/2"), Some(Rational::new(-1, 2)));
        assert!(parse_budget("x").is_none());
        assert!(parse_budget("1/0").is_none());
    }
}
