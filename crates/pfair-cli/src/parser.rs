//! The workload file format: a line-oriented description of an
//! adaptable task system.
//!
//! ```text
//! # Whisper-style burst on four processors
//! processors 4
//! horizon 100
//! scheme oi                    # oi | lj | hybrid-nth:2 |
//!                              # hybrid-threshold:1/2 | hybrid-budget:2/100
//! tiebreak asc                 # asc | desc
//! admission police             # police | trusting
//!
//! join     0  0   3/20         # task 0 joins at t=0 with weight 3/20
//! join     1  0   2/5
//! reweight 0  10  1/2          # task 0 wants weight 1/2 at t=10
//! delay    1  15  3            # task 1's next release slips 3 slots
//! leave    1  60
//! ```
//!
//! Blank lines and `#` comments are ignored. Directives may appear in
//! any order; later directives override earlier ones.

use pfair_core::rational::Rational;
use pfair_core::weight::Weight;
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::SimConfig;
use pfair_sched::event::Workload;
use pfair_sched::priority::TieBreak;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use std::fmt;

/// A parsed workload file: the simulation configuration plus events.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Engine configuration.
    pub config: SimConfig,
    /// The event stream.
    pub workload: Workload,
}

/// A parse failure with its line number (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, what: impl Into<String>) -> ParseError {
    ParseError {
        line,
        what: what.into(),
    }
}

fn parse_fraction(s: &str, line: usize) -> Result<Rational, ParseError> {
    let (num, den) = s
        .split_once('/')
        .ok_or_else(|| err(line, format!("expected num/den fraction, got '{s}'")))?;
    let num: i128 = num
        .trim()
        .parse()
        .map_err(|_| err(line, format!("bad numerator '{num}'")))?;
    let den: i128 = den
        .trim()
        .parse()
        .map_err(|_| err(line, format!("bad denominator '{den}'")))?;
    if den == 0 {
        return Err(err(line, "zero denominator"));
    }
    Ok(Rational::new(num, den))
}

fn parse_weight(s: &str, line: usize) -> Result<Weight, ParseError> {
    let r = parse_fraction(s, line)?;
    Weight::try_new(r).map_err(|e| err(line, e.to_string()))
}

fn parse_scheme(s: &str, line: usize) -> Result<Scheme, ParseError> {
    match s {
        "oi" => Ok(Scheme::Oi),
        "lj" => Ok(Scheme::LeaveJoin),
        _ => {
            if let Some(rest) = s.strip_prefix("hybrid-nth:") {
                let n: u32 = rest
                    .parse()
                    .map_err(|_| err(line, format!("bad hybrid-nth value '{rest}'")))?;
                Ok(Scheme::Hybrid(HybridPolicy::EveryNth(n.max(1))))
            } else if let Some(rest) = s.strip_prefix("hybrid-threshold:") {
                Ok(Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(
                    parse_fraction(rest, line)?,
                )))
            } else if let Some(rest) = s.strip_prefix("hybrid-budget:") {
                let (b, w) = rest
                    .split_once('/')
                    .ok_or_else(|| err(line, "hybrid-budget needs budget/window"))?;
                let budget: u32 = b
                    .parse()
                    .map_err(|_| err(line, format!("bad budget '{b}'")))?;
                let window: i64 = w
                    .parse()
                    .map_err(|_| err(line, format!("bad window '{w}'")))?;
                Ok(Scheme::Hybrid(HybridPolicy::OiBudget {
                    budget,
                    window: window.max(1),
                }))
            } else {
                Err(err(line, format!("unknown scheme '{s}'")))
            }
        }
    }
}

/// Parses a workload file's contents.
pub fn parse(input: &str) -> Result<Spec, ParseError> {
    let mut processors: u32 = 1;
    let mut horizon: i64 = 100;
    let mut scheme = Scheme::Oi;
    let mut tie_break = TieBreak::TaskIdAsc;
    let mut admission = AdmissionPolicy::Police;
    let mut workload = Workload::new();

    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap();
        let rest: Vec<&str> = parts.collect();
        let need = |n: usize| -> Result<(), ParseError> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("'{}' needs {} arguments, got {}", keyword, n, rest.len()),
                ))
            }
        };
        match keyword {
            "processors" => {
                need(1)?;
                processors = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad processor count '{}'", rest[0])))?;
                if processors == 0 {
                    return Err(err(line_no, "need at least one processor"));
                }
            }
            "horizon" => {
                need(1)?;
                horizon = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad horizon '{}'", rest[0])))?;
                if horizon <= 0 {
                    return Err(err(line_no, "horizon must be positive"));
                }
            }
            "scheme" => {
                need(1)?;
                scheme = parse_scheme(rest[0], line_no)?;
            }
            "tiebreak" => {
                need(1)?;
                tie_break = match rest[0] {
                    "asc" => TieBreak::TaskIdAsc,
                    "desc" => TieBreak::TaskIdDesc,
                    other => return Err(err(line_no, format!("unknown tiebreak '{other}'"))),
                };
            }
            "admission" => {
                need(1)?;
                admission = match rest[0] {
                    "police" => AdmissionPolicy::Police,
                    "trusting" => AdmissionPolicy::Trusting,
                    other => return Err(err(line_no, format!("unknown admission '{other}'"))),
                };
            }
            "join" | "reweight" => {
                need(3)?;
                let task: u32 = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad task id '{}'", rest[0])))?;
                let at: i64 = rest[1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad time '{}'", rest[1])))?;
                let weight = parse_weight(rest[2], line_no)?;
                let r = weight.value();
                if keyword == "join" {
                    workload.join(task, at, r.numer(), r.denom());
                } else {
                    workload.reweight(task, at, r.numer(), r.denom());
                }
            }
            "leave" => {
                need(2)?;
                let task: u32 = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad task id '{}'", rest[0])))?;
                let at: i64 = rest[1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad time '{}'", rest[1])))?;
                workload.leave(task, at);
            }
            "delay" => {
                need(3)?;
                let task: u32 = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad task id '{}'", rest[0])))?;
                let at: i64 = rest[1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad time '{}'", rest[1])))?;
                let by: u32 = rest[2]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad delay '{}'", rest[2])))?;
                workload.delay(task, at, by);
            }
            other => return Err(err(line_no, format!("unknown directive '{other}'"))),
        }
    }

    let config = SimConfig {
        processors,
        horizon,
        scheme,
        tie_break,
        admission,
        record_history: true,
        tickless: true,
        busy_span: true,
    };
    Ok(Spec { config, workload })
}

/// A documented sample workload file (printed by `pfair example`).
pub const EXAMPLE: &str = "\
# Sample adaptable task system: twenty weight-3/20 tasks on four
# processors; task 0 jumps to weight 1/2 at time 10 (fine-grained).
processors 4
horizon 100
scheme oi
tiebreak asc
admission police

join     0  0   3/20
join     1  0   3/20
join     2  0   3/20
join     3  0   3/20
join     4  0   3/20
join     5  0   3/20
join     6  0   3/20
join     7  0   3/20
reweight 0  10  1/2
delay    3  20  4
leave    7  50
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_parses() {
        let spec = parse(EXAMPLE).expect("example must parse");
        assert_eq!(spec.config.processors, 4);
        assert_eq!(spec.config.horizon, 100);
        assert_eq!(spec.config.scheme, Scheme::Oi);
        assert_eq!(spec.workload.task_count(), 8);
    }

    #[test]
    fn schemes_parse() {
        for (text, expect) in [
            ("scheme oi", Scheme::Oi),
            ("scheme lj", Scheme::LeaveJoin),
            (
                "scheme hybrid-nth:3",
                Scheme::Hybrid(HybridPolicy::EveryNth(3)),
            ),
            (
                "scheme hybrid-threshold:1/2",
                Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(Rational::new(1, 2))),
            ),
            (
                "scheme hybrid-budget:2/100",
                Scheme::Hybrid(HybridPolicy::OiBudget {
                    budget: 2,
                    window: 100,
                }),
            ),
        ] {
            let spec = parse(text).unwrap();
            assert_eq!(spec.config.scheme, expect, "{text}");
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let spec = parse("# nothing\n\n   # indented comment\njoin 0 0 1/2 # trailing\n").unwrap();
        assert_eq!(spec.workload.task_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("processors 2\nbogus 1 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.what.contains("bogus"));

        let e = parse("join 0 0 3-20\n").unwrap_err();
        assert!(e.what.contains("fraction"));

        let e = parse("join 0 0 3/2\n").unwrap_err();
        assert!(e.what.contains("outside"));

        let e = parse("horizon -4\n").unwrap_err();
        assert!(e.what.contains("positive") || e.what.contains("bad horizon"));

        let e = parse("join 0 0\n").unwrap_err();
        assert!(e.what.contains("needs 3"));
    }

    #[test]
    fn zero_processor_rejected() {
        assert!(parse("processors 0\n").is_err());
    }
}
