//! The `pfair` command-line tool.
//!
//! ```text
//! pfair run <workload-file> [--render] [--verify]
//! pfair trace [--whisper SEED] [--scheme oi|lj] [--horizon N] [--top K] [--out FILE]
//!             [--flight FILE]
//! pfair slo [--whisper SEED] [--scheme oi|lj] [--horizon N] [--window W]
//!           [--max-misses K] [--drift-budget N[/D]] [--max-reweight-latency L]
//!           [--out FILE]
//! pfair snapshot <workload-file> [--at K] --out FILE [--metrics-out FILE]
//! pfair resume <snapshot-file> [--until K --snapshot-out FILE]
//!              [--metrics-in FILE] [--metrics-out FILE] [--json OUT]
//! pfair example                 # print a documented sample file
//! ```

use pfair_cli::{parser, run_file, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let Some(path) = args.get(1) else {
                die("run needs a workload file");
            };
            let opts = RunOptions {
                render: args.iter().any(|a| a == "--render"),
                verify: args.iter().any(|a| a == "--verify"),
            };
            let json_path = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let svg_path = args
                .iter()
                .position(|a| a == "--svg")
                .and_then(|i| args.get(i + 1))
                .cloned();
            match run_file(path, opts) {
                Ok((report, result)) => {
                    print!("{report}");
                    if let Some(p) = json_path {
                        std::fs::write(&p, pfair_cli::to_json(&result))
                            .unwrap_or_else(|e| die(&format!("writing {p}: {e}")));
                        println!("wrote {p}");
                    }
                    if let Some(p) = svg_path {
                        let svg = pfair_sched::svg::render_svg(&result, result.horizon);
                        std::fs::write(&p, svg)
                            .unwrap_or_else(|e| die(&format!("writing {p}: {e}")));
                        println!("wrote {p}");
                    }
                    if !result.is_miss_free() {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("trace") => {
            let mut opts = pfair_cli::tracecmd::TraceOptions::default();
            let mut out_path = String::from("trace.json");
            let mut flight_path: Option<String> = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--whisper" => {
                        opts.seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--whisper needs a seed number"));
                    }
                    "--scheme" => {
                        opts.scheme = it
                            .next()
                            .and_then(|v| pfair_cli::tracecmd::parse_scheme(v))
                            .unwrap_or_else(|| die("--scheme needs 'oi' or 'lj'"));
                    }
                    "--horizon" => {
                        opts.horizon = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&h| h > 0)
                            .unwrap_or_else(|| die("--horizon needs a positive number"));
                    }
                    "--top" => {
                        opts.top = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--top needs a number"));
                    }
                    "--out" => {
                        out_path = it
                            .next()
                            .cloned()
                            .unwrap_or_else(|| die("--out needs a file path"));
                    }
                    "--flight" => {
                        opts.flight = true;
                        flight_path = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--flight needs a file path")),
                        );
                    }
                    other => die(&format!("unknown trace option {other}")),
                }
            }
            let (report, chrome, flight) = pfair_cli::tracecmd::run_trace(&opts);
            print!("{report}");
            std::fs::write(&out_path, chrome.to_string_pretty())
                .unwrap_or_else(|e| die(&format!("writing {out_path}: {e}")));
            println!("wrote {out_path} (load in Perfetto or chrome://tracing)");
            if let (Some(p), Some(dump)) = (flight_path, flight) {
                std::fs::write(&p, dump.to_string_pretty())
                    .unwrap_or_else(|e| die(&format!("writing {p}: {e}")));
                println!("wrote {p} (flight-recorder dump)");
            }
        }
        Some("slo") => {
            let mut opts = pfair_cli::slocmd::SloOptions::default();
            let mut out_path: Option<String> = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--whisper" => {
                        opts.seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--whisper needs a seed number"));
                    }
                    "--scheme" => {
                        opts.scheme = it
                            .next()
                            .and_then(|v| pfair_cli::tracecmd::parse_scheme(v))
                            .unwrap_or_else(|| die("--scheme needs 'oi' or 'lj'"));
                    }
                    "--horizon" => {
                        opts.horizon = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&h| h > 0)
                            .unwrap_or_else(|| die("--horizon needs a positive number"));
                    }
                    "--window" => {
                        opts.window = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&w| w > 0)
                            .unwrap_or_else(|| die("--window needs a positive number"));
                    }
                    "--max-misses" => {
                        opts.max_misses = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--max-misses needs a number"));
                    }
                    "--drift-budget" => {
                        opts.drift_budget = Some(
                            it.next()
                                .and_then(|v| pfair_cli::slocmd::parse_budget(v))
                                .unwrap_or_else(|| die("--drift-budget needs N or N/D")),
                        );
                    }
                    "--max-reweight-latency" => {
                        opts.max_reweight_latency = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| die("--max-reweight-latency needs a number")),
                        );
                    }
                    "--out" => {
                        out_path = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--out needs a file path")),
                        );
                    }
                    other => die(&format!("unknown slo option {other}")),
                }
            }
            let (report, json) = pfair_cli::slocmd::run_slo(&opts);
            print!("{report}");
            if let Some(p) = out_path {
                std::fs::write(&p, json.to_string_pretty())
                    .unwrap_or_else(|e| die(&format!("writing {p}: {e}")));
                println!("wrote {p} (SLO dump)");
            }
        }
        Some("snapshot") => {
            let Some(path) = args.get(1) else {
                die("snapshot needs a workload file");
            };
            let mut opts = pfair_cli::persistcmd::SnapshotOptions::default();
            let mut it = args.iter().skip(2);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--at" => {
                        opts.at = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| die("--at needs a slot number")),
                        );
                    }
                    "--out" => {
                        opts.out = it
                            .next()
                            .cloned()
                            .unwrap_or_else(|| die("--out needs a file path"));
                    }
                    "--metrics-out" => {
                        opts.metrics_out = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--metrics-out needs a file path")),
                        );
                    }
                    other => die(&format!("unknown snapshot option {other}")),
                }
            }
            if opts.out.is_empty() {
                die("snapshot needs --out FILE");
            }
            match pfair_cli::persistcmd::snapshot_file(path, &opts) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("resume") => {
            let Some(path) = args.get(1) else {
                die("resume needs a snapshot file");
            };
            let mut opts = pfair_cli::persistcmd::ResumeOptions::default();
            let mut it = args.iter().skip(2);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--until" => {
                        opts.until = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| die("--until needs a slot number")),
                        );
                    }
                    "--snapshot-out" => {
                        opts.snapshot_out = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--snapshot-out needs a file path")),
                        );
                    }
                    "--metrics-in" => {
                        opts.metrics_in = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--metrics-in needs a file path")),
                        );
                    }
                    "--metrics-out" => {
                        opts.metrics_out = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--metrics-out needs a file path")),
                        );
                    }
                    "--json" => {
                        opts.json_out = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--json needs a file path")),
                        );
                    }
                    other => die(&format!("unknown resume option {other}")),
                }
            }
            match pfair_cli::persistcmd::resume_file(path, &opts) {
                Ok((report, _)) => print!("{report}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("example") => print!("{}", parser::EXAMPLE),
        Some("--help") | Some("-h") | None => usage(),
        Some(other) => {
            eprintln!("error: unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!("usage: pfair run <workload-file> [--render] [--verify] [--json OUT] [--svg OUT]");
    println!(
        "       pfair trace [--whisper SEED] [--scheme oi|lj] [--horizon N] [--top K] [--out FILE]"
    );
    println!("                   [--flight FILE]");
    println!("       pfair slo [--whisper SEED] [--scheme oi|lj] [--horizon N] [--window W]");
    println!("                 [--max-misses K] [--drift-budget N[/D]] [--max-reweight-latency L]");
    println!("                 [--out FILE]");
    println!("       pfair snapshot <workload-file> [--at K] --out FILE [--metrics-out FILE]");
    println!("       pfair resume <snapshot-file> [--until K --snapshot-out FILE]");
    println!("                    [--metrics-in FILE] [--metrics-out FILE] [--json OUT]");
    println!("       pfair example");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2)
}
