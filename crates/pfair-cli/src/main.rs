//! The `pfair` command-line tool.
//!
//! ```text
//! pfair run <workload-file> [--render] [--verify]
//! pfair example                 # print a documented sample file
//! ```

use pfair_cli::{parser, run_file, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let Some(path) = args.get(1) else {
                die("run needs a workload file");
            };
            let opts = RunOptions {
                render: args.iter().any(|a| a == "--render"),
                verify: args.iter().any(|a| a == "--verify"),
            };
            let json_path = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let svg_path = args
                .iter()
                .position(|a| a == "--svg")
                .and_then(|i| args.get(i + 1))
                .cloned();
            match run_file(path, opts) {
                Ok((report, result)) => {
                    print!("{report}");
                    if let Some(p) = json_path {
                        std::fs::write(&p, pfair_cli::to_json(&result))
                            .unwrap_or_else(|e| die(&format!("writing {p}: {e}")));
                        println!("wrote {p}");
                    }
                    if let Some(p) = svg_path {
                        let svg = pfair_sched::svg::render_svg(&result, result.horizon);
                        std::fs::write(&p, svg)
                            .unwrap_or_else(|e| die(&format!("writing {p}: {e}")));
                        println!("wrote {p}");
                    }
                    if !result.is_miss_free() {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("example") => print!("{}", parser::EXAMPLE),
        Some("--help") | Some("-h") | None => usage(),
        Some(other) => {
            eprintln!("error: unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!("usage: pfair run <workload-file> [--render] [--verify] [--json OUT] [--svg OUT]");
    println!("       pfair example");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2)
}
