//! # pfair-cli
//!
//! Library backing the `pfair` command-line tool: parse a workload file
//! ([`parser`]), run it through the PD² engine, and render reports
//! ([`report`]). The binary in `main.rs` is a thin shell over
//! [`run_file`].

pub mod parser;
pub mod persistcmd;
pub mod report;
pub mod slocmd;
pub mod tracecmd;

use pfair_sched::engine::simulate;
use pfair_sched::trace::SimResult;
use pfair_sched::verify::verify;

/// Options for a CLI run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Print window diagrams after the summary.
    pub render: bool,
    /// Run the independent schedule verifier and report violations.
    pub verify: bool,
}

/// Serializes a full result (exact rationals included) as JSON, for
/// downstream tooling. The codec is integer-exact (`pfair-json`), so
/// rational components survive beyond `f64` precision.
pub fn to_json(result: &SimResult) -> String {
    use pfair_json::ToJson;
    result.to_json().to_string_pretty()
}

/// Parses and runs a workload file's contents; returns the formatted
/// report and the raw result.
pub fn run_str(input: &str, opts: RunOptions) -> Result<(String, SimResult), parser::ParseError> {
    let spec = parser::parse(input)?;
    let result = simulate(spec.config, &spec.workload);
    let mut out = report::summary(&result);
    if opts.render {
        out.push('\n');
        out.push_str(&report::diagrams(&result));
    }
    if opts.verify {
        let violations = verify(&result);
        if violations.is_empty() {
            out.push_str("\nverification: OK (windows, schedule, capacity, misses, lag)\n");
        } else {
            out.push_str("\nverification FAILED:\n");
            for violation in violations {
                out.push_str(&format!("  - {violation}\n"));
            }
        }
    }
    Ok((out, result))
}

/// [`run_str`] over a file path.
pub fn run_file(path: &str, opts: RunOptions) -> Result<(String, SimResult), String> {
    let input = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    run_str(&input, opts).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_runs_clean() {
        let (out, result) = run_str(
            parser::EXAMPLE,
            RunOptions {
                render: true,
                verify: true,
            },
        )
        .unwrap();
        assert!(result.is_miss_free());
        assert!(out.contains("verification: OK"));
        assert!(out.contains("T0"));
        assert!(out.contains('['), "diagrams rendered");
    }

    #[test]
    fn parse_errors_surface() {
        let e = run_str("junk\n", RunOptions::default()).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn json_export_roundtrips() {
        use pfair_json::{FromJson, Json};
        let (_, result) = run_str(parser::EXAMPLE, RunOptions::default()).unwrap();
        let json = to_json(&result);
        let parsed = Json::parse(&json).unwrap();
        let back = pfair_sched::trace::SimResult::from_json(&parsed).unwrap();
        assert_eq!(back.horizon, result.horizon);
        assert_eq!(back.misses.len(), result.misses.len());
    }

    #[test]
    fn lj_scheme_runs() {
        let input = "processors 1\nhorizon 40\nscheme lj\njoin 0 0 1/4\nreweight 0 5 1/2\n";
        let (_, result) = run_str(input, RunOptions::default()).unwrap();
        assert!(result.is_miss_free());
        assert_eq!(result.counters.reweight_initiations, 1);
    }
}
