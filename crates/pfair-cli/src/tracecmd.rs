//! The `pfair trace` subcommand: run a Whisper scenario under a probed
//! engine and emit a Chrome trace-event JSON file (loadable in
//! Perfetto / `chrome://tracing`) plus a report with the canonical
//! metrics snapshot and the top-K most expensive reweighting events.
//! With `--flight`, the flight recorder riding the same run dumps its
//! event ring and incidents as a second JSON document.

use pfair_json::Json;
use pfair_obs::{Fanout, FlightRecorder, MetricsProbe, TraceRecorder};
use pfair_sched::reweight::Scheme;
use std::fmt::Write as _;
use whisper_sim::{run_whisper_probed, Scenario, PROCESSORS};

/// Options for a trace run.
#[derive(Clone, Debug)]
pub struct TraceOptions {
    /// Scenario seed (each seed is one speaker-trajectory draw).
    pub seed: u64,
    /// Reweighting scheme (`oi` or `lj`).
    pub scheme: Scheme,
    /// Slots to simulate.
    pub horizon: i64,
    /// How many reweighting events the cost report lists.
    pub top: usize,
    /// Dump the flight recorder's ring and incidents too.
    pub flight: bool,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            seed: 0,
            scheme: Scheme::Oi,
            horizon: 1000,
            top: 10,
            flight: false,
        }
    }
}

/// Runs the scenario and returns the human-readable report, the Chrome
/// trace-event JSON document, and — when `opts.flight` is set — the
/// flight-recorder dump (an explicit end-of-run capture, so the dump
/// always carries at least one incident even on a clean run).
pub fn run_trace(opts: &TraceOptions) -> (String, Json, Option<Json>) {
    // audit: allow(no-float-in-scheduling, Whisper scenario knobs; speed/radius feed weight inputs, not schedules)
    let sc = Scenario::new(2.9, 0.25, true, opts.seed);
    let probe = Fanout(
        TraceRecorder::new(),
        Fanout(MetricsProbe::new(), FlightRecorder::new()),
    );
    let (metrics, Fanout(rec, Fanout(mp, mut flight))) =
        run_whisper_probed(&sc, opts.scheme.clone(), opts.horizon, probe);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "whisper seed {}, scheme {:?}, horizon {} on {} processors",
        opts.seed, opts.scheme, opts.horizon, PROCESSORS
    );
    let _ = writeln!(
        out,
        "misses {}; max drift {:.3}; {:.2}% of ideal",
        metrics.misses, metrics.max_drift, metrics.pct_of_ideal
    );
    let superseded = rec.spans().iter().filter(|s| s.superseded).count();
    let _ = writeln!(
        out,
        "{} events recorded; {} reweighting spans ({} superseded)",
        rec.events().len(),
        rec.spans().len(),
        superseded
    );
    out.push('\n');
    out.push_str("metrics snapshot:\n");
    for line in mp.registry().snapshot_text().lines() {
        let _ = writeln!(out, "  {line}");
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "top {} most expensive reweighting events (cost = queue ops + halts):",
        opts.top
    );
    let _ = writeln!(
        out,
        "  {:<5} {:<6} {:<5} {:>10} {:>9} {:>6} {:>10} {:>6}",
        "rank", "task", "rule", "initiated", "enacted", "halts", "queue ops", "cost"
    );
    for (rank, span) in rec.top_reweights(opts.top).iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<5} {:<6} {:<5} {:>10} {:>9} {:>6} {:>10} {:>6}",
            rank + 1,
            span.task.to_string(),
            span.rule.label(),
            span.initiated_at,
            span.enacted_at
                .map_or_else(|| "-".into(), |e| e.to_string()),
            span.halts,
            span.queue_ops,
            span.total_cost()
        );
    }
    let flight_dump = opts.flight.then(|| {
        flight.capture_now(opts.horizon);
        let _ = writeln!(
            out,
            "\nflight recorder: {} ring events ({} dropped), {} incident(s)",
            flight.recent().count(),
            flight.dropped(),
            flight.incidents().len()
        );
        flight.dump()
    });
    (out, rec.chrome_trace(), flight_dump)
}

/// Parses a `--scheme` value.
pub fn parse_scheme(s: &str) -> Option<Scheme> {
    match s {
        "oi" => Some(Scheme::Oi),
        "lj" => Some(Scheme::LeaveJoin),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_report_lists_costed_reweights_and_valid_chrome_json() {
        let opts = TraceOptions {
            horizon: 400,
            top: 5,
            ..TraceOptions::default()
        };
        let (report, chrome, flight) = run_trace(&opts);
        assert!(flight.is_none(), "no --flight, no dump");
        assert!(report.contains("whisper seed 0"));
        assert!(report.contains("metrics snapshot:"));
        assert!(report.contains("counter reweight.initiated"));
        assert!(report.contains("top 5 most expensive"));
        // The document must survive a serialize/parse round trip and
        // carry the Chrome trace envelope with reweight spans.
        let text = chrome.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap();
        let Json::Array(items) = events else {
            panic!("traceEvents must be an array")
        };
        assert!(!items.is_empty());
        let has_reweight_span = items.iter().any(|e| {
            matches!(e.get("cat"), Some(Json::Str(c)) if c == "reweight")
                && e.get("args").and_then(|a| a.get("rule")).is_some()
                && e.get("args").and_then(|a| a.get("total_cost")).is_some()
        });
        assert!(has_reweight_span, "reweight spans carry rule + cost");
    }

    #[test]
    fn flight_dump_has_ring_and_incidents() {
        let opts = TraceOptions {
            horizon: 400,
            flight: true,
            ..TraceOptions::default()
        };
        let (report, _, flight) = run_trace(&opts);
        assert!(report.contains("flight recorder:"));
        let dump = flight.expect("--flight produces a dump");
        let parsed = Json::parse(&dump.to_string_pretty()).unwrap();
        for key in ["capacity", "dropped", "suppressed", "events", "incidents"] {
            assert!(parsed.get(key).is_some(), "dump missing `{key}`");
        }
        let Some(Json::Array(incidents)) = parsed.get("incidents") else {
            panic!("incidents must be an array");
        };
        // The end-of-run capture is always present.
        assert!(!incidents.is_empty());
        assert!(incidents
            .iter()
            .any(|i| matches!(i.get("trigger"), Some(Json::Str(s)) if s == "request")));
    }

    #[test]
    fn scheme_parser_accepts_both_ladder_ends() {
        assert!(matches!(parse_scheme("oi"), Some(Scheme::Oi)));
        assert!(matches!(parse_scheme("lj"), Some(Scheme::LeaveJoin)));
        assert!(parse_scheme("hybrid").is_none());
    }
}
