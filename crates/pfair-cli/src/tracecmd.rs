//! The `pfair trace` subcommand: run a Whisper scenario under a probed
//! engine and emit a Chrome trace-event JSON file (loadable in
//! Perfetto / `chrome://tracing`) plus a report with the canonical
//! metrics snapshot and the top-K most expensive reweighting events.

use pfair_json::Json;
use pfair_obs::{Fanout, MetricsProbe, TraceRecorder};
use pfair_sched::reweight::Scheme;
use std::fmt::Write as _;
use whisper_sim::{run_whisper_probed, Scenario, PROCESSORS};

/// Options for a trace run.
#[derive(Clone, Debug)]
pub struct TraceOptions {
    /// Scenario seed (each seed is one speaker-trajectory draw).
    pub seed: u64,
    /// Reweighting scheme (`oi` or `lj`).
    pub scheme: Scheme,
    /// Slots to simulate.
    pub horizon: i64,
    /// How many reweighting events the cost report lists.
    pub top: usize,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            seed: 0,
            scheme: Scheme::Oi,
            horizon: 1000,
            top: 10,
        }
    }
}

/// Runs the scenario and returns the human-readable report plus the
/// Chrome trace-event JSON document.
pub fn run_trace(opts: &TraceOptions) -> (String, Json) {
    // audit: allow(no-float-in-scheduling, Whisper scenario knobs; speed/radius feed weight inputs, not schedules)
    let sc = Scenario::new(2.9, 0.25, true, opts.seed);
    let probe = Fanout(TraceRecorder::new(), MetricsProbe::new());
    let (metrics, Fanout(rec, mp)) =
        run_whisper_probed(&sc, opts.scheme.clone(), opts.horizon, probe);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "whisper seed {}, scheme {:?}, horizon {} on {} processors",
        opts.seed, opts.scheme, opts.horizon, PROCESSORS
    );
    let _ = writeln!(
        out,
        "misses {}; max drift {:.3}; {:.2}% of ideal",
        metrics.misses, metrics.max_drift, metrics.pct_of_ideal
    );
    let superseded = rec.spans().iter().filter(|s| s.superseded).count();
    let _ = writeln!(
        out,
        "{} events recorded; {} reweighting spans ({} superseded)",
        rec.events().len(),
        rec.spans().len(),
        superseded
    );
    out.push('\n');
    out.push_str("metrics snapshot:\n");
    for line in mp.registry().snapshot_text().lines() {
        let _ = writeln!(out, "  {line}");
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "top {} most expensive reweighting events (cost = queue ops + halts):",
        opts.top
    );
    let _ = writeln!(
        out,
        "  {:<5} {:<6} {:<5} {:>10} {:>9} {:>6} {:>10} {:>6}",
        "rank", "task", "rule", "initiated", "enacted", "halts", "queue ops", "cost"
    );
    for (rank, span) in rec.top_reweights(opts.top).iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<5} {:<6} {:<5} {:>10} {:>9} {:>6} {:>10} {:>6}",
            rank + 1,
            span.task.to_string(),
            span.rule.label(),
            span.initiated_at,
            span.enacted_at
                .map_or_else(|| "-".into(), |e| e.to_string()),
            span.halts,
            span.queue_ops,
            span.total_cost()
        );
    }
    (out, rec.chrome_trace())
}

/// Parses a `--scheme` value.
pub fn parse_scheme(s: &str) -> Option<Scheme> {
    match s {
        "oi" => Some(Scheme::Oi),
        "lj" => Some(Scheme::LeaveJoin),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_report_lists_costed_reweights_and_valid_chrome_json() {
        let opts = TraceOptions {
            horizon: 400,
            top: 5,
            ..TraceOptions::default()
        };
        let (report, chrome) = run_trace(&opts);
        assert!(report.contains("whisper seed 0"));
        assert!(report.contains("metrics snapshot:"));
        assert!(report.contains("counter reweight.initiated"));
        assert!(report.contains("top 5 most expensive"));
        // The document must survive a serialize/parse round trip and
        // carry the Chrome trace envelope with reweight spans.
        let text = chrome.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap();
        let Json::Array(items) = events else {
            panic!("traceEvents must be an array")
        };
        assert!(!items.is_empty());
        let has_reweight_span = items.iter().any(|e| {
            matches!(e.get("cat"), Some(Json::Str(c)) if c == "reweight")
                && e.get("args").and_then(|a| a.get("rule")).is_some()
                && e.get("args").and_then(|a| a.get("total_cost")).is_some()
        });
        assert!(has_reweight_span, "reweight spans carry rule + cost");
    }

    #[test]
    fn scheme_parser_accepts_both_ladder_ends() {
        assert!(matches!(parse_scheme("oi"), Some(Scheme::Oi)));
        assert!(matches!(parse_scheme("lj"), Some(Scheme::LeaveJoin)));
        assert!(parse_scheme("hybrid").is_none());
    }
}
