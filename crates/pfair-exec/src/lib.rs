//! # pfair-exec
//!
//! A quantum-based real-time executor: run user closures on a pool of
//! worker threads under **PD² Pfair scheduling with live fine-grained
//! reweighting** — the paper's scheduler as an actually usable runtime
//! rather than a simulation.
//!
//! The executor drives the `pfair-sched` [`Engine`] in lock-step with
//! wall-clock quanta: at every quantum boundary it drains reweighting
//! requests (which any thread may submit through a [`Controller`]),
//! advances the engine one slot, and dispatches one *tick* — one call
//! of the task's closure — per scheduled quantum to the worker pool.
//! The engine guarantees the Pfair contract: between any two points in
//! time, each task's tick count tracks its (time-varying) weight share
//! to within one quantum, and weight changes take effect with the
//! constant drift of rules O/I.
//!
//! ```
//! use pfair_exec::ExecutorBuilder;
//! use pfair_core::{rat, Weight};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let count = Arc::new(AtomicU64::new(0));
//! let c = count.clone();
//! let mut builder = ExecutorBuilder::new(2).virtual_time();
//! let h = builder.task("worker", Weight::new(rat(1, 2)), move |_tick| {
//!     c.fetch_add(1, Ordering::Relaxed);
//! });
//! let mut exec = builder.build();
//! exec.run(100);
//! let report = exec.shutdown();
//! assert_eq!(report.ticks(h), 50); // half of 100 quanta
//! assert_eq!(count.load(Ordering::Relaxed), 50);
//! ```
//!
//! ## Overruns
//!
//! A tick is budgeted one quantum. A closure that runs past the
//! boundary is *not* killed (Rust can't preempt safely); instead the
//! executor records an **overrun**, and if the task is scheduled again
//! while its previous tick still runs, that quantum is recorded as a
//! **skip** (the allocation is lost, exactly like an embedded
//! budget-overrun drop). In `virtual_time` mode the dispatcher instead
//! waits for every tick to finish before closing the slot, making runs
//! deterministic for tests.

// Conventional-lint mirror of the audit's no-float-in-scheduling and
// no-panic-in-library invariants (types/methods listed in the root
// clippy.toml). Test code is exempt, as under audit.toml.
#![cfg_attr(not(test), warn(clippy::disallowed_types, clippy::disallowed_methods))]

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_core::weight::Weight;
use pfair_obs::{NoopProbe, Probe};
use pfair_sched::engine::{Engine, SimConfig};
use pfair_sched::event::{Event, EventKind, Workload};
use pfair_sched::trace::SimResult;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// The dispatcher owns the engine on its own thread, so the executor's
// whole stack rests on `Engine` being `Send`. Since the slab refactor
// the engine's per-task storage is plain columns + rows (no `Rc`, no
// interior pointers), which makes that derivable — pin it here so a
// regression in `pfair-sched` fails this crate's build, not a user's.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Engine<NoopProbe>>();
};

/// Opaque handle to a registered task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskHandle(TaskId);

/// Information passed to each tick of a task body.
#[derive(Clone, Copy, Debug)]
pub struct Tick {
    /// The quantum (slot) index being executed.
    pub slot: Slot,
    /// How many ticks of this task ran before this one.
    pub seq: u64,
    /// The wall-clock budget for this tick (zero in virtual time).
    pub budget: Duration,
}

type TaskBody = Box<dyn FnMut(Tick) + Send>;

struct RtTask {
    name: String,
    body: Arc<Mutex<TaskBody>>,
    ticks: u64,
}

/// Builder for an [`Executor`].
///
/// Generic over a [`Probe`] so a run can record structured engine
/// events plus the executor-specific overrun/skip instants; the
/// default [`NoopProbe`] compiles to nothing.
pub struct ExecutorBuilder<P: Probe = NoopProbe> {
    workers: u32,
    quantum: Duration,
    horizon: Slot,
    tasks: Vec<(String, Weight, TaskBody)>,
    probe: P,
}

impl ExecutorBuilder {
    /// An executor with `workers` worker threads (= processors `M`) and
    /// a default 10 ms quantum.
    pub fn new(workers: u32) -> ExecutorBuilder {
        ExecutorBuilder {
            workers,
            quantum: Duration::from_millis(10),
            horizon: 1_000_000,
            tasks: Vec::new(),
            probe: NoopProbe,
        }
    }
}

impl<P: Probe> ExecutorBuilder<P> {
    /// Sets the quantum length.
    pub fn quantum(mut self, quantum: Duration) -> ExecutorBuilder<P> {
        self.quantum = quantum;
        self
    }

    /// Virtual time: no sleeping; each slot closes when all of its
    /// ticks have completed. Deterministic — intended for tests.
    pub fn virtual_time(mut self) -> ExecutorBuilder<P> {
        self.quantum = Duration::ZERO;
        self
    }

    /// Caps the total number of quanta the executor may ever run.
    pub fn max_quanta(mut self, horizon: Slot) -> ExecutorBuilder<P> {
        self.horizon = horizon;
        self
    }

    /// Attaches a probe, replacing any earlier one. The probe observes
    /// every engine event of the run plus the executor's overrun/skip
    /// instants, and comes back out of
    /// [`Executor::shutdown_with_probe`].
    pub fn with_probe<Q: Probe>(self, probe: Q) -> ExecutorBuilder<Q> {
        ExecutorBuilder {
            workers: self.workers,
            quantum: self.quantum,
            horizon: self.horizon,
            tasks: self.tasks,
            probe,
        }
    }

    /// Registers a task with an initial weight and its per-tick body.
    /// Returns the handle used for reweighting.
    pub fn task(
        &mut self,
        name: impl Into<String>,
        weight: Weight,
        body: impl FnMut(Tick) + Send + 'static,
    ) -> TaskHandle {
        // audit: allow(panic, builder capacity limit; more than u32::MAX tasks is a caller error)
        let id = TaskId(u32::try_from(self.tasks.len()).expect("more than u32::MAX tasks"));
        self.tasks.push((name.into(), weight, Box::new(body)));
        TaskHandle(id)
    }

    /// Builds the executor (spawns the worker pool; the clock starts on
    /// the first [`Executor::run`] call).
    pub fn build(self) -> Executor<P> {
        let mut workload = Workload::new();
        for (i, (_, weight, _)) in self.tasks.iter().enumerate() {
            workload.push(Event {
                at: 0,
                // audit: allow(panic, task count was bounded to u32 at registration)
                task: TaskId(u32::try_from(i).expect("more than u32::MAX tasks")),
                kind: EventKind::Join(*weight),
            });
        }
        let engine = Engine::with_probe(
            SimConfig::oi(self.workers, self.horizon),
            &workload,
            self.probe,
        );
        let tasks: Vec<RtTask> = self
            .tasks
            .into_iter()
            .map(|(name, _, body)| RtTask {
                name,
                body: Arc::new(Mutex::new(body)),
                ticks: 0,
            })
            .collect();

        let (job_tx, job_rx) = unbounded::<Job>();
        let (done_tx, done_rx) = unbounded::<usize>();
        let workers = (0..self.workers)
            .map(|w| spawn_worker(w, job_rx.clone(), done_tx.clone()))
            .collect();
        let (ctl_tx, ctl_rx) = unbounded();

        Executor {
            engine,
            tasks,
            quantum: self.quantum,
            job_tx: Some(job_tx),
            done_rx,
            ctl_tx,
            ctl_rx,
            workers,
            busy: vec![false; 0],
            overruns: Vec::new(),
            skips: Vec::new(),
        }
    }
}

/// A unit of work: run one tick of task `task_idx`.
struct Job {
    task_idx: usize,
    body: Arc<Mutex<TaskBody>>,
    tick: Tick,
}

fn spawn_worker(idx: u32, jobs: Receiver<Job>, done: Sender<usize>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("pfair-worker-{idx}"))
        .spawn(move || {
            while let Ok(job) = jobs.recv() {
                {
                    let mut body = job.body.lock();
                    (body)(job.tick);
                }
                // The dispatcher may have shut down mid-run; a send
                // failure is then expected and harmless.
                let _ = done.send(job.task_idx);
            }
        })
        // audit: allow(panic, OS thread-spawn failure is unrecoverable at this layer)
        .expect("spawning worker thread")
}

/// Control messages a [`Controller`] can submit from any thread.
enum CtlMsg {
    Reweight(TaskId, Weight),
    Leave(TaskId),
}

/// A cloneable remote control for a running [`Executor`]: submit
/// reweighting requests and leaves from any thread. Requests take
/// effect at the next quantum boundary, where the engine applies the
/// fine-grained rules O/I.
#[derive(Clone)]
pub struct Controller {
    tx: Sender<CtlMsg>,
}

impl Controller {
    /// Requests a weight change for `task`. Subject to the executor's
    /// admission policing; heavy targets (> 1/2) are refused by the
    /// engine.
    pub fn reweight(&self, task: TaskHandle, weight: Weight) {
        let _ = self.tx.send(CtlMsg::Reweight(task.0, weight));
    }

    /// Asks `task` to leave the system (rule L governs the exit time).
    pub fn leave(&self, task: TaskHandle) {
        let _ = self.tx.send(CtlMsg::Leave(task.0));
    }
}

/// Final report of an executor run.
pub struct ExecReport {
    /// The engine-side result: exact drift, ideal allocations, misses,
    /// counters.
    pub sim: SimResult,
    /// Task names, by task id.
    pub names: Vec<String>,
    /// Completed ticks per task.
    pub ticks_per_task: Vec<u64>,
    /// Ticks that ran past their quantum budget, per task.
    pub overruns: Vec<u64>,
    /// Scheduled quanta lost because the previous tick was still
    /// running, per task.
    pub skips: Vec<u64>,
}

impl ExecReport {
    /// Completed ticks of one task.
    pub fn ticks(&self, h: TaskHandle) -> u64 {
        self.ticks_per_task[h.0.idx()]
    }

    /// Overruns of one task.
    pub fn overruns(&self, h: TaskHandle) -> u64 {
        self.overruns[h.0.idx()]
    }

    /// Skips of one task.
    pub fn skips(&self, h: TaskHandle) -> u64 {
        self.skips[h.0.idx()]
    }
}

/// The PD² real-time executor. Build with [`ExecutorBuilder`].
pub struct Executor<P: Probe = NoopProbe> {
    engine: Engine<P>,
    tasks: Vec<RtTask>,
    quantum: Duration,
    job_tx: Option<Sender<Job>>,
    done_rx: Receiver<usize>,
    ctl_tx: Sender<CtlMsg>,
    ctl_rx: Receiver<CtlMsg>,
    workers: Vec<JoinHandle<()>>,
    busy: Vec<bool>,
    overruns: Vec<u64>,
    skips: Vec<u64>,
}

impl<P: Probe> Executor<P> {
    /// A remote control usable from any thread.
    pub fn controller(&self) -> Controller {
        Controller {
            tx: self.ctl_tx.clone(),
        }
    }

    /// The next quantum index to run.
    pub fn now(&self) -> Slot {
        self.engine.now()
    }

    /// Runs `quanta` quanta. May be called repeatedly; the schedule
    /// continues where it left off.
    pub fn run(&mut self, quanta: Slot) {
        if self.busy.is_empty() {
            self.busy = vec![false; self.tasks.len()];
            self.overruns = vec![0; self.tasks.len()];
            self.skips = vec![0; self.tasks.len()];
        }
        let virtual_time = self.quantum.is_zero();
        for _ in 0..quanta {
            let slot_start = Instant::now(); // audit: allow(nondeterminism, the executor paces real quanta by wall clock, pacing never feeds back into the simulated schedule)
            let t = self.engine.now();

            // Drain control requests; they fire in this slot.
            while let Ok(msg) = self.ctl_rx.try_recv() {
                let event = match msg {
                    CtlMsg::Reweight(task, w) => Event {
                        at: t,
                        task,
                        kind: EventKind::Reweight(w),
                    },
                    CtlMsg::Leave(task) => Event {
                        at: t,
                        task,
                        kind: EventKind::Leave,
                    },
                };
                self.engine.inject(event);
            }

            // Collect completions from earlier slots.
            self.drain_done();

            // Advance PD² one slot and dispatch its choices.
            let chosen = self.engine.step();
            let mut dispatched = 0usize;
            for id in chosen {
                let idx = id.idx();
                if self.busy[idx] {
                    // Previous tick still running: the quantum is lost.
                    self.skips[idx] += 1;
                    self.overruns[idx] += 1;
                    self.engine.probe_mut().on_exec_overrun(id, t);
                    self.engine.probe_mut().on_exec_skip(id, t);
                    continue;
                }
                self.busy[idx] = true;
                let task = &mut self.tasks[idx];
                let tick = Tick {
                    slot: t,
                    seq: task.ticks,
                    budget: self.quantum,
                };
                task.ticks += 1;
                self.job_tx
                    .as_ref()
                    // audit: allow(panic, dispatch after shutdown is a caller error)
                    .expect("executor already shut down")
                    .send(Job {
                        task_idx: idx,
                        body: task.body.clone(),
                        tick,
                    })
                    // audit: allow(panic, a dead worker pool means a task body panicked; stop loudly)
                    .expect("worker pool gone");
                dispatched += 1;
            }

            if virtual_time {
                // Deterministic mode: the slot closes when all its
                // ticks have completed.
                let mut done = 0;
                while done < dispatched {
                    // audit: allow(panic, a dead worker pool means a task body panicked; stop loudly)
                    let idx = self.done_rx.recv().expect("worker pool gone");
                    self.busy[idx] = false;
                    done += 1;
                }
            } else {
                // Real time: sleep out the quantum, then note overruns.
                let elapsed = slot_start.elapsed();
                if elapsed < self.quantum {
                    std::thread::sleep(self.quantum - elapsed);
                }
                self.drain_done();
            }
        }
    }

    fn drain_done(&mut self) {
        loop {
            match self.done_rx.try_recv() {
                Ok(idx) => self.busy[idx] = false,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
    }

    /// Stops the worker pool and returns the report.
    pub fn shutdown(self) -> ExecReport {
        self.shutdown_with_probe().0
    }

    /// [`Executor::shutdown`], also handing back the probe with
    /// everything it recorded over the run.
    pub fn shutdown_with_probe(mut self) -> (ExecReport, P) {
        // Closing the job channel terminates the workers.
        self.job_tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let ticks_per_task = self.tasks.iter().map(|t| t.ticks).collect();
        let names = self.tasks.iter().map(|t| t.name.clone()).collect();
        let (sim, probe) = self.engine.finish_with_probe();
        (
            ExecReport {
                sim,
                names,
                ticks_per_task,
                overruns: self.overruns,
                skips: self.skips,
            },
            probe,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counter_task(
        builder: &mut ExecutorBuilder,
        name: &str,
        num: i128,
        den: i128,
    ) -> (TaskHandle, Arc<AtomicU64>) {
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let h = builder.task(name, Weight::new(rat(num, den)), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        (h, count)
    }

    #[test]
    fn tick_counts_match_weights() {
        let mut b = ExecutorBuilder::new(2).virtual_time();
        let (h1, c1) = counter_task(&mut b, "half", 1, 2);
        let (h2, c2) = counter_task(&mut b, "third", 1, 3);
        let (h3, c3) = counter_task(&mut b, "quarter", 1, 4);
        let mut exec = b.build();
        exec.run(120);
        let report = exec.shutdown();
        assert_eq!(report.ticks(h1), 60);
        assert_eq!(report.ticks(h2), 40);
        assert_eq!(report.ticks(h3), 30);
        assert_eq!(c1.load(Ordering::Relaxed), 60);
        assert_eq!(c2.load(Ordering::Relaxed), 40);
        assert_eq!(c3.load(Ordering::Relaxed), 30);
        assert!(report.sim.is_miss_free());
    }

    #[test]
    fn live_reweighting_shifts_the_share() {
        let mut b = ExecutorBuilder::new(1).virtual_time();
        let (h1, c1) = counter_task(&mut b, "adaptive", 1, 4);
        let (_h2, _c2) = counter_task(&mut b, "steady", 1, 4);
        let mut exec = b.build();
        let ctl = exec.controller();
        exec.run(100);
        let before = c1.load(Ordering::Relaxed);
        assert_eq!(before, 25);
        // Double the share mid-run.
        ctl.reweight(h1, Weight::new(rat(1, 2)));
        exec.run(100);
        let report = exec.shutdown();
        let after = c1.load(Ordering::Relaxed) - before;
        assert!(
            (48..=52).contains(&after),
            "second phase ticks {after} should be ≈ 50"
        );
        assert!(report.sim.is_miss_free());
        // The engine saw exactly one initiation, enacted fine-grained.
        assert_eq!(report.sim.counters.reweight_initiations, 1);
        assert!(report.sim.max_abs_drift_delta() <= rat(2, 1));
    }

    #[test]
    fn leave_stops_ticks() {
        let mut b = ExecutorBuilder::new(1).virtual_time();
        let (h1, c1) = counter_task(&mut b, "leaver", 1, 2);
        let (_h2, _c2) = counter_task(&mut b, "stayer", 1, 2);
        let mut exec = b.build();
        let ctl = exec.controller();
        exec.run(40);
        ctl.leave(h1);
        exec.run(40);
        let report = exec.shutdown();
        // At most a few quanta after the leave request (rule L delay).
        assert!(c1.load(Ordering::Relaxed) <= 24);
        assert!(report.sim.is_miss_free());
    }

    #[test]
    fn pfair_window_in_real_ticks() {
        // At every prefix, a weight-w task's tick count is within one of
        // w·t — the Pfair lag contract observed from user space.
        let mut b = ExecutorBuilder::new(2).virtual_time();
        let (_h, count) = counter_task(&mut b, "观察", 2, 5);
        let (_h2, _c) = counter_task(&mut b, "other", 1, 2);
        let mut exec = b.build();
        for t in 1..=60i64 {
            exec.run(1);
            let ticks = count.load(Ordering::Relaxed) as f64;
            let ideal = 0.4 * t as f64;
            assert!(
                (ticks - ideal).abs() < 1.0 + 1e-9,
                "t={t}: ticks {ticks} vs ideal {ideal}"
            );
        }
        exec.shutdown();
    }

    #[test]
    fn real_time_mode_runs_and_reports() {
        // Short real-time run with a 1 ms quantum; the bodies are fast,
        // so no overruns are expected.
        let mut b = ExecutorBuilder::new(2).quantum(Duration::from_millis(1));
        let (h1, _c1) = counter_task(&mut b, "a", 1, 2);
        let (h2, _c2) = counter_task(&mut b, "b", 1, 2);
        let mut exec = b.build();
        exec.run(30);
        let report = exec.shutdown();
        assert_eq!(report.ticks(h1), 15);
        assert_eq!(report.ticks(h2), 15);
        assert_eq!(report.overruns(h1) + report.overruns(h2), 0);
        assert_eq!(report.names.len(), 2);
    }

    #[test]
    fn overrunning_body_is_skipped_not_doubled() {
        // One task's body sleeps far past its quantum: the executor must
        // record overruns/skips and never run the body concurrently.
        let concurrent = Arc::new(AtomicU64::new(0));
        let max_seen = Arc::new(AtomicU64::new(0));
        let (conc, maxs) = (concurrent.clone(), max_seen.clone());
        let mut b = ExecutorBuilder::new(2).quantum(Duration::from_millis(1));
        let h = b.task("slow", Weight::new(rat(1, 2)), move |_| {
            let in_flight = conc.fetch_add(1, Ordering::SeqCst) + 1;
            maxs.fetch_max(in_flight, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(4));
            conc.fetch_sub(1, Ordering::SeqCst);
        });
        let mut exec = b.build();
        exec.run(20);
        let report = exec.shutdown();
        assert!(report.skips(h) > 0, "a 4x overrun must lose quanta");
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "no concurrent ticks");
    }

    #[test]
    fn probe_observes_exec_skips_and_engine_events() {
        // Same overrun scenario, observed through a metrics probe: the
        // executor-level skip/overrun instants and the engine's slot
        // count both land in the registry.
        let mut b = ExecutorBuilder::new(2)
            .quantum(Duration::from_millis(1))
            .with_probe(pfair_obs::MetricsProbe::new());
        let h = b.task("slow", Weight::new(rat(1, 2)), |_| {
            std::thread::sleep(Duration::from_millis(4));
        });
        let mut exec = b.build();
        exec.run(20);
        let (report, probe) = exec.shutdown_with_probe();
        let reg = probe.registry();
        assert_eq!(reg.counter("slots"), 20);
        assert_eq!(reg.counter("exec.skips"), report.skips(h));
        assert_eq!(reg.counter("exec.overruns"), report.overruns(h));
        assert!(reg.counter("exec.skips") > 0);
        assert_eq!(
            reg.counter("schedules"),
            report.sim.counters.scheduled_quanta
        );
    }

    #[test]
    fn flight_recorder_and_slo_monitor_ride_the_executor() {
        // Overrun scenario again, observed by the black-box pair: the
        // flight recorder must keep the executor-level overrun/skip
        // instants in its ring, and the SLO monitor must stay clean (a
        // feasible schedule has no deadline misses even when bodies
        // overrun their quanta).
        use pfair_obs::{Fanout, FlightRecorder, ObsEvent, SloConfig, SloMonitor};
        let mut b = ExecutorBuilder::new(2)
            .quantum(Duration::from_millis(1))
            .with_probe(Fanout(
                FlightRecorder::new(),
                SloMonitor::new(SloConfig::default()),
            ));
        let h = b.task("slow", Weight::new(rat(1, 2)), |_| {
            std::thread::sleep(Duration::from_millis(4));
        });
        let mut exec = b.build();
        exec.run(20);
        let (report, Fanout(mut flight, slo)) = exec.shutdown_with_probe();
        assert!(report.skips(h) > 0);
        let overruns = flight
            .recent()
            .filter(|e| matches!(e, ObsEvent::ExecOverrun { .. } | ObsEvent::ExecSkip { .. }))
            .count();
        assert!(
            u64::try_from(overruns).unwrap_or(0) > 0,
            "flight ring must hold the executor overrun/skip instants"
        );
        assert!(flight.incidents().is_empty(), "no miss, no incident");
        flight.capture_now(20);
        assert_eq!(flight.incidents().len(), 1, "explicit capture works");
        assert!(slo.is_clean(), "feasible run must not breach the SLO");
        assert_eq!(slo.misses_total(), 0);
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use pfair_core::rational::rat;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A controller used from a *different* thread while the executor
    /// runs: requests land at quantum boundaries, the run stays correct,
    /// and the requested weight is eventually enacted.
    #[test]
    fn controller_from_another_thread() {
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let mut b = ExecutorBuilder::new(1).quantum(Duration::from_micros(300));
        let h = b.task("adaptive", Weight::new(rat(1, 10)), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let _steady = b.task("steady", Weight::new(rat(1, 10)), |_| {});
        let mut exec = b.build();
        let ctl = exec.controller();

        let pusher = std::thread::spawn(move || {
            // Fire a ramp of requests asynchronously while the executor runs.
            for k in 2..=5u32 {
                std::thread::sleep(Duration::from_millis(10));
                ctl.reweight(h, Weight::new(rat(i128::from(k), 10)));
            }
        });
        exec.run(400);
        pusher.join().unwrap();
        let report = exec.shutdown();
        assert!(report.sim.is_miss_free());
        // All requests were seen and the final grant took effect: over
        // the tail of the run the task's share approaches 1/2.
        assert!(report.sim.counters.reweight_initiations >= 1);
        let ticks = count.load(Ordering::Relaxed);
        assert!(
            ticks > 40,
            "adaptive task should have grown past its initial 10% share: {ticks} ticks"
        );
        assert!(report.sim.max_abs_drift_delta() <= rat(2, 1));
    }

    /// Two controllers (clones) from two threads do not race the engine.
    #[test]
    fn multiple_controllers() {
        let mut b = ExecutorBuilder::new(2).virtual_time();
        let h1 = b.task("a", Weight::new(rat(1, 4)), |_| {});
        let h2 = b.task("b", Weight::new(rat(1, 4)), |_| {});
        let mut exec = b.build();
        let c1 = exec.controller();
        let c2 = exec.controller();
        let t1 = std::thread::spawn(move || c1.reweight(h1, Weight::new(rat(1, 2))));
        let t2 = std::thread::spawn(move || c2.reweight(h2, Weight::new(rat(1, 3))));
        t1.join().unwrap();
        t2.join().unwrap();
        exec.run(60);
        let report = exec.shutdown();
        assert!(report.sim.is_miss_free());
        assert_eq!(report.sim.counters.reweight_initiations, 2);
    }
}
