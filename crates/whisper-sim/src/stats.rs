//! Summary statistics for repeated runs: means with 98% confidence
//! intervals, as reported in every graph of the paper's Fig. 11.

/// A mean with its 98% confidence half-width over `n` samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 98% confidence interval (`z = 2.326`,
    /// normal approximation — the paper runs 61 samples per point, well
    /// into the regime where this matches the t-interval).
    pub ci98: f64,
    /// Number of samples.
    pub n: usize,
}

/// z-value for a two-sided 98% confidence interval.
pub const Z_98: f64 = 2.326;

/// Summarizes a sample set. Empty input yields a zero summary; a single
/// sample has an undefined interval, reported as zero.
pub fn summarize(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            ci98: 0.0,
            n: 0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary { mean, ci98: 0.0, n };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let ci98 = Z_98 * (var / n as f64).sqrt();
    Summary { mean, ci98, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_have_zero_interval() {
        let s = summarize(&[2.0; 61]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci98, 0.0);
        assert_eq!(s.n, 61);
    }

    #[test]
    fn known_variance_case() {
        // Samples {0, 2}: mean 1, sample variance 2, CI = z * sqrt(2/2) = z.
        let s = summarize(&[0.0, 2.0]);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!((s.ci98 - Z_98).abs() < 1e-12);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(
            summarize(&[]),
            Summary {
                mean: 0.0,
                ci98: 0.0,
                n: 0
            }
        );
        let one = summarize(&[5.0]);
        assert_eq!(one.mean, 5.0);
        assert_eq!(one.ci98, 0.0);
    }

    #[test]
    fn interval_shrinks_with_sample_count() {
        let few: Vec<f64> = (0..4).map(f64::from).collect();
        let many: Vec<f64> = (0..64).map(|i| f64::from(i % 4)).collect();
        assert!(summarize(&many).ci98 < summarize(&few).ci98);
    }
}
