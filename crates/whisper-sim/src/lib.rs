//! # whisper-sim
//!
//! A simulation of the **Whisper** acoustic tracking system (Vallidis,
//! UNC 2002) as the adaptive real-time workload of the paper's
//! evaluation (§5): three speakers revolve around a 5 cm pole in a
//! 1 m × 1 m room with microphones in the corners; one task per
//! speaker/microphone pair performs the correlation computation whose
//! cost — and hence processor share — follows the pair's acoustic
//! distance, occlusions included.
//!
//! * [`geometry`] — room geometry and pole occlusion (shortest path
//!   around a circle).
//! * [`acoustics`] — the calibrated correlation cost model mapping
//!   acoustic distance to a (quantized) task weight ≤ 1/3.
//! * [`scenario`] — speaker motion and workload generation (joins plus
//!   a reweight request per 5 cm of distance change).
//! * [`stats`] — means and the 98% confidence intervals the paper's
//!   graphs carry.
//! * [`extensions`] — the paper's simplifying assumptions, lifted
//!   (3-D motion, ambient noise, interference, variable speed).
//! * [`room_svg`] — Fig. 10 as code: the room rendered as SVG with
//!   live speaker positions and occluded sight-lines.
//!
//! [`run_whisper`] glues a scenario to the `pfair-sched` engine and
//! extracts the two metrics Fig. 11 plots: maximum drift at time 1,000
//! and per-task average percentage of the `I_PS` allocation.

pub mod acoustics;
pub mod extensions;
pub mod geometry;
pub mod room_svg;
pub mod scenario;
pub mod stats;

use pfair_core::time::Slot;
use pfair_obs::{NoopProbe, Probe};
use pfair_sched::engine::{simulate_with, SimConfig};
use pfair_sched::overhead::Counters;
use pfair_sched::reweight::Scheme;
pub use scenario::{generate_workload, Scenario, HORIZON, PROCESSORS};
pub use stats::{summarize, Summary};

/// The two Fig. 11 metrics (plus overhead counters) of one run.
#[derive(Clone, Copy, Debug)]
pub struct WhisperMetrics {
    /// Maximum `|drift(T, 1000)|` over all tasks, in quanta
    /// (Fig. 11(a)/(c)).
    pub max_drift: f64,
    /// Per-task average of completed work as % of the `I_PS` allocation
    /// (Fig. 11(b)/(d)).
    pub pct_of_ideal: f64,
    /// Deadline misses observed (0 under PD²-OI, Theorem 2).
    pub misses: usize,
    /// Overhead counters (the efficiency axis of the trade-off).
    pub counters: Counters,
}

/// Runs one Whisper scenario under the given reweighting scheme on the
/// paper's four-processor, 1 ms-quantum system.
pub fn run_whisper(sc: &Scenario, scheme: Scheme) -> WhisperMetrics {
    run_whisper_for(sc, scheme, HORIZON)
}

/// [`run_whisper`] with an explicit horizon (used by benchmarks).
pub fn run_whisper_for(sc: &Scenario, scheme: Scheme, horizon: Slot) -> WhisperMetrics {
    run_whisper_probed(sc, scheme, horizon, NoopProbe).0
}

/// [`run_whisper_for`] observed through a probe: every engine event of
/// the Whisper run (releases, reweights with per-event cost, tracker
/// jumps, …) is reported to `probe`, which is handed back alongside
/// the metrics. Used by `pfair-cli trace` to render a full Chrome
/// trace of a scenario.
pub fn run_whisper_probed<P: Probe>(
    sc: &Scenario,
    scheme: Scheme,
    horizon: Slot,
    probe: P,
) -> (WhisperMetrics, P) {
    let workload = generate_workload(sc);
    let config = SimConfig::oi(PROCESSORS, horizon).with_scheme(scheme);
    let (result, probe) = simulate_with(config, &workload, probe);
    (
        WhisperMetrics {
            max_drift: result.max_abs_drift_at(horizon).to_f64(),
            pct_of_ideal: result.mean_pct_of_ideal(),
            misses: result.misses.len(),
            counters: result.counters,
        },
        probe,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oi_run_is_miss_free_and_low_drift() {
        let sc = Scenario::new(2.0, 0.25, true, 3);
        let m = run_whisper(&sc, Scheme::Oi);
        assert_eq!(m.misses, 0);
        assert!(m.pct_of_ideal > 50.0);
    }

    #[test]
    fn lj_run_is_also_miss_free_but_less_accurate() {
        let sc = Scenario::new(2.9, 0.25, true, 3);
        let oi = run_whisper(&sc, Scheme::Oi);
        let lj = run_whisper(&sc, Scheme::LeaveJoin);
        assert_eq!(lj.misses, 0);
        // The headline comparison of §5: OI tracks the ideal better.
        assert!(oi.pct_of_ideal >= lj.pct_of_ideal - 1.0);
    }

    #[test]
    fn probed_run_matches_and_records_reweights() {
        let sc = Scenario::new(2.0, 0.25, true, 3);
        let plain = run_whisper_for(&sc, Scheme::Oi, 500);
        let (probed, rec) =
            run_whisper_probed(&sc, Scheme::Oi, 500, pfair_obs::TraceRecorder::new());
        assert_eq!(plain.counters, probed.counters);
        assert_eq!(
            u64::try_from(rec.spans().len()).unwrap(),
            probed.counters.reweight_initiations
        );
        assert!(!rec.events().is_empty());
    }
}
