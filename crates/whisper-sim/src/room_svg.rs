//! Fig. 10 as code: an SVG diagram of the simulated Whisper room —
//! the 1 m × 1 m floor, the corner microphones, the central pole, the
//! speakers' circular trajectories, and (optionally) the speaker
//! positions at a given slot with their occluded sight-lines marked.

use crate::scenario::{microphones, pole, speaker_position, Scenario, SPEAKERS};
use pfair_core::time::Slot;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Pixels per meter.
const SCALE: f64 = 360.0;
/// Outer margin in pixels.
const MARGIN: f64 = 30.0;

fn px(m: f64) -> f64 {
    MARGIN + m * SCALE
}

/// Renders the scenario's room at slot `t`.
pub fn render_room(sc: &Scenario, t: Slot) -> String {
    // The same phase stream the workload generator uses.
    let mut rng = ChaCha8Rng::seed_from_u64(sc.seed);
    let phases: Vec<f64> = (0..SPEAKERS)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();

    let size = 2.0 * MARGIN + SCALE;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" font-family="sans-serif" font-size="11">"##
    );
    // Room outline.
    let _ = writeln!(
        out,
        r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#fafafa" stroke="#333"/>"##,
        px(0.0),
        px(0.0),
        SCALE,
        SCALE
    );
    // Microphones in the corners.
    for (i, m) in microphones().iter().enumerate() {
        let _ = writeln!(
            out,
            r##"<rect x="{}" y="{}" width="10" height="10" fill="#246"/><text x="{}" y="{}">M{}</text>"##,
            px(m.x) - 5.0,
            px(m.y) - 5.0,
            px(m.x) + 8.0,
            px(m.y) + 4.0,
            i
        );
    }
    // The pole.
    let p = pole();
    let _ = writeln!(
        out,
        r##"<circle cx="{}" cy="{}" r="{}" fill="#999" stroke="#333"/>"##,
        px(p.center.x),
        px(p.center.y),
        p.radius * SCALE
    );
    // Trajectory circle (shared radius).
    let _ = writeln!(
        out,
        r##"<circle cx="{}" cy="{}" r="{}" fill="none" stroke="#aaa" stroke-dasharray="4 3"/>"##,
        px(0.5),
        px(0.5),
        sc.radius * SCALE
    );
    // Speakers and sight-lines at slot t.
    for (s, phase) in phases.iter().enumerate() {
        let pos = speaker_position(sc, *phase, t);
        for m in microphones() {
            let occluded = p.occludes(pos, m);
            let _ = writeln!(
                out,
                r##"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="1" opacity="0.6"{}/>"##,
                px(pos.x),
                px(pos.y),
                px(m.x),
                px(m.y),
                if occluded { "#c33" } else { "#7a7" },
                if occluded {
                    r#" stroke-dasharray="5 3""#
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(
            out,
            r##"<circle cx="{}" cy="{}" r="6" fill="#e80"/><text x="{}" y="{}">S{}</text>"##,
            px(pos.x),
            px(pos.y),
            px(pos.x) + 8.0,
            px(pos.y) - 6.0,
            s
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_elements() {
        let sc = Scenario::new(2.0, 0.25, true, 7);
        let svg = render_room(&sc, 0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("M0").count(), 1);
        assert_eq!(svg.matches("S2").count(), 1);
        // 3 speakers × 4 mics sight-lines.
        assert_eq!(svg.matches("<line").count(), 12);
    }

    #[test]
    fn occluded_lines_are_marked_when_present() {
        let sc = Scenario::new(2.0, 0.25, true, 7);
        // Scan a revolution; at some slot a sight-line crosses the pole.
        let any_occluded = (0..800).any(|t| render_room(&sc, t).contains("#c33"));
        assert!(any_occluded, "some sight-line must cross the 5 cm pole");
    }

    #[test]
    fn deterministic_per_seed_and_slot() {
        let sc = Scenario::new(2.0, 0.25, true, 7);
        assert_eq!(render_room(&sc, 123), render_room(&sc, 123));
        assert_ne!(render_room(&sc, 123), render_room(&sc, 124));
    }
}
