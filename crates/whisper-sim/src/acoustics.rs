//! The correlation cost model: acoustic distance → task weight.
//!
//! Whisper localizes a speaker by correlating the white-noise signal it
//! emits against what each microphone receives; the time shift of the
//! correlation peak gives the distance. The cost of one tracking update
//! is dominated by accumulate-and-multiply operations over the
//! correlation search window, and that window grows with
//!
//! 1. the **distance** (a longer flight time means more candidate
//!    shifts to test), and
//! 2. **occlusion** (a blocked line of sight degrades the previous
//!    prediction, so a much larger space must be searched — the paper's
//!    motivation for shares varying by up to two orders of magnitude).
//!
//! The paper calibrated this cost by timing the accumulate-and-multiply
//! kernel on the simulated 2.7 GHz testbed; here the same calibration is
//! expressed analytically (DESIGN.md, substitution 1):
//!
//! ```text
//! d_eff        = d · (OCCLUSION_FACTOR if the pole blocks the pair)
//! window(d_eff)= W_BASE + W_SLOPE · d_eff          search window
//! weight       = clamp(window · K / f_cpu · f_track, [W_MIN, 1/3])
//! ```
//!
//! Constants are anchored so that (i) the maximum weight is the paper's
//! 1/3, reached at an effective distance of [`SATURATION_DISTANCE_M`],
//! (ii) the minimum weight is about 1/40 (an order-of-magnitude dynamic
//! range, as in the paper's runs), and (iii) a three-speaker scenario at
//! the paper's geometry keeps the four-processor system *nearly* loaded
//! — the paper notes there is not enough capacity for worst-case static
//! allocation, so condition-(W) policing matters.
//!
//! Weights are quantized onto a fixed denominator so exact rational
//! bookkeeping stays cheap over long runs, and are re-quantized only
//! when the *effective* distance has moved 5 cm (the paper's sixth
//! simplifying assumption; an occlusion onset moves it a lot at once).

use pfair_core::rational::Rational;
use pfair_core::weight::Weight;

/// Speed of sound used by the tracking model (m/s).
pub const SPEED_OF_SOUND: f64 = 343.0;
/// Tracking update frequency per speaker/microphone pair (Hz): the
/// paper's 1,000 Hz sampling frequency per tracked object.
pub const TRACK_HZ: f64 = 1_000.0;
/// Simulated CPU clock (Hz): the paper's 2.7 GHz processors.
pub const CPU_HZ: f64 = 2.7e9;
/// Quantum length in seconds (1 ms).
pub const QUANTUM_S: f64 = 1e-3;
/// Distance hysteresis: a task reweights only when its effective
/// acoustic distance has changed by 5 cm (paper §5, assumption 6).
pub const REWEIGHT_DISTANCE_M: f64 = 0.05;
/// Effective-distance multiplier while the pole blocks the pair: the
/// degraded prediction widens the correlation search.
pub const OCCLUSION_FACTOR: f64 = 1.8;
/// Effective distance at which the weight saturates at 1/3.
pub const SATURATION_DISTANCE_M: f64 = 0.60;
/// Distance over which the correlation cost grows by one order of
/// magnitude: the exponential steepness of the search-space growth.
/// With the room geometry this spans roughly one decade of weights per
/// run — "the variance can be as much as two orders of magnitude"
/// (paper §1) bounded by the 1/3 cap and the tracking floor here.
pub const DECADE_DISTANCE_M: f64 = 0.40;

/// Fixed denominator for quantized weights. 2520 = lcm(1..=9) keeps the
/// rationals produced by mixing quantized weights small.
pub const WEIGHT_DENOM: i128 = 2520;
/// Minimum quantized weight (≈ 1/101): the near-field tracking floor.
pub const MIN_WEIGHT_NUM: i128 = 25;
/// Maximum quantized weight: exactly 1/3 (the paper's Whisper bound).
pub const MAX_WEIGHT_NUM: i128 = WEIGHT_DENOM / 3;

/// Effective acoustic distance: the direct distance, stretched by the
/// prediction penalty while occluded.
pub fn effective_distance(direct: f64, occluded: bool) -> f64 {
    if occluded {
        direct * OCCLUSION_FACTOR
    } else {
        direct
    }
}

/// The unquantized processor share demanded at effective distance `d`:
/// exponential growth (one decade per [`DECADE_DISTANCE_M`]) between the
/// tracking floor and the 1/3 cap reached at [`SATURATION_DISTANCE_M`].
/// The exponential shape is what makes the workload genuinely adaptive:
/// a 5 cm step changes the weight by a constant *factor* (≈ 23%), so a
/// speaker receding from a microphone ramps its task through an order of
/// magnitude of weights — the regime in which coarse-grained reweighting
/// falls behind.
pub fn raw_weight(d_eff: f64) -> f64 {
    let w_min = MIN_WEIGHT_NUM as f64 / WEIGHT_DENOM as f64;
    let w_max = 1.0 / 3.0;
    (w_max * 10f64.powf((d_eff - SATURATION_DISTANCE_M) / DECADE_DISTANCE_M)).clamp(w_min, w_max)
}

/// CPU cycles for one tracking update at effective distance `d`
/// (consistency view of the same calibration: weight · f_cpu / f_track).
pub fn update_cycles(d_eff: f64) -> f64 {
    raw_weight(d_eff) * CPU_HZ / TRACK_HZ
}

/// The quantized task weight at effective distance `d_eff`.
pub fn weight_at(d_eff: f64) -> Weight {
    let q = (raw_weight(d_eff) * WEIGHT_DENOM as f64).round() as i128;
    let q = q.clamp(MIN_WEIGHT_NUM, MAX_WEIGHT_NUM);
    Weight::new(Rational::new(q, WEIGHT_DENOM))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn calibration_anchors_max_weight_to_one_third() {
        assert_eq!(weight_at(SATURATION_DISTANCE_M).value(), rat(1, 3));
        assert_eq!(weight_at(10.0).value(), rat(1, 3)); // saturated
    }

    #[test]
    fn weight_is_monotone_in_distance() {
        let mut last = weight_at(0.0);
        for step in 1..=40 {
            let d = f64::from(step) * 0.05;
            let w = weight_at(d);
            assert!(w >= last, "weight should not decrease with distance");
            last = w;
        }
    }

    #[test]
    fn dynamic_range_is_about_an_order_of_magnitude() {
        let lo = weight_at(0.0).to_f64();
        let hi = weight_at(SATURATION_DISTANCE_M).to_f64();
        let ratio = hi / lo;
        assert!(
            (5.0..=40.0).contains(&ratio),
            "dynamic range {ratio} outside the paper's order-of-magnitude regime"
        );
    }

    #[test]
    fn all_weights_are_light_and_at_most_one_third() {
        for step in 0..=40 {
            let d = f64::from(step) * 0.05;
            let w = weight_at(d);
            assert!(w.is_light());
            assert!(w.value() <= rat(1, 3));
            assert!(w.value() >= rat(MIN_WEIGHT_NUM, WEIGHT_DENOM));
        }
    }

    #[test]
    fn occlusion_stretches_the_effective_distance() {
        let d = 0.5;
        assert!(effective_distance(d, true) > effective_distance(d, false));
        // An occlusion onset at mid-range jumps well past the 5 cm
        // hysteresis — the sudden large reweights the paper's motivation
        // describes.
        assert!(effective_distance(d, true) - d > REWEIGHT_DISTANCE_M);
        // And it can push the weight to the 1/3 cap.
        assert_eq!(weight_at(effective_distance(d, true)).value(), rat(1, 3));
    }

    #[test]
    fn worst_case_exceeds_static_capacity() {
        // "There is not sufficient capacity on the assumed system to
        // statically allocate each task the capacity it needs to perform
        // all calculations in the worst case" (paper §5): 12 pair-tasks
        // at the occluded/far-field maximum of 1/3 each want 4.0 — the
        // full four-processor capacity — while typical demand is well
        // below it, so adaptation (not static allocation) is required.
        let worst = 12.0 * weight_at(2.0).to_f64();
        assert!((worst - 4.0).abs() < 1e-9);
        let corner_dists = [0.46, 0.71, 0.96]; // near / typical / far
        let typical: f64 = corner_dists
            .iter()
            .map(|d| weight_at(*d).to_f64())
            .sum::<f64>()
            / 3.0
            * 12.0;
        assert!(
            typical < 3.9,
            "typical load {typical} should leave adaptation headroom"
        );
        assert!(
            typical > 2.0,
            "typical load {typical} should keep the system stressed"
        );
    }

    #[test]
    fn update_cycles_track_the_weight() {
        let d = 0.6;
        let w = raw_weight(d);
        assert!((update_cycles(d) * TRACK_HZ / CPU_HZ - w).abs() < 1e-12);
        let _ = QUANTUM_S; // documented constant, exercised by whisper runs
        let _ = SPEED_OF_SOUND;
    }
}
