//! Whisper scenario generation: speakers revolving around the pole, and
//! the reweighting workload their motion induces.
//!
//! The simulated system (paper §5, Fig. 10): a 1 m × 1 m room with a
//! microphone in each corner, three speakers revolving around a 5 cm
//! pole at the room's center — all at the same radius and speed, at
//! random initial angles (each of the paper's 61 runs re-randomizes
//! placement). One task per speaker/microphone pair (assumption 5)
//! tracks that pair's correlation; its weight follows the pair's
//! acoustic distance through [`crate::acoustics::weight_at`], with a new
//! weight requested only when the distance has moved 5 cm
//! (assumption 6). Objects move in the plane at constant speed
//! (assumptions 1 and 4); occlusion by the pole lengthens the acoustic
//! path when enabled.

use crate::acoustics::{effective_distance, weight_at, REWEIGHT_DISTANCE_M};
use crate::geometry::{Circle, Point};
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_sched::event::{Event, EventKind, Workload};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of speakers (tracked objects).
pub const SPEAKERS: usize = 3;
/// Number of microphones (room corners).
pub const MICS: usize = 4;
/// Number of processors in the paper's simulated system.
pub const PROCESSORS: u32 = 4;
/// Slots simulated per run ("time 1,000" in Fig. 11).
pub const HORIZON: Slot = 1_000;

/// One Whisper scenario: the geometry and motion parameters of a run.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Speaker speed (m/s); the paper sweeps 0.5–3.5.
    pub speed: f64,
    /// Radius of rotation around the pole (m); the paper sweeps
    /// 0.10–0.50.
    pub radius: f64,
    /// Whether the pole occludes (lengthening the acoustic path).
    pub occlusion: bool,
    /// RNG seed for the speakers' initial angles.
    pub seed: u64,
}

impl Scenario {
    /// The paper's base configuration: 25 cm radius, occlusion on.
    pub fn new(speed: f64, radius: f64, occlusion: bool, seed: u64) -> Scenario {
        Scenario {
            speed,
            radius,
            occlusion,
            seed,
        }
    }
}

/// The pole: 5 cm diameter at the room center.
pub fn pole() -> Circle {
    Circle::new(Point::new(0.5, 0.5), 0.025)
}

/// Microphone positions: the four corners.
pub fn microphones() -> [Point; MICS] {
    [
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.0, 1.0),
        Point::new(1.0, 1.0),
    ]
}

/// The dense task id of the (speaker, mic) pair.
pub fn task_of(speaker: usize, mic: usize) -> TaskId {
    TaskId((speaker * MICS + mic) as u32)
}

/// Position of speaker `s` at slot `t` (1 ms per slot).
pub fn speaker_position(sc: &Scenario, phase0: f64, t: Slot) -> Point {
    let omega = sc.speed / sc.radius; // rad/s
    let phi = phase0 + omega * (t as f64) * 1e-3;
    Point::new(0.5 + sc.radius * phi.cos(), 0.5 + sc.radius * phi.sin())
}

/// The *effective* acoustic distance of a speaker/mic pair: the
/// geometric path (around the pole if blocked), stretched by the
/// occlusion prediction penalty when occlusion is enabled and the pole
/// blocks the pair. This is the quantity the cost model consumes and the
/// 5 cm reweighting hysteresis watches.
pub fn acoustic_distance(sc: &Scenario, speaker: Point, mic: Point) -> f64 {
    if sc.occlusion {
        let p = pole();
        effective_distance(p.path_around(speaker, mic), p.occludes(speaker, mic))
    } else {
        speaker.dist(mic)
    }
}

/// Generates the full reweighting workload for a scenario: 12 tasks
/// joining at time 0 with their initial weights, then one reweight
/// request per task each time its acoustic distance drifts 5 cm from
/// the distance at its last request.
pub fn generate_workload(sc: &Scenario) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(sc.seed);
    let phases: Vec<f64> = (0..SPEAKERS)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();
    let mics = microphones();
    let mut w = Workload::new();
    // Last distance at which each task requested a weight.
    let mut anchor = [0.0f64; SPEAKERS * MICS];

    for s in 0..SPEAKERS {
        let pos = speaker_position(sc, phases[s], 0);
        for (m, mic) in mics.iter().enumerate() {
            let d = acoustic_distance(sc, pos, *mic);
            anchor[s * MICS + m] = d;
            w.push(Event {
                at: 0,
                task: task_of(s, m),
                kind: EventKind::Join(weight_at(d)),
            });
        }
    }

    for t in 1..HORIZON {
        for (s, phase) in phases.iter().enumerate() {
            let pos = speaker_position(sc, *phase, t);
            for (m, mic) in mics.iter().enumerate() {
                let idx = s * MICS + m;
                let d = acoustic_distance(sc, pos, *mic);
                if (d - anchor[idx]).abs() >= REWEIGHT_DISTANCE_M {
                    anchor[idx] = d;
                    w.push(Event {
                        at: t,
                        task: task_of(s, m),
                        kind: EventKind::Reweight(weight_at(d)),
                    });
                }
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_sched::event::EventKind;

    #[test]
    fn twelve_tasks_join_at_zero() {
        let sc = Scenario::new(1.0, 0.25, true, 42);
        let w = generate_workload(&sc);
        let joins = w
            .sorted_events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Join(_)))
            .count();
        assert_eq!(joins, SPEAKERS * MICS);
        assert_eq!(w.task_count(), 12);
    }

    #[test]
    fn faster_speakers_reweight_more_often() {
        let slow = generate_workload(&Scenario::new(0.5, 0.25, true, 7));
        let fast = generate_workload(&Scenario::new(3.5, 0.25, true, 7));
        let count = |w: &Workload| {
            w.sorted_events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Reweight(_)))
                .count()
        };
        assert!(count(&fast) > 2 * count(&slow));
    }

    #[test]
    fn workload_generation_is_deterministic_per_seed() {
        let a = generate_workload(&Scenario::new(2.9, 0.25, true, 99));
        let b = generate_workload(&Scenario::new(2.9, 0.25, true, 99));
        assert_eq!(a.sorted_events(), b.sorted_events());
        let c = generate_workload(&Scenario::new(2.9, 0.25, true, 100));
        assert_ne!(a.sorted_events(), c.sorted_events());
    }

    #[test]
    fn speaker_stays_on_its_circle() {
        let sc = Scenario::new(2.0, 0.3, false, 1);
        for t in [0, 100, 500, 999] {
            let p = speaker_position(&sc, 1.0, t);
            let r = p.dist(Point::new(0.5, 0.5));
            assert!((r - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn occlusion_never_shortens_distance() {
        let occ = Scenario::new(2.0, 0.3, true, 1);
        let no = Scenario::new(2.0, 0.3, false, 1);
        for t in 0..50 {
            let p = speaker_position(&occ, 0.3, t * 20);
            for mic in microphones() {
                assert!(acoustic_distance(&occ, p, mic) >= acoustic_distance(&no, p, mic));
            }
        }
    }
}

/// The weight signal of one speaker/microphone pair over the run: the
/// quantized weight in force at each slot, after the 5 cm hysteresis.
/// This is the raw adaptive signal the schedulers chase — useful for
/// plotting and for reasoning about a scenario's difficulty.
pub fn weight_trace(sc: &Scenario, speaker: usize, mic: usize) -> Vec<(Slot, f64)> {
    assert!(speaker < SPEAKERS && mic < MICS);
    let mut rng = ChaCha8Rng::seed_from_u64(sc.seed);
    let phases: Vec<f64> = (0..SPEAKERS)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();
    let mics = microphones();
    let mut out = Vec::with_capacity(HORIZON as usize);
    let mut anchor = f64::NEG_INFINITY;
    let mut current = 0.0;
    for t in 0..HORIZON {
        let pos = speaker_position(sc, phases[speaker], t);
        let d = acoustic_distance(sc, pos, mics[mic]);
        if (d - anchor).abs() >= REWEIGHT_DISTANCE_M {
            anchor = d;
            current = weight_at(d).to_f64();
        }
        out.push((t, current));
    }
    out
}

#[cfg(test)]
mod weight_trace_tests {
    use super::*;

    #[test]
    fn trace_matches_workload_events() {
        let sc = Scenario::new(2.9, 0.25, true, 3);
        let trace = weight_trace(&sc, 0, 0);
        assert_eq!(trace.len(), HORIZON as usize);
        // The trace is piecewise constant with multiple steps.
        let steps = trace.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert!(steps > 5, "expected several weight changes, got {steps}");
        // All values are in the calibrated band (0, 1/3].
        for (_, w) in &trace {
            assert!(*w > 0.0 && *w <= 1.0 / 3.0 + 1e-12);
        }
    }

    #[test]
    fn trace_is_deterministic_and_pair_specific() {
        let sc = Scenario::new(2.0, 0.25, true, 8);
        assert_eq!(weight_trace(&sc, 1, 2), weight_trace(&sc, 1, 2));
        assert_ne!(weight_trace(&sc, 1, 2), weight_trace(&sc, 0, 0));
    }
}
