//! 2-D geometry for the Whisper room: positions, distances, and
//! occlusion by the central pole.
//!
//! The paper's simulation places three speakers revolving around a 5 cm
//! pole in a 1 m × 1 m room with a microphone in each corner (Fig. 10).
//! The pole occludes the direct speaker→microphone path; an occluded
//! signal travels the shortest path *around* the pole (two tangent
//! segments plus an arc), lengthening the effective acoustic distance
//! and thereby the correlation cost.

/// A point in the room plane (meters).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A circular obstacle (the pole).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Center.
    pub center: Point,
    /// Radius (m).
    pub radius: f64,
}

impl Circle {
    /// Constructs a circle.
    pub const fn new(center: Point, radius: f64) -> Circle {
        Circle { center, radius }
    }

    /// Distance from the circle's center to the (infinite extension
    /// clamped) segment `a`–`b`.
    fn dist_to_segment(&self, a: Point, b: Point) -> f64 {
        let (dx, dy) = (b.x - a.x, b.y - a.y);
        let len2 = dx * dx + dy * dy;
        if len2 == 0.0 {
            return self.center.dist(a);
        }
        let t = (((self.center.x - a.x) * dx + (self.center.y - a.y) * dy) / len2).clamp(0.0, 1.0);
        self.center.dist(Point::new(a.x + t * dx, a.y + t * dy))
    }

    /// `true` iff the open segment `a`–`b` passes through the circle
    /// (endpoints outside, path blocked).
    pub fn occludes(&self, a: Point, b: Point) -> bool {
        self.dist_to_segment(a, b) < self.radius
            && self.center.dist(a) > self.radius
            && self.center.dist(b) > self.radius
    }

    /// Length of the shortest path from `a` to `b` avoiding the circle's
    /// interior: the straight line when unobstructed, otherwise two
    /// tangent segments joined by an arc.
    pub fn path_around(&self, a: Point, b: Point) -> f64 {
        if !self.occludes(a, b) {
            return a.dist(b);
        }
        let r = self.radius;
        let da = self.center.dist(a);
        let db = self.center.dist(b);
        // Tangent lengths from each endpoint.
        let ta = (da * da - r * r).max(0.0).sqrt();
        let tb = (db * db - r * r).max(0.0).sqrt();
        // Angle at the center between the two endpoint directions.
        let ang_a = (a.y - self.center.y).atan2(a.x - self.center.x);
        let ang_b = (b.y - self.center.y).atan2(b.x - self.center.x);
        let mut alpha = (ang_a - ang_b).abs();
        if alpha > std::f64::consts::PI {
            alpha = 2.0 * std::f64::consts::PI - alpha;
        }
        // Arc swept between the two tangent points.
        let arc = (alpha - (r / da).acos() - (r / db).acos()).max(0.0);
        ta + tb + r * arc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLE: Circle = Circle::new(Point::new(0.5, 0.5), 0.025);

    #[test]
    fn distance_basics() {
        assert!((Point::new(0.0, 0.0).dist(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
        assert_eq!(Point::new(1.0, 1.0).dist(Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn clear_path_is_not_occluded() {
        // Path along the room edge never crosses the central pole.
        assert!(!POLE.occludes(Point::new(0.0, 0.0), Point::new(1.0, 0.0)));
    }

    #[test]
    fn diametral_path_is_occluded() {
        // Straight through the center.
        assert!(POLE.occludes(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
    }

    #[test]
    fn path_around_exceeds_straight_line_only_when_occluded() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let around = POLE.path_around(a, b);
        assert!(around > a.dist(b));
        // The detour around a 2.5 cm pole is small.
        assert!(around < a.dist(b) + 0.01);

        let c = Point::new(1.0, 0.0);
        assert_eq!(POLE.path_around(a, c), a.dist(c));
    }

    #[test]
    fn endpoint_inside_circle_is_not_occlusion() {
        // A speaker can never be inside the pole; guard the predicate.
        let inside = Point::new(0.5, 0.51);
        assert!(!POLE.occludes(inside, Point::new(0.0, 0.0)));
    }

    #[test]
    fn grazing_path_detour_is_monotone_in_blockage() {
        // A path passing closer to the center takes a longer detour.
        let a = Point::new(0.0, 0.5);
        let deep = POLE.path_around(a, Point::new(1.0, 0.5)); // through center
        let shallow = POLE.path_around(a, Point::new(1.0, 0.52));
        assert!(deep >= shallow);
    }
}
