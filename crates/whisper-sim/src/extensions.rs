//! Relaxations of the paper's simplifying assumptions (§5).
//!
//! The paper's simulation makes seven simplifying assumptions and notes
//! that *"in the absence of these assumptions, we expect PD²-LJ to be
//! completely inadequate, since required adaptations would be even more
//! pronounced and frequent than those occurring here."* This module
//! makes that prediction testable by lifting four of them:
//!
//! 1. **3-D motion** (assumption 1: "all objects are moving in only two
//!    dimensions"): speakers bob vertically while the microphones sit
//!    on the ceiling, adding a vertical component to every distance.
//! 2. **Ambient noise** (assumption 2: "there is no ambient noise"):
//!    a time-varying noise floor degrades the correlation SNR, widening
//!    the search window by a random factor ≥ 1.
//! 3. **Speaker interference** (assumption 3: "no speaker can interfere
//!    with any other"): a speaker close to another pair's line of sight
//!    corrupts that pair's correlation, multiplying its cost.
//! 4. **Variable speed** (assumption 4: "all objects move at a constant
//!    rate"): speeds oscillate around the nominal value, as human limbs
//!    do.
//!
//! Each relaxation increases how often and how sharply tasks must
//! reweight; the `extensions` experiment compares PD²-OI and PD²-LJ as
//! the assumptions fall away.

use crate::acoustics::{effective_distance, weight_at, REWEIGHT_DISTANCE_M};
use crate::geometry::Point;
use crate::scenario::{microphones, pole, task_of, Scenario, HORIZON, MICS, SPEAKERS};
use pfair_core::time::Slot;
use pfair_sched::event::{Event, EventKind, Workload};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which simplifying assumptions to lift.
#[derive(Clone, Copy, Debug, Default)]
pub struct Relaxations {
    /// Vertical bobbing amplitude in meters (assumption 1); `0.0` keeps
    /// the planar model.
    pub vertical_amplitude: f64,
    /// Ambient-noise strength: the effective distance fluctuates by a
    /// factor in `[1 − a/2, 1 + a/2]` on a bounded random walk — the
    /// SNR moving around the calibration point (assumption 2); `0.0`
    /// disables.
    pub ambient_noise: f64,
    /// Speaker interference (assumption 3): a foreign speaker within
    /// 20 cm of a pair's line of sight multiplies that pair's cost.
    pub interference: bool,
    /// Relative speed oscillation (assumption 4): the instantaneous
    /// speed is `v · (1 + speed_variation · sin(...))`; `0.0` keeps the
    /// constant rate.
    pub speed_variation: f64,
}

impl Relaxations {
    /// Everything lifted at once — the paper's "absence of these
    /// assumptions" regime.
    pub fn all() -> Relaxations {
        Relaxations {
            vertical_amplitude: 0.15,
            ambient_noise: 0.4,
            interference: true,
            speed_variation: 0.5,
        }
    }
}

/// Vertical bob of speaker `s` at slot `t` (around mid-room height,
/// against ceiling-mounted microphones 0.5 m above the speaker plane).
fn vertical_offset(amplitude: f64, phase: f64, t: Slot) -> f64 {
    // ~1.3 Hz bobbing, the cadence of a walking human's hand.
    amplitude * (2.0 * std::f64::consts::PI * 1.3 * (t as f64) * 1e-3 + phase).sin()
}

/// Angular position including speed oscillation: the integral of
/// `v(u) = v·(1 + a·sin(2π u / P))` over `[0, t]`, at 0.5 Hz.
fn phase_with_variation(sc: &Scenario, variation: f64, phase0: f64, t: Slot) -> f64 {
    let secs = t as f64 * 1e-3;
    let p = 2.0; // oscillation period in seconds
    let omega = sc.speed / sc.radius;
    let swing = variation * p / (2.0 * std::f64::consts::PI)
        * (1.0 - (2.0 * std::f64::consts::PI * secs / p).cos());
    phase0 + omega * (secs + swing)
}

/// Distance of the interfering speaker nearest to the `speaker → mic`
/// segment (excluding `speaker` itself).
fn nearest_interferer(positions: &[Point], s: usize, speaker: Point, mic: Point) -> f64 {
    positions
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != s)
        .map(|(_, other)| {
            // Distance from `other` to the segment speaker–mic.
            let (dx, dy) = (mic.x - speaker.x, mic.y - speaker.y);
            let len2 = dx * dx + dy * dy;
            let t = if len2 == 0.0 {
                0.0
            } else {
                (((other.x - speaker.x) * dx + (other.y - speaker.y) * dy) / len2).clamp(0.0, 1.0)
            };
            other.dist(Point::new(speaker.x + t * dx, speaker.y + t * dy))
        })
        .fold(f64::INFINITY, f64::min)
}

/// Generates the Whisper workload with the given relaxations. With
/// `Relaxations::default()` this reduces exactly to
/// [`crate::scenario::generate_workload`]'s model (same geometry, same
/// cost curve, same 5 cm hysteresis).
pub fn generate_relaxed_workload(sc: &Scenario, relax: &Relaxations) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(sc.seed ^ 0x57_41_53_50);
    let phases: Vec<f64> = (0..SPEAKERS)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();
    let bob_phases: Vec<f64> = (0..SPEAKERS)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();
    let mics = microphones();
    let mut w = Workload::new();
    let mut anchor = [f64::NEG_INFINITY; SPEAKERS * MICS];
    // Ambient noise follows a bounded random walk so consecutive slots
    // are correlated (noise does not teleport); it fluctuates around
    // the calibration point rather than inflating every distance past
    // the saturation cap.
    let mut noise: f64 = 1.0;

    for t in 0..HORIZON {
        if relax.ambient_noise > 0.0 {
            noise += rng.gen_range(-0.02..0.02);
            noise = noise.clamp(
                1.0 - relax.ambient_noise / 2.0,
                1.0 + relax.ambient_noise / 2.0,
            );
        }
        let positions: Vec<Point> = (0..SPEAKERS)
            .map(|s| {
                let phi = phase_with_variation(sc, relax.speed_variation, phases[s], t);
                Point::new(0.5 + sc.radius * phi.cos(), 0.5 + sc.radius * phi.sin())
            })
            .collect();
        for s in 0..SPEAKERS {
            let pos = positions[s];
            for (m, mic) in mics.iter().enumerate() {
                let idx = s * MICS + m;
                let planar = if sc.occlusion {
                    let p = pole();
                    effective_distance(p.path_around(pos, *mic), p.occludes(pos, *mic))
                } else {
                    pos.dist(*mic)
                };
                let mut d = planar;
                if relax.vertical_amplitude > 0.0 {
                    // The constant speaker-to-ceiling height is part of
                    // the base calibration; only the bob's *deviation*
                    // from it changes the effective distance.
                    let dz = 0.5 + vertical_offset(relax.vertical_amplitude, bob_phases[s], t);
                    let with_bob = (planar * planar + dz * dz).sqrt();
                    let at_rest = (planar * planar + 0.25).sqrt();
                    d = planar + (with_bob - at_rest);
                }
                if relax.ambient_noise > 0.0 {
                    d *= noise;
                }
                if relax.interference && nearest_interferer(&positions, s, pos, *mic) < 0.20 {
                    d *= 1.5;
                }
                if (d - anchor[idx]).abs() >= REWEIGHT_DISTANCE_M {
                    anchor[idx] = d;
                    let kind = if t == 0 {
                        EventKind::Join(weight_at(d))
                    } else {
                        EventKind::Reweight(weight_at(d))
                    };
                    w.push(Event {
                        at: t,
                        task: task_of(s, m),
                        kind,
                    });
                }
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PROCESSORS;
    use pfair_sched::engine::{simulate, SimConfig};
    use pfair_sched::reweight::Scheme;

    fn event_count(w: &Workload) -> usize {
        w.sorted_events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Reweight(_)))
            .count()
    }

    #[test]
    fn no_relaxations_match_base_event_rate() {
        let sc = Scenario::new(2.0, 0.25, true, 5);
        let relaxed = generate_relaxed_workload(&sc, &Relaxations::default());
        let base = crate::scenario::generate_workload(&sc);
        // Same model ⇒ comparable event counts (different RNG stream for
        // the phases, so not identical, but the same order).
        let (a, b) = (event_count(&relaxed), event_count(&base));
        assert!(
            a as f64 > b as f64 * 0.5 && (a as f64) < b as f64 * 2.0,
            "{a} vs {b}"
        );
    }

    #[test]
    fn every_relaxation_increases_adaptation_pressure() {
        let sc = Scenario::new(2.0, 0.25, true, 5);
        let base = event_count(&generate_relaxed_workload(&sc, &Relaxations::default()));
        for (name, relax) in [
            (
                "3d",
                Relaxations {
                    vertical_amplitude: 0.15,
                    ..Default::default()
                },
            ),
            (
                "noise",
                Relaxations {
                    ambient_noise: 0.6,
                    ..Default::default()
                },
            ),
            (
                "speed",
                Relaxations {
                    speed_variation: 0.5,
                    ..Default::default()
                },
            ),
            ("all", Relaxations::all()),
        ] {
            let n = event_count(&generate_relaxed_workload(&sc, &relax));
            assert!(
                n > base,
                "{name}: {n} events, base {base} — relaxation should add pressure"
            );
        }
    }

    #[test]
    fn relaxed_workloads_stay_correct_under_oi() {
        let sc = Scenario::new(2.9, 0.25, true, 9);
        let w = generate_relaxed_workload(&sc, &Relaxations::all());
        let r = simulate(
            SimConfig::oi(PROCESSORS, HORIZON).with_scheme(Scheme::Oi),
            &w,
        );
        assert!(r.is_miss_free(), "misses: {:?}", r.misses.len());
        assert!(r.max_abs_drift_delta() <= pfair_core::rat(2, 1));
    }

    #[test]
    fn lj_suffers_more_as_assumptions_fall() {
        // The paper's §5 prediction, aggregated over seeds: lifting the
        // assumptions widens the OI-vs-LJ accuracy gap. The comparison
        // lifts the two assumptions that perturb the *dynamics* (ambient
        // noise and variable speed). The multiplicative-distance
        // relaxations (interference's ×1.5, large vertical bobs) instead
        // push most pairs past SATURATION_DISTANCE_M, where the weight
        // curve caps at 1/3: reweight events still fire more often
        // (covered by `every_relaxation_increases_adaptation_pressure`)
        // but their amplitude collapses, so both schemes converge
        // trivially and the accuracy gap is uninformative there.
        let perturbed = Relaxations {
            ambient_noise: 0.4,
            speed_variation: 0.5,
            ..Relaxations::default()
        };
        let mut gap_base = 0.0;
        let mut gap_relaxed = 0.0;
        for seed in 0..5 {
            let sc = Scenario::new(2.9, 0.25, true, seed);
            for (relax, gap) in [
                (Relaxations::default(), &mut gap_base),
                (perturbed, &mut gap_relaxed),
            ] {
                let w = generate_relaxed_workload(&sc, &relax);
                let oi = simulate(SimConfig::oi(PROCESSORS, HORIZON), &w);
                let lj = simulate(SimConfig::leave_join(PROCESSORS, HORIZON), &w);
                *gap += oi.mean_pct_of_ideal() - lj.mean_pct_of_ideal();
            }
        }
        assert!(
            gap_relaxed > gap_base,
            "gap with relaxations {gap_relaxed:.3} should exceed base gap {gap_base:.3}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let sc = Scenario::new(2.0, 0.25, true, 7);
        let a = generate_relaxed_workload(&sc, &Relaxations::all());
        let b = generate_relaxed_workload(&sc, &Relaxations::all());
        assert_eq!(a.sorted_events(), b.sorted_events());
    }
}
