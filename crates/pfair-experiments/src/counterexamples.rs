//! The paper's counterexample figures as runnable demonstrations:
//! Fig. 6 (rules O and I walkthroughs), Fig. 8 / Theorem 3 (PD²-LJ is
//! coarse-grained), and Fig. 9 / Theorem 4 (every EPDF scheme can incur
//! drift). Each prints the schedule trace and the exact drift values the
//! paper derives.

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::epdf_ps::run_projected_epdf;
use pfair_sched::event::Workload;
use pfair_sched::priority::TieBreak;
use pfair_sched::render::{render_task, ruler};
use pfair_sched::trace::SimResult;

fn favoring(task: u32) -> TieBreak {
    TieBreak::Ranked(vec![(TaskId(task), 0)])
}

fn disfavoring(task: u32, total: u32) -> TieBreak {
    TieBreak::Ranked(
        (0..total)
            .filter(|t| *t != task)
            .map(|t| (TaskId(t), 0))
            .chain(std::iter::once((TaskId(task), 1)))
            .collect(),
    )
}

fn show_task(r: &SimResult, id: TaskId, label: &str, horizon: i64) {
    println!("{}", ruler(horizon));
    if let Some(h) = &r.tasks[id.idx()].history {
        print!("{}", render_task(label, h, horizon));
    }
    let tr = &r.tasks[id.idx()];
    println!(
        "  drift samples: {:?}",
        tr.drift
            .samples()
            .iter()
            .map(|s| format!("t={} drift={}", s.at, s.drift))
            .collect::<Vec<_>>()
    );
}

/// Fig. 6(b): rule O on the 4-CPU, 19×(3/20)+T system.
pub fn fig6b() {
    println!("\n--- Fig. 6(b): T (3/20 → 1/2 at t=10) via rule O, ties favor C ---");
    let mut w = base_fig6((3, 20));
    w.reweight(0, 10, 1, 2);
    let r = simulate(
        SimConfig::oi(4, 24)
            .with_tie_break(disfavoring(0, 20))
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    );
    show_task(&r, TaskId(0), "T", 24);
    assert_eq!(r.task(TaskId(0)).drift.at(10), rat(1, 2));
    println!("  drift(T, 10) = 1/2  ✓ (paper value)");
}

/// Fig. 6(c): rule I (increase) on the same system, ties favor T.
pub fn fig6c() {
    println!("\n--- Fig. 6(c): T (3/20 → 1/2 at t=10) via rule I, ties favor T ---");
    let mut w = base_fig6((3, 20));
    w.reweight(0, 10, 1, 2);
    let r = simulate(
        SimConfig::oi(4, 24)
            .with_tie_break(favoring(0))
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    );
    show_task(&r, TaskId(0), "T", 24);
    assert_eq!(r.task(TaskId(0)).drift.at(12), rat(1, 2));
    println!("  new subtask released at 12 = D(I_SW,T_2)+b = 11+1, two slots before d(T_2)=14 ✓");
}

/// Fig. 6(d): rule I (decrease).
pub fn fig6d() {
    println!("\n--- Fig. 6(d): T (2/5 → 3/20 at t=1) via rule I, ties favor T ---");
    let mut w = base_fig6((2, 5));
    w.reweight(0, 1, 3, 20);
    let r = simulate(
        SimConfig::oi(4, 24)
            .with_tie_break(favoring(0))
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    );
    show_task(&r, TaskId(0), "T", 24);
    assert_eq!(r.task(TaskId(0)).drift.at(4), rat(-3, 20));
    println!("  drift(T, ≥4) = -3/20  ✓ (paper value)");
}

fn base_fig6(t_weight: (i128, i128)) -> Workload {
    let mut w = Workload::new();
    w.join(0, 0, t_weight.0, t_weight.1);
    for i in 1..=19 {
        w.join(i, 0, 3, 20);
    }
    w
}

/// Fig. 8 / Theorem 3: PD²-LJ drift 24/10 on the 35×(1/10)+T system.
pub fn fig8() {
    println!("\n--- Fig. 8: PD2-LJ, T (1/10 → 1/2 at t=4), 4 CPUs, 35 background tasks ---");
    let mut w = Workload::new();
    w.join(0, 0, 1, 10);
    for i in 1..=35 {
        w.join(i, 0, 1, 10);
    }
    w.reweight(0, 4, 1, 2);
    let r = simulate(
        SimConfig::leave_join(4, 24)
            .with_tie_break(favoring(0))
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    );
    show_task(&r, TaskId(0), "T", 24);
    assert_eq!(r.task(TaskId(0)).drift.at(10), rat(24, 10));
    println!("  drift(T, 10) = 24/10 — one event, > the PD2-OI bound of 2 (Theorem 3) ✓");
}

/// Fig. 9 / Theorem 4: the projected-deadline EPDF miss.
pub fn fig9() {
    println!("\n--- Fig. 9: EPDF with I_PS-projected deadlines, 2 CPUs ---");
    let mut w = Workload::new();
    let mut id = 0u32;
    for _ in 0..10 {
        w.join(id, 0, 1, 7);
        w.leave(id, 7);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 0, 1, 6);
        w.leave(id, 6);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 6, 1, 14);
        id += 1;
    }
    for _ in 0..5 {
        w.join(id, 0, 1, 21);
        w.reweight(id, 7, 1, 3);
        id += 1;
    }
    let run = run_projected_epdf(2, 12, &w);
    println!(
        "  D-task deadlines project 21 → 9 at the t=7 reweight; misses: {:?}",
        run.misses
    );
    assert!(!run.misses.is_empty());
    assert!(run.misses.iter().all(|m| m.deadline == 9));
    println!("  a deadline is missed at 9 — zero drift is impossible for EPDF (Theorem 4) ✓");
}

/// Runs every counterexample.
pub fn run_all() {
    fig6b();
    fig6c();
    fig6d();
    fig8();
    fig9();
    println!("\nall counterexample values match the paper");
}
