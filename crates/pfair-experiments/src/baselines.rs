//! Baseline comparison: the Pfair schemes against the companion papers'
//! alternatives (global EDF and partitioned EDF) on the same Whisper
//! workload — the "all three approaches are of value" discussion of the
//! paper's concluding remarks made measurable.

use crate::runner;
use pfair_sched::edf::{run_global_edf, EdfReweightMode};
use pfair_sched::partitioned::run_partitioned_edf;
use pfair_sched::reweight::Scheme;
use whisper_sim::scenario::{generate_workload, HORIZON, PROCESSORS};
use whisper_sim::stats::summarize;
use whisper_sim::{run_whisper, Scenario};

/// One row of the baseline table.
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// Scheduler label.
    pub label: String,
    /// Mean % of ideal allocation completed by t = 1000.
    pub pct_of_ideal: f64,
    /// Mean deadline misses per run.
    pub misses: f64,
    /// Mean migrations per run (0 by construction for partitioned EDF's
    /// schedule; its reweight-forced repartitions are listed instead).
    pub migrations: f64,
}

/// Runs every scheduler on the same seeds and aggregates.
pub fn compare(speed: f64, radius: f64, runs: u64) -> Vec<BaselineRow> {
    let seeds: Vec<u64> = (0..runs).collect();
    let mut rows = Vec::new();

    for (label, scheme) in [("PD2-OI", Scheme::Oi), ("PD2-LJ", Scheme::LeaveJoin)] {
        let metrics: Vec<_> = runner::par_map(seeds.clone(), |seed| {
            run_whisper(&Scenario::new(speed, radius, true, seed), scheme.clone())
        });
        rows.push(BaselineRow {
            label: label.into(),
            pct_of_ideal: summarize(&metrics.iter().map(|m| m.pct_of_ideal).collect::<Vec<_>>())
                .mean,
            misses: summarize(&metrics.iter().map(|m| m.misses as f64).collect::<Vec<_>>()).mean,
            migrations: summarize(
                &metrics
                    .iter()
                    .map(|m| m.counters.migrations as f64)
                    .collect::<Vec<_>>(),
            )
            .mean,
        });
    }

    for (label, mode) in [
        ("global EDF (boundary)", EdfReweightMode::AtBoundary),
        ("global EDF (immediate)", EdfReweightMode::Immediate),
    ] {
        let runs: Vec<_> = runner::par_map(seeds.clone(), |seed| {
            let w = generate_workload(&Scenario::new(speed, radius, true, seed));
            run_global_edf(PROCESSORS, HORIZON, &w, mode)
        });
        rows.push(BaselineRow {
            label: label.into(),
            pct_of_ideal: summarize(
                &runs
                    .iter()
                    .map(|r| {
                        let p = r.pct_of_ideal();
                        p.iter().sum::<f64>() / p.len().max(1) as f64
                    })
                    .collect::<Vec<_>>(),
            )
            .mean,
            misses: summarize(
                &runs
                    .iter()
                    .map(|r| r.misses.len() as f64)
                    .collect::<Vec<_>>(),
            )
            .mean,
            migrations: 0.0,
        });
    }

    {
        let runs: Vec<_> = runner::par_map(seeds.clone(), |seed| {
            let w = generate_workload(&Scenario::new(speed, radius, true, seed));
            run_partitioned_edf(PROCESSORS, HORIZON, &w)
        });
        rows.push(BaselineRow {
            label: "partitioned EDF".into(),
            pct_of_ideal: summarize(
                &runs
                    .iter()
                    .map(|r| {
                        let p = r.pct_of_ideal();
                        p.iter().sum::<f64>() / p.len().max(1) as f64
                    })
                    .collect::<Vec<_>>(),
            )
            .mean,
            misses: summarize(
                &runs
                    .iter()
                    .map(|r| r.misses.len() as f64)
                    .collect::<Vec<_>>(),
            )
            .mean,
            migrations: summarize(&runs.iter().map(|r| r.migrations as f64).collect::<Vec<_>>())
                .mean,
        });
    }

    rows
}

/// Prints the comparison table.
pub fn run(runs: u64) {
    println!("\n=== Scheduler baselines on the Whisper workload (speed 2.9, radius 25 cm) ===");
    println!(
        "{:<24} {:>12} {:>10} {:>12}",
        "scheduler", "% of ideal", "misses", "migrations"
    );
    for row in compare(2.9, 0.25, runs) {
        println!(
            "{:<24} {:>12.2} {:>10.2} {:>12.1}",
            row.label, row.pct_of_ideal, row.misses, row.migrations
        );
    }
}
