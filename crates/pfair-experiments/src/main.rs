//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md's experiment index).
//!
//! ```text
//! pfair-experiments all                # everything below
//! pfair-experiments fig11-speed        # Fig. 11 (a) + (b)
//! pfair-experiments fig11-radius       # Fig. 11 (c) + (d)
//! pfair-experiments counterexamples    # Figs. 6, 8, 9 with exact drift values
//! pfair-experiments windows            # Figs. 1, 3/7 ideal-allocation tables
//! pfair-experiments tradeoff           # hybrid efficiency-vs-accuracy ladder
//! pfair-experiments baselines          # EDF / partitioned comparison
//! pfair-experiments sharding           # ShardSet scale-out sweep
//!
//! options: --runs N     (default 61, the paper's replication count)
//!          --csv DIR    (also write the Fig. 11 curves as CSV files)
//!          --threads N  (worker threads; overrides PFAIR_THREADS)
//!          --timing     (append per-run wall-clock columns; nondeterministic)
//! ```

mod baselines;
mod counterexamples;
mod csv_out;
mod extensions;
mod fig11;
mod runner;
mod scaling;
mod sharding;
mod tradeoff;
mod windows;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs: u64 = 61;
    let mut csv: Option<std::path::PathBuf> = None;
    let mut command = String::from("all");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a number"));
            }
            "--csv" => {
                csv = Some(
                    it.next()
                        .map_or_else(|| die("--csv needs a directory"), std::path::PathBuf::from),
                );
            }
            "--threads" => {
                runner::set_threads(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--threads needs a number >= 1")),
                );
            }
            "--timing" => runner::set_timing(true),
            "--help" | "-h" => {
                print_help();
                return;
            }
            c if !c.starts_with('-') => command = c.to_string(),
            other => die(&format!("unknown option {other}")),
        }
    }

    match command.as_str() {
        "all" => {
            windows::run_all();
            counterexamples::run_all();
            fig11::run_speed_insets_csv(runs, csv.as_deref());
            fig11::run_radius_insets_csv(runs, csv.as_deref());
            tradeoff::run(runs);
            baselines::run(runs);
            extensions::run(runs);
            scaling::run(runs);
            sharding::run(runs);
        }
        "fig11-speed" | "fig11a" | "fig11b" => fig11::run_speed_insets_csv(runs, csv.as_deref()),
        "fig11-radius" | "fig11c" | "fig11d" => fig11::run_radius_insets_csv(runs, csv.as_deref()),
        "counterexamples" => counterexamples::run_all(),
        "windows" => windows::run_all(),
        "tradeoff" => tradeoff::run(runs),
        "baselines" => baselines::run(runs),
        "extensions" => extensions::run(runs),
        "scaling" => scaling::run(runs),
        "sharding" => sharding::run(runs),
        "room" => {
            // Fig. 10: the simulated Whisper room, written as SVG.
            let sc = whisper_sim::Scenario::new(2.9, 0.25, true, 7);
            let svg = whisper_sim::room_svg::render_room(&sc, 0);
            let path = "whisper_room.svg";
            std::fs::write(path, svg).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            println!("wrote {path} (Fig. 10: room, microphones, pole, trajectories)");
        }
        other => die(&format!("unknown command {other}")),
    }
}

fn print_help() {
    println!(
        "usage: pfair-experiments [all|fig11-speed|fig11-radius|counterexamples|windows|tradeoff|baselines|extensions|scaling|sharding|room] [--runs N] [--threads N] [--csv DIR] [--timing]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_help();
    std::process::exit(2)
}
