//! Deterministic scoped-thread fan-out for independent simulation runs.
//!
//! Every experiment in this crate is an embarrassingly parallel sweep:
//! a list of independent, seeded configurations, each simulated by a
//! pure function of its inputs. The pool itself now lives in
//! [`pfair_core::pool`] (the shard supervisor in `pfair-sched` drives
//! the same machinery); this module keeps the experiment-facing CLI
//! policy — the `--threads` override and the `--timing` switch — and
//! re-exports the pool so existing sweep code is unchanged.
//!
//! The worker count comes from the `--threads` CLI override, then the
//! `PFAIR_THREADS` environment variable, then the machine's available
//! parallelism.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub use pfair_core::pool::par_map_threads;

/// Process-wide override set by the `--threads` CLI flag (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide per-job timing switch (the `--timing` CLI flag).
/// Off by default so sweep output stays byte-identical run to run;
/// wall-clock figures are inherently nondeterministic.
static TIMING: AtomicBool = AtomicBool::new(false);

/// Enables (or disables) per-job wall-clock reporting in the sweeps
/// that support it (the `--timing` CLI flag).
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// `true` iff `--timing` was requested.
pub fn timing() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Installs a process-wide worker-count override (the `--threads` CLI
/// flag). Takes precedence over `PFAIR_THREADS`.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Resolves the worker-thread count: CLI override, then
/// `PFAIR_THREADS`, then the machine's available parallelism.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced >= 1 {
        return forced;
    }
    pfair_core::pool::default_threads()
}

/// Maps `f` over `items` on the configured worker pool, returning
/// results in input order (identical to `items.into_iter().map(f)`).
///
/// Panics in `f` are propagated to the caller, as they would be
/// serially — a failed assertion inside one run still aborts the sweep.
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    par_map_threads(threads(), items, f)
}

/// [`par_map`], also measuring each job's wall time on its worker.
/// Results stay in input order; the duration vector is index-aligned
/// with them. The timings themselves are nondeterministic, which is
/// why callers only *render* them behind [`timing`].
pub fn par_map_timed<I, O, F>(items: Vec<I>, f: F) -> (Vec<O>, Vec<std::time::Duration>)
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let timed = par_map(items, |item| {
        let start = std::time::Instant::now();
        let out = f(item);
        (out, start.elapsed())
    });
    timed.into_iter().unzip()
}

/// Fans independent simulation runs across the pool: one
/// [`simulate`](pfair_sched::engine::simulate) call per
/// `(SimConfig, Workload)` job, results in job order.
#[cfg_attr(not(test), allow(dead_code))] // consumed by the determinism tests; kept public API for future sweeps
pub fn run_sims(
    jobs: Vec<(pfair_sched::engine::SimConfig, pfair_sched::event::Workload)>,
) -> Vec<pfair_sched::trace::SimResult> {
    par_map(jobs, |(cfg, w)| pfair_sched::engine::simulate(cfg, &w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 4, 7] {
            let got = par_map_threads(workers, items.clone(), |x| x * x + 1);
            assert_eq!(got, expected, "order broken at {workers} workers");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_threads(4, empty, |x| x).is_empty());
        assert_eq!(par_map_threads(4, vec![9u64], |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_count_never_exceeds_item_count() {
        // 100 workers over 3 items must still produce all 3 results.
        let got = par_map_threads(100, vec![1u64, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    /// A mixed PD²-OI / PD²-LJ / hybrid job list over phase-staggered
    /// sawtooth workloads: 12 jobs, three schemes × four periods.
    fn mixed_scheme_jobs() -> Vec<(SimConfig, pfair_sched::event::Workload)> {
        use pfair_sched::reweight::{HybridPolicy, Scheme};
        let horizon = 400;
        let mut jobs = Vec::new();
        for period in [90i64, 100, 110, 120] {
            let w = workloads::sawtooth(12, (1, 24), (1, 6), period, horizon);
            jobs.push((SimConfig::oi(4, horizon), w.clone()));
            jobs.push((SimConfig::leave_join(4, horizon), w.clone()));
            jobs.push((
                SimConfig::oi(4, horizon).with_scheme(Scheme::Hybrid(HybridPolicy::EveryNth(2))),
                w,
            ));
        }
        jobs
    }

    fn render(results: &[pfair_sched::trace::SimResult]) -> Vec<String> {
        use pfair_json::ToJson;
        results.iter().map(|r| r.to_json().to_string()).collect()
    }

    use pfair_sched::engine::{simulate, SimConfig};
    use pfair_sched::workloads;

    #[test]
    fn parallel_sim_results_are_byte_identical_to_serial() {
        // Ground truth: a plain serial map over the job list.
        let serial: Vec<String> = mixed_scheme_jobs()
            .into_iter()
            .map(|(cfg, w)| simulate(cfg, &w))
            .map(|r| render(&[r]).remove(0))
            .collect();
        // The same jobs through worker pools of several widths must
        // reproduce every SimResult — drift tracks, misses, counters,
        // subtask histories — byte for byte, in the same order.
        for workers in [1, 2, 4, 8] {
            let results =
                par_map_threads(workers, mixed_scheme_jobs(), |(cfg, w)| simulate(cfg, &w));
            assert_eq!(
                render(&results),
                serial,
                "parallel output diverged at {workers} workers"
            );
        }
        // And through the env-configured entry point used by sweeps.
        assert_eq!(render(&run_sims(mixed_scheme_jobs())), serial);
    }

    #[test]
    fn par_map_timed_aligns_durations_with_results() {
        let (out, times) = par_map_timed(vec![1u64, 2, 3, 4, 5], |x| x * 2);
        assert_eq!(out, vec![2, 4, 6, 8, 10]);
        assert_eq!(times.len(), out.len());
    }

    #[test]
    fn probed_runs_are_byte_identical_across_pool_widths() {
        use pfair_sched::engine::simulate_with;
        use pfair_sched::prelude::{Fanout, MetricsProbe, TraceRecorder};

        // Each job's full observability output — the ordered event
        // stream, the Chrome trace, and the canonical metrics snapshot
        // — rendered to one string.
        let observe =
            |jobs: Vec<(SimConfig, pfair_sched::event::Workload)>, workers: usize| -> Vec<String> {
                par_map_threads(workers, jobs, |(cfg, w)| {
                    let (_, Fanout(rec, metrics)) =
                        simulate_with(cfg, &w, Fanout(TraceRecorder::new(), MetricsProbe::new()));
                    let events: Vec<String> = rec
                        .events()
                        .iter()
                        .map(|e| pfair_json::ToJson::to_json(e).to_string())
                        .collect();
                    format!(
                        "{}\n{}\n{}",
                        events.join("\n"),
                        rec.chrome_trace(),
                        metrics.registry().snapshot_text()
                    )
                })
            };
        let serial = observe(mixed_scheme_jobs(), 1);
        assert!(serial.iter().any(|s| s.contains("reweight_initiated")));
        let wide = observe(mixed_scheme_jobs(), 4);
        assert_eq!(serial, wide, "probe output diverged across pool widths");
    }
}
