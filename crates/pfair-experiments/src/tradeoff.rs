//! The efficiency-versus-accuracy sweep: hybrid schemes between pure
//! PD²-OI and pure PD²-LJ on the Whisper workload.
//!
//! This is the headline experiment of the titled companion paper
//! ("Task Reweighting on Multiprocessors: Efficiency versus Accuracy"):
//! PD²-OI buys accuracy (low drift, high % of ideal) at the cost of
//! extra queue work per reweighting event; PD²-LJ is cheap but
//! inaccurate; hybrids buy accuracy only for the events that matter.
//! For each scheme the table reports both axes — measured overhead
//! (priority-queue operations and halts) and accuracy (max drift and %
//! of ideal) — averaged over seeded runs.

use crate::runner;
use pfair_core::rational::rat;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use whisper_sim::stats::summarize;
use whisper_sim::{run_whisper, Scenario};

/// A point on the efficiency-accuracy frontier.
#[derive(Clone, Debug)]
pub struct TradeoffPoint {
    /// Scheme label.
    pub label: String,
    /// Mean max drift at t = 1000.
    pub max_drift: f64,
    /// Mean % of ideal allocation.
    pub pct_of_ideal: f64,
    /// Mean priority-queue operations per run.
    pub heap_ops: f64,
    /// Mean subtask halts per run (the extra work OI-style handling
    /// performs over LJ's bulk withdrawal).
    pub halts: f64,
    /// Mean enactments per run.
    pub enactments: f64,
}

/// The scheme ladder from pure LJ to pure OI.
pub fn schemes() -> Vec<(String, Scheme)> {
    vec![
        ("PD2-LJ (pure)".into(), Scheme::LeaveJoin),
        (
            "hybrid every-4th".into(),
            Scheme::Hybrid(HybridPolicy::EveryNth(4)),
        ),
        (
            "hybrid every-2nd".into(),
            Scheme::Hybrid(HybridPolicy::EveryNth(2)),
        ),
        (
            "hybrid |Δw| ≥ 50%".into(),
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 2))),
        ),
        (
            "hybrid |Δw| ≥ 20%".into(),
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 5))),
        ),
        (
            "hybrid budget 2/100".into(),
            Scheme::Hybrid(HybridPolicy::OiBudget {
                budget: 2,
                window: 100,
            }),
        ),
        (
            "hybrid drift-feedback".into(),
            Scheme::Hybrid(HybridPolicy::DriftFeedback(rat(3, 2))),
        ),
        ("PD2-OI (pure)".into(), Scheme::Oi),
    ]
}

/// Sweeps the ladder on the base Whisper scenario.
///
/// The sweep is flattened to one job per (scheme, seed) pair before
/// being fanned across the worker pool, so even a single-scheme sweep
/// with many seeds — or the full 8-scheme ladder with few — keeps every
/// worker busy. Results come back in job order (see [`runner::par_map`])
/// and are regrouped per scheme, so output is identical to the serial
/// nested loop.
#[allow(dead_code)] // the timed variant below is the binary's entry; kept for external sweeps
pub fn sweep(speed: f64, radius: f64, runs: u64) -> Vec<TradeoffPoint> {
    sweep_timed(speed, radius, runs).0
}

/// [`sweep`], also returning the mean wall-clock milliseconds per run
/// for each scheme (index-aligned with the points). The table only
/// renders these under `--timing` — wall time is nondeterministic, and
/// default output must be byte-identical across pool widths.
pub fn sweep_timed(speed: f64, radius: f64, runs: u64) -> (Vec<TradeoffPoint>, Vec<f64>) {
    let ladder = schemes();
    let jobs: Vec<(usize, u64)> = (0..ladder.len())
        .flat_map(|si| (0..runs).map(move |seed| (si, seed)))
        .collect();
    let (all_metrics, all_times) = runner::par_map_timed(jobs, |(si, seed)| {
        let sc = Scenario::new(speed, radius, true, seed);
        run_whisper(&sc, ladder[si].1.clone())
    });
    let chunk = usize::try_from(runs).expect("runs fits in usize").max(1);
    let mean_ms: Vec<f64> = all_times
        .chunks(chunk)
        .map(|times| {
            let total: f64 = times.iter().map(|d| d.as_secs_f64() * 1000.0).sum();
            total / times.len() as f64
        })
        .collect();
    let points = ladder
        .into_iter()
        .zip(all_metrics.chunks(chunk))
        .map(|((label, _scheme), metrics)| {
            for m in metrics {
                assert_eq!(m.misses, 0, "{label}: deadline miss");
            }
            TradeoffPoint {
                label,
                max_drift: summarize(&metrics.iter().map(|m| m.max_drift).collect::<Vec<_>>()).mean,
                pct_of_ideal: summarize(
                    &metrics.iter().map(|m| m.pct_of_ideal).collect::<Vec<_>>(),
                )
                .mean,
                heap_ops: summarize(
                    &metrics
                        .iter()
                        .map(|m| m.counters.heap_ops() as f64)
                        .collect::<Vec<_>>(),
                )
                .mean,
                halts: summarize(
                    &metrics
                        .iter()
                        .map(|m| m.counters.halts as f64)
                        .collect::<Vec<_>>(),
                )
                .mean,
                enactments: summarize(
                    &metrics
                        .iter()
                        .map(|m| m.counters.reweight_enactments as f64)
                        .collect::<Vec<_>>(),
                )
                .mean,
            }
        })
        .collect();
    (points, mean_ms)
}

/// Prints the frontier table. Under `--timing`, appends each scheme's
/// mean wall-clock milliseconds per run (nondeterministic; off by
/// default so the table stays reproducible).
pub fn run(runs: u64) {
    println!("\n=== Efficiency vs. accuracy: hybrid ladder (speed 2.9 m/s, radius 25 cm) ===");
    let timing = runner::timing();
    print!(
        "{:<22} {:>10} {:>12} {:>12} {:>9} {:>11}",
        "scheme", "max drift", "% of ideal", "heap ops", "halts", "enactments"
    );
    println!(
        "{}",
        if timing {
            format!(" {:>9}", "ms/run")
        } else {
            String::new()
        }
    );
    let (points, mean_ms) = sweep_timed(2.9, 0.25, runs);
    for (p, ms) in points.iter().zip(&mean_ms) {
        print!(
            "{:<22} {:>10.3} {:>12.2} {:>12.0} {:>9.1} {:>11.1}",
            p.label, p.max_drift, p.pct_of_ideal, p.heap_ops, p.halts, p.enactments
        );
        println!(
            "{}",
            if timing {
                format!(" {ms:>9.2}")
            } else {
                String::new()
            }
        );
    }
}
