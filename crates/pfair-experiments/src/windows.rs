//! Fig. 1 / Fig. 3 / Fig. 7 regeneration: per-slot ideal-allocation
//! tables for periodic, IS, and adaptable tasks, printed in the same
//! per-subtask layout as the paper's window diagrams.

use pfair_core::ideal::{is_ideal_table, IswTracker, PsTracker};
use pfair_core::rational::{rat, Rational};
use pfair_core::weight::Weight;
use pfair_core::window::b_bit;

fn print_table(title: &str, windows: &[(i64, i64)], rows: &[Vec<Rational>], horizon: i64) {
    println!("\n--- {title} ---");
    print!("{:>10}", "slot");
    for t in 0..horizon {
        print!("{t:>8}");
    }
    println!();
    for (j, row) in rows.iter().enumerate() {
        print!("T_{:<2}[{:>2},{:>2})", j + 1, windows[j].0, windows[j].1);
        for a in row.iter().take(horizon as usize) {
            if a.is_zero() {
                print!("{:>8}", ".");
            } else {
                print!("{:>8}", format!("{}", a));
            }
        }
        println!();
    }
}

/// Fig. 1(a): the periodic weight-5/16 task.
pub fn fig1a() {
    let w = Weight::new(rat(5, 16));
    let table = is_ideal_table(w, &[0; 5], 16);
    print_table(
        "Fig. 1(a): periodic task, weight 5/16",
        &table.windows,
        &table.per_subtask,
        16,
    );
}

/// Fig. 1(b): the IS weight-5/16 task with offsets 0,2,3,3,3.
pub fn fig1b() {
    let w = Weight::new(rat(5, 16));
    let table = is_ideal_table(w, &[0, 2, 3, 3, 3], 20);
    print_table(
        "Fig. 1(b): IS task, weight 5/16, offsets (0,2,3,3,3)",
        &table.windows,
        &table.per_subtask,
        20,
    );
}

/// Fig. 3(b)/Fig. 7: the weight-3/19 task X enacting an increase to 2/5
/// at time 8, shown as per-slot I_SW allocations and the I_PS totals.
pub fn fig7() {
    println!("\n--- Fig. 7: X (3/19 → 2/5 at t=8), I_SW per-slot and I_PS totals ---");
    let w = rat(3, 19);
    let mut isw = IswTracker::new_keeping_history(w, 0);
    let w519 = Weight::new(w);
    isw.add_subtask(1, 0, true, false);
    isw.add_subtask(2, 6, false, b_bit(w519, 1));
    let mut ps = PsTracker::new(w, 0);
    let mut prev = [Rational::ZERO; 2];
    println!(
        "{:>4} {:>10} {:>10} {:>14} {:>14}",
        "t", "A(Isw,X1,t)", "A(Isw,X2,t)", "A(Icsw,X,0,t+1)", "A(Ips,X,0,t+1)"
    );
    for t in 0..12 {
        if t == 8 {
            isw.set_swt(rat(2, 5)); // rule I(i): enacted at initiation
            ps.set_wt(rat(2, 5));
        }
        isw.advance(t);
        ps.advance(t);
        let c1 = isw.subtask_cum(1).unwrap_or(Rational::ONE);
        let c2 = isw.subtask_cum(2).unwrap_or(Rational::ZERO);
        let d1 = c1 - prev[0];
        let d2 = c2 - prev[1];
        prev = [c1, c2];
        println!(
            "{:>4} {:>10} {:>10} {:>14} {:>14}",
            t,
            format!("{}", d1),
            format!("{}", d2),
            format!("{}", isw.icsw_total()),
            format!("{}", ps.total()),
        );
    }
    // The paper's headline values.
    assert_eq!(isw.completion_of(2), Some(10));
    println!("  D(I_SW, X_2) = 10; X_2's final slot allocation = 32/95 ✓ (paper values)");

    // Cross-check: the event-driven engine path — two closed-form
    // `advance_to` jumps, one per constant-weight interval — lands on
    // exactly the state the per-slot table above accumulated.
    let mut isw_jump = IswTracker::new(w, 0);
    isw_jump.add_subtask(1, 0, true, false);
    isw_jump.add_subtask(2, 6, false, b_bit(w519, 1));
    let mut ps_jump = PsTracker::new(w, 0);
    isw_jump.advance_to(8);
    ps_jump.advance_to(8);
    isw_jump.set_swt(rat(2, 5));
    ps_jump.set_wt(rat(2, 5));
    isw_jump.advance_to(12);
    ps_jump.advance_to(12);
    assert_eq!(isw_jump.icsw_total(), isw.icsw_total());
    assert_eq!(ps_jump.total(), ps.total());
    assert_eq!(isw_jump.completion_of(2), Some(10));
    println!("  two interval jumps (0→8→12) reproduce the per-slot totals ✓");
}

/// Runs all window tables.
pub fn run_all() {
    fig1a();
    fig1b();
    fig7();
}
