//! The assumptions-lifted experiment: the paper's §5 prediction that
//! without its simplifying assumptions "PD²-LJ [would be] completely
//! inadequate, since required adaptations would be even more pronounced
//! and frequent". Runs the Whisper scenario with each relaxation
//! individually and with all of them combined, for PD²-OI and PD²-LJ.

use crate::runner;
use pfair_sched::engine::{simulate, SimConfig};
use whisper_sim::extensions::{generate_relaxed_workload, Relaxations};
use whisper_sim::scenario::{HORIZON, PROCESSORS};
use whisper_sim::stats::summarize;
use whisper_sim::Scenario;

/// The relaxation ladder: none → each alone → all.
pub fn ladder() -> Vec<(&'static str, Relaxations)> {
    vec![
        ("paper assumptions", Relaxations::default()),
        (
            "+ 3-D motion",
            Relaxations {
                vertical_amplitude: 0.15,
                ..Default::default()
            },
        ),
        (
            "+ ambient noise",
            Relaxations {
                ambient_noise: 0.4,
                ..Default::default()
            },
        ),
        (
            "+ interference",
            Relaxations {
                interference: true,
                ..Default::default()
            },
        ),
        (
            "+ variable speed",
            Relaxations {
                speed_variation: 0.5,
                ..Default::default()
            },
        ),
        ("all lifted", Relaxations::all()),
    ]
}

/// Runs the ladder and prints per-scheme accuracy plus event pressure.
pub fn run(runs: u64) {
    println!("\n=== Lifting the §5 simplifying assumptions (speed 2.9 m/s, radius 25 cm) ===");
    println!(
        "{:<20} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "assumptions", "events", "OI drift", "LJ drift", "OI %ideal", "LJ %ideal"
    );
    for (label, relax) in ladder() {
        let rows: Vec<(f64, f64, f64, f64, f64)> = runner::par_map((0..runs).collect(), |seed| {
            let sc = Scenario::new(2.9, 0.25, true, seed);
            let w = generate_relaxed_workload(&sc, &relax);
            let events = w.sorted_events().len() as f64;
            let oi = simulate(SimConfig::oi(PROCESSORS, HORIZON), &w);
            let lj = simulate(SimConfig::leave_join(PROCESSORS, HORIZON), &w);
            assert!(oi.is_miss_free() && lj.is_miss_free());
            (
                events,
                oi.max_abs_drift_at(HORIZON).to_f64(),
                lj.max_abs_drift_at(HORIZON).to_f64(),
                oi.mean_pct_of_ideal(),
                lj.mean_pct_of_ideal(),
            )
        });
        let col = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| {
            summarize(&rows.iter().map(f).collect::<Vec<_>>()).mean
        };
        println!(
            "{:<20} {:>8.0} {:>11.3} {:>11.3} {:>11.2} {:>11.2}",
            label,
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            col(|r| r.3),
            col(|r| r.4),
        );
    }
    println!("  (the OI-vs-LJ gap widens as assumptions fall — the paper's §5 prediction)");
}
