//! Scale-out sweep: population workloads through the shard supervisor.
//!
//! Exercises the PR-10 sharding stack end to end — a deterministic
//! synthetic population (`10⁴–10⁵` tasks here; the benches go to
//! `10⁶`) is partitioned by [`ShardSet`] across 1–8 engine shards and
//! driven through the worker pool — and prints the two figures the
//! sharding invariant promises:
//!
//! * the aggregate invariant digest (per-task quanta + drift) is
//!   identical across shard counts, and
//! * total supervisor + engine work per shard drops as shards are
//!   added (the per-shard scheduled-quanta column), which is what
//!   buys near-linear throughput on real parallel hardware.

use pfair_sched::shard::{ShardReport, ShardSet, ShardSpec};
use pfair_sched::workloads;

/// One row of the scale-out table.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Shard count `S`.
    pub shards: usize,
    /// Total quanta scheduled (shard-count invariant when feasible).
    pub scheduled_quanta: u64,
    /// Largest per-shard quanta share (the critical path on `S` cores).
    pub max_shard_quanta: u64,
    /// Deadline misses (must stay zero).
    pub misses: usize,
    /// FNV-1a digest of the invariant JSON (equal down the column).
    pub digest: u64,
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_one(tasks: u32, shards: usize, horizon: i64, threads: usize) -> ShardReport {
    let w = workloads::synthetic_population(tasks, 0x5eed);
    let spec = ShardSpec::new(shards, processors_for(tasks, shards), horizon)
        .with_segment(512)
        .with_threads(threads);
    let mut set = ShardSet::new(spec, &w);
    set.run();
    set.finish()
}

/// Processor budget per shard: ceil of the population's worst-case
/// utilization (`n/512`) divided across shards, plus one for headroom.
fn processors_for(tasks: u32, shards: usize) -> u32 {
    let worst = tasks.div_ceil(512);
    worst.div_ceil(u32::try_from(shards).unwrap_or(1)) + 1
}

/// Runs the sweep and prints the scale-out table.
pub fn run(_runs: u64) {
    println!("== scale-out: synthetic population through ShardSet ==");
    println!("   (invariant digest must match down each column; see DESIGN.md)");
    let threads = crate::runner::threads();
    for &tasks in &[10_000u32, 100_000] {
        let horizon = workloads::POPULATION_ALIGNMENT;
        println!("-- {tasks} tasks, horizon {horizon}, {threads} worker thread(s) --");
        println!(
            "{:>6} {:>16} {:>16} {:>8} {:>18}",
            "shards", "total quanta", "max shard quanta", "misses", "invariant digest"
        );
        let mut digest0 = None;
        for shards in [1usize, 2, 4, 8] {
            let report = run_one(tasks, shards, horizon, threads);
            let row = ShardRow {
                shards,
                scheduled_quanta: report.scheduled_quanta(),
                max_shard_quanta: report
                    .per_shard
                    .iter()
                    .map(|s| s.scheduled_quanta)
                    .max()
                    .unwrap_or(0),
                misses: report.misses(),
                digest: fnv1a(&report.invariant_json()),
            };
            let digest0 = *digest0.get_or_insert(row.digest);
            assert_eq!(
                digest0, row.digest,
                "sharding invariant broken at S={shards}"
            );
            assert_eq!(row.misses, 0, "population must be feasible at S={shards}");
            println!(
                "{:>6} {:>16} {:>16} {:>8} {:>18}",
                row.shards,
                row.scheduled_quanta,
                row.max_shard_quanta,
                row.misses,
                format!("{:016x}", row.digest)
            );
        }
    }
}
