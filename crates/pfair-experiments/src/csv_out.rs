//! CSV export of experiment data, one file per figure, so the curves
//! can be plotted with any tool (`gnuplot`, matplotlib, …).

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes `rows` under `header` to `dir/name.csv` (creating `dir`).
/// Panics with a clear message on I/O failure — the experiment harness
/// treats unwritable output as fatal.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) {
    fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {}", dir.display(), e));
    let path = dir.join(format!("{name}.csv"));
    let mut f =
        fs::File::create(&path).unwrap_or_else(|e| panic!("creating {}: {}", path.display(), e));
    writeln!(f, "{header}").expect("writing csv header");
    for row in rows {
        writeln!(f, "{row}").expect("writing csv row");
    }
    println!("  wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("pfair_csv_test");
        let _ = fs::remove_dir_all(&dir);
        write_csv(&dir, "demo", "a,b", &["1,2".into(), "3,4".into()]);
        let content = fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
