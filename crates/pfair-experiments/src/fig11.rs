//! Fig. 11 regeneration: the Whisper evaluation sweeps.
//!
//! * **(a)** maximum drift at time 1,000 vs. speaker speed (radius
//!   25 cm),
//! * **(b)** per-task average % of the `I_PS` allocation vs. speed,
//! * **(c)** maximum drift vs. radius of rotation (speed 2.9 m/s),
//! * **(d)** % of ideal allocation vs. radius,
//!
//! each for PD²-OI and PD²-LJ, with and without the occluding pole,
//! averaged over seeded runs with 98% confidence intervals (the paper
//! uses 61 runs per point; `--runs` overrides).

use crate::runner;
use pfair_sched::reweight::Scheme;
use whisper_sim::stats::{summarize, Summary};
use whisper_sim::{run_whisper, Scenario, WhisperMetrics};

/// The speeds of the paper's x-axis (m/s), 0.5–3.5.
pub const SPEEDS: [f64; 7] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5];
/// The radii of the paper's x-axis (m), 10–50 cm.
pub const RADII: [f64; 9] = [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50];
/// Radius used for the speed sweep (paper: 25 cm).
pub const SPEED_SWEEP_RADIUS: f64 = 0.25;
/// Speed used for the radius sweep (paper: 2.9 m/s).
pub const RADIUS_SWEEP_SPEED: f64 = 2.9;

/// One aggregated point of a Fig. 11 curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// The x value (speed in m/s or radius in m).
    pub x: f64,
    /// Max drift at time 1,000 (quanta): mean ± 98% CI.
    pub max_drift: Summary,
    /// % of ideal allocation: mean ± 98% CI.
    pub pct_of_ideal: Summary,
}

/// One of the four curves in each inset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CurveKey {
    /// PD²-OI (true) or PD²-LJ (false).
    pub oi: bool,
    /// Pole occlusion enabled.
    pub occlusion: bool,
}

impl CurveKey {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        format!(
            "PD2-{}{}",
            if self.oi { "OI" } else { "LJ" },
            if self.occlusion {
                " (occlusion)"
            } else {
                " (no occlusion)"
            }
        )
    }

    fn scheme(&self) -> Scheme {
        if self.oi {
            Scheme::Oi
        } else {
            Scheme::LeaveJoin
        }
    }
}

/// The four curve variants, in the order the tables print them.
pub const CURVES: [CurveKey; 4] = [
    CurveKey {
        oi: true,
        occlusion: true,
    },
    CurveKey {
        oi: true,
        occlusion: false,
    },
    CurveKey {
        oi: false,
        occlusion: true,
    },
    CurveKey {
        oi: false,
        occlusion: false,
    },
];

/// Runs one sweep point: `runs` seeded Whisper simulations, aggregated.
pub fn sweep_point(speed: f64, radius: f64, key: CurveKey, runs: u64) -> CurvePoint {
    let metrics: Vec<WhisperMetrics> = runner::par_map((0..runs).collect(), |seed| {
        let sc = Scenario::new(speed, radius, key.occlusion, seed);
        run_whisper(&sc, key.scheme())
    });
    for m in &metrics {
        assert_eq!(m.misses, 0, "deadline miss in a Whisper run");
    }
    let drifts: Vec<f64> = metrics.iter().map(|m| m.max_drift).collect();
    let pcts: Vec<f64> = metrics.iter().map(|m| m.pct_of_ideal).collect();
    CurvePoint {
        x: 0.0, // filled by the caller
        max_drift: summarize(&drifts),
        pct_of_ideal: summarize(&pcts),
    }
}

/// A full curve over the speed axis (insets (a) and (b)).
pub fn speed_curve(key: CurveKey, runs: u64) -> Vec<CurvePoint> {
    SPEEDS
        .iter()
        .map(|&v| CurvePoint {
            x: v,
            ..sweep_point(v, SPEED_SWEEP_RADIUS, key, runs)
        })
        .collect()
}

/// A full curve over the radius axis (insets (c) and (d)).
pub fn radius_curve(key: CurveKey, runs: u64) -> Vec<CurvePoint> {
    RADII
        .iter()
        .map(|&r| CurvePoint {
            x: r,
            ..sweep_point(RADIUS_SWEEP_SPEED, r, key, runs)
        })
        .collect()
}

/// Prints one inset's table: per curve, one row per x value.
pub fn print_inset(title: &str, x_name: &str, curves: &[(CurveKey, Vec<CurvePoint>)], drift: bool) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:>8} {:>12} {:>10}",
        "curve", x_name, "mean", "±98% CI"
    );
    for (key, points) in curves {
        for p in points {
            let s = if drift { p.max_drift } else { p.pct_of_ideal };
            println!(
                "{:<28} {:>8.2} {:>12.4} {:>10.4}",
                key.label(),
                p.x,
                s.mean,
                s.ci98
            );
        }
    }
}

/// Runs and prints insets (a)+(b) (they share the same simulations),
/// optionally exporting the curves as CSV.
pub fn run_speed_insets_csv(runs: u64, csv: Option<&std::path::Path>) {
    let curves: Vec<(CurveKey, Vec<CurvePoint>)> = CURVES
        .iter()
        .map(|&key| (key, speed_curve(key, runs)))
        .collect();
    if let Some(dir) = csv {
        export_csv(dir, "fig11_speed", "speed_mps", &curves);
    }
    print_inset(
        "Fig. 11(a): max drift at t=1000 vs. speed (radius 25 cm)",
        "m/s",
        &curves,
        true,
    );
    print_inset(
        "Fig. 11(b): % of ideal allocation vs. speed (radius 25 cm)",
        "m/s",
        &curves,
        false,
    );
}

/// Runs and prints insets (c)+(d), optionally exporting CSV.
pub fn run_radius_insets_csv(runs: u64, csv: Option<&std::path::Path>) {
    let curves: Vec<(CurveKey, Vec<CurvePoint>)> = CURVES
        .iter()
        .map(|&key| (key, radius_curve(key, runs)))
        .collect();
    if let Some(dir) = csv {
        export_csv(dir, "fig11_radius", "radius_m", &curves);
    }
    print_inset(
        "Fig. 11(c): max drift at t=1000 vs. radius (speed 2.9 m/s)",
        "m",
        &curves,
        true,
    );
    print_inset(
        "Fig. 11(d): % of ideal allocation vs. radius (speed 2.9 m/s)",
        "m",
        &curves,
        false,
    );
}

/// Writes one CSV per inset pair: every curve's points with both
/// metrics and their confidence intervals.
fn export_csv(
    dir: &std::path::Path,
    name: &str,
    x_name: &str,
    curves: &[(CurveKey, Vec<CurvePoint>)],
) {
    let header = format!(
        "scheme,occlusion,{x_name},max_drift,max_drift_ci98,pct_of_ideal,pct_of_ideal_ci98"
    );
    let rows: Vec<String> = curves
        .iter()
        .flat_map(|(key, points)| {
            points.iter().map(move |p| {
                format!(
                    "{},{},{},{},{},{},{}",
                    if key.oi { "PD2-OI" } else { "PD2-LJ" },
                    key.occlusion,
                    p.x,
                    p.max_drift.mean,
                    p.max_drift.ci98,
                    p.pct_of_ideal.mean,
                    p.pct_of_ideal.ci98
                )
            })
        })
        .collect();
    crate::csv_out::write_csv(dir, name, &header, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_aggregates_runs() {
        let key = CurveKey {
            oi: true,
            occlusion: true,
        };
        let p = sweep_point(2.0, 0.25, key, 2);
        assert_eq!(p.max_drift.n, 2);
        assert!(p.pct_of_ideal.mean > 50.0);
    }

    #[test]
    fn curve_keys_have_distinct_labels() {
        let labels: Vec<String> = CURVES.iter().map(super::CurveKey::label).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 4);
        assert_eq!(dedup.len(), 4);
    }
}
