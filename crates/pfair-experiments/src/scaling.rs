//! Scaling and ablation studies beyond the paper's figures.
//!
//! * **System-size scaling**: drift and scheduling overhead as the task
//!   count grows (with processors scaled proportionally) — contextualizes
//!   the §6 complexity discussion (`O(log N)` per reweight, per-slot
//!   heap work) with measured per-slot operation counts.
//! * **Tie-break ablation**: PD² leaves equal-priority ties "arbitrary";
//!   this study confirms the choice affects only which task runs first,
//!   not correctness or aggregate accuracy (DESIGN.md design-choice
//!   ablation).

use crate::runner;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::priority::TieBreak;
use pfair_sched::reweight::Scheme;
use pfair_sched::workloads;
use whisper_sim::stats::summarize;

/// One row of the size-scaling table.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Task count `N`.
    pub tasks: u32,
    /// Processor count `M = max(2, N/4)`.
    pub processors: u32,
    /// Mean max drift at the horizon (PD²-OI).
    pub oi_drift: f64,
    /// Mean max drift (PD²-LJ).
    pub lj_drift: f64,
    /// Mean heap operations per slot (PD²-OI).
    pub heap_ops_per_slot: f64,
    /// Mean stale pops per run (lazy-invalidation overhead).
    pub stale_pops: f64,
}

/// Runs the size sweep on phase-staggered sawtooth workloads.
pub fn size_sweep(sizes: &[u32], horizon: i64, seeds: u64) -> Vec<ScaleRow> {
    sizes
        .iter()
        .map(|&n| {
            let m = (n / 4).max(2);
            let rows: Vec<(f64, f64, f64, f64)> = runner::par_map((0..seeds).collect(), |seed| {
                // Seed shifts the workload by permuting the phase via
                // the period (deterministic but distinct).
                let period = 100 + (seed as i64 % 7) * 10;
                let w = workloads::sawtooth(n, (1, 24), (1, 6), period, horizon);
                let oi = simulate(SimConfig::oi(m, horizon), &w);
                let lj = simulate(SimConfig::oi(m, horizon).with_scheme(Scheme::LeaveJoin), &w);
                assert!(oi.is_miss_free() && lj.is_miss_free());
                (
                    oi.max_abs_drift_at(horizon).to_f64(),
                    lj.max_abs_drift_at(horizon).to_f64(),
                    oi.counters.heap_ops() as f64 / horizon as f64,
                    oi.counters.stale_pops as f64,
                )
            });
            let col = |f: fn(&(f64, f64, f64, f64)) -> f64| {
                summarize(&rows.iter().map(f).collect::<Vec<_>>()).mean
            };
            ScaleRow {
                tasks: n,
                processors: m,
                oi_drift: col(|r| r.0),
                lj_drift: col(|r| r.1),
                heap_ops_per_slot: col(|r| r.2),
                stale_pops: col(|r| r.3),
            }
        })
        .collect()
}

/// Tie-break ablation on the Whisper scenario: aggregate metrics under
/// different arbitrary-tie resolutions.
pub fn tie_break_ablation(seeds: u64) -> Vec<(String, f64, f64)> {
    [
        ("task-id ascending", TieBreak::TaskIdAsc),
        ("task-id descending", TieBreak::TaskIdDesc),
    ]
    .into_iter()
    .map(|(label, tb)| {
        let metrics: Vec<(f64, f64)> = runner::par_map((0..seeds).collect(), |seed| {
            let sc = whisper_sim::Scenario::new(2.9, 0.25, true, seed);
            let w = whisper_sim::generate_workload(&sc);
            let r = simulate(
                SimConfig::oi(whisper_sim::PROCESSORS, whisper_sim::HORIZON)
                    .with_tie_break(tb.clone()),
                &w,
            );
            assert!(r.is_miss_free());
            (
                r.max_abs_drift_at(whisper_sim::HORIZON).to_f64(),
                r.mean_pct_of_ideal(),
            )
        });
        (
            label.to_string(),
            summarize(&metrics.iter().map(|m| m.0).collect::<Vec<_>>()).mean,
            summarize(&metrics.iter().map(|m| m.1).collect::<Vec<_>>()).mean,
        )
    })
    .collect()
}

/// Prints both studies.
pub fn run(seeds: u64) {
    println!("\n=== Scaling: drift & per-slot heap work vs. system size (sawtooth, M = N/4) ===");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>16} {:>12}",
        "N", "M", "OI drift", "LJ drift", "heap ops/slot", "stale pops"
    );
    for row in size_sweep(&[8, 16, 32, 64, 128], 600, seeds.min(12)) {
        println!(
            "{:>6} {:>6} {:>10.3} {:>10.3} {:>16.2} {:>12.1}",
            row.tasks,
            row.processors,
            row.oi_drift,
            row.lj_drift,
            row.heap_ops_per_slot,
            row.stale_pops
        );
    }

    println!("\n=== Ablation: arbitrary tie resolution (Whisper, PD²-OI) ===");
    println!(
        "{:<22} {:>10} {:>12}",
        "tie-break", "max drift", "% of ideal"
    );
    for (label, drift, pct) in tie_break_ablation(seeds.min(16)) {
        println!("{label:<22} {drift:>10.3} {pct:>12.2}");
    }
    println!("  (correctness is tie-break independent; aggregates differ only in noise)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_produces_flat_oi_drift() {
        let rows = size_sweep(&[8, 16], 240, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.oi_drift <= r.lj_drift + 0.5, "OI should not lose: {r:?}");
            assert!(r.heap_ops_per_slot > 0.0);
        }
        // Heap work grows with N; per-task drift does not explode.
        assert!(rows[1].heap_ops_per_slot > rows[0].heap_ops_per_slot);
        assert!(rows[1].oi_drift < rows[0].oi_drift * 2.0);
    }
}
