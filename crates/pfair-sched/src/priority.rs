//! PD² subtask priority and tie-breaking.
//!
//! PD² prioritizes subtasks earliest-pseudo-deadline-first (EPDF) with
//! two tie-breaks. For light tasks (weight ≤ 1/2 — the class the
//! *reweighting* rules support) the b-bit alone suffices: among equal
//! deadlines, a subtask with `b`-bit 1 is favored over one with `b`-bit
//! 0 (its window overlaps its successor's, so postponing it squeezes the
//! successor). For heavy tasks the second tie-break applies: among
//! equal-deadline `b = 1` subtasks, the one with the later *group
//! deadline* (`pfair_core::window::group_deadline`) wins — it heads the
//! longer potential cascade of squeezed length-2 windows. Remaining ties
//! are broken "arbitrarily" (paper §2); the counterexample figures fix
//! specific arbitrary orders, so the resolution is pluggable via
//! [`TieBreak`].
//!
//! A released subtask's priority **never changes** (paper §3.2: `d(T_j)`
//! is fixed once `T_j` is released, even if the task reweights
//! afterwards) — which is what makes an ordinary binary heap with lazy
//! invalidation a correct ready queue and keeps reweighting at
//! `O(log N)` per task.
//!
//! ## Packed representation
//!
//! [`Priority`] is a single `u128` key rather than a 4-field struct:
//! the heap's hot path is `cmp`, and one integer compare beats a
//! short-circuiting lexicographic chain of four. The fields are packed
//! most-significant-first in comparison order, each transformed so that
//! "smaller key = higher priority" holds componentwise:
//!
//! ```text
//! bit 127          : 0 (spare — keeps the key comfortably inside u128)
//! bits 80..=126    : biased deadline (47 bits; earlier = smaller)
//! bit  79          : b-rank (0 when b = 1, 1 when b = 0)
//! bits 32..=78     : complemented biased group deadline (47 bits;
//!                    *later* group deadline = smaller field)
//! bits  0..=31     : dense tie rank from [`TieTable`]
//! ```
//!
//! Slots are biased by `2^46` into `0..2^47`, so every slot in
//! `[-2^46, 2^46)` round-trips exactly — vastly wider than any simulated
//! horizon (`pfair_core::time` slots are within `±2^46` for all uses in
//! this repo; out-of-band values saturate, preserving order at the
//! clamped extremes). [`PriorityParts`] retains the 4-field lexicographic
//! compare as the specification; a proptest pins the packed order to it
//! over the full representable domain.

use pfair_core::task::TaskId;
use pfair_core::time::Slot;

/// Resolution of ties that remain after the deadline and b-bit
/// comparisons.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Favor the task with the smaller id (deterministic default).
    #[default]
    TaskIdAsc,
    /// Favor the task with the larger id.
    TaskIdDesc,
    /// Explicit rank per task id: smaller rank wins. Tasks absent from
    /// the table rank after all ranked tasks, by ascending id. This is
    /// how the paper's figures say "all ties are broken in favor of
    /// tasks from C".
    Ranked(Vec<(TaskId, u32)>),
}

impl TieBreak {
    /// The rank key this policy assigns to a task (smaller = favored).
    ///
    /// For `Ranked` this is an `O(table)` scan — fine for building a
    /// [`TieTable`] once per engine, too slow for the release hot path
    /// (which is why [`Priority::pack`] takes a precomputed dense rank
    /// instead of a `&TieBreak`).
    pub fn key(&self, task: TaskId) -> (u32, u32) {
        match self {
            TieBreak::TaskIdAsc => (0, task.0),
            TieBreak::TaskIdDesc => (0, u32::MAX - task.0),
            TieBreak::Ranked(table) => table
                .iter()
                .find(|(t, _)| *t == task)
                .map_or((u32::MAX, task.0), |(_, r)| (*r, task.0)),
        }
    }
}

impl pfair_json::ToJson for TieBreak {
    fn to_json(&self) -> pfair_json::Json {
        match self {
            TieBreak::TaskIdAsc => pfair_json::obj([("kind", "task_id_asc".to_string().to_json())]),
            TieBreak::TaskIdDesc => {
                pfair_json::obj([("kind", "task_id_desc".to_string().to_json())])
            }
            TieBreak::Ranked(table) => pfair_json::obj([
                ("kind", "ranked".to_string().to_json()),
                ("table", table.to_json()),
            ]),
        }
    }
}

impl pfair_json::FromJson for TieBreak {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let kind: String = value.field("kind")?;
        match kind.as_str() {
            "task_id_asc" => Ok(TieBreak::TaskIdAsc),
            "task_id_desc" => Ok(TieBreak::TaskIdDesc),
            "ranked" => Ok(TieBreak::Ranked(value.field("table")?)),
            other => Err(pfair_json::JsonError::new(format!(
                "unknown tie-break kind `{other}`"
            ))),
        }
    }
}

/// Dense per-task tie ranks, built **once per engine** from a
/// [`TieBreak`] policy.
///
/// `TieBreak::key` is order-defining but expensive for `Ranked`
/// policies (a linear table scan per call) and too wide to pack (two
/// `u32`s). Since the task-id universe is fixed at engine construction,
/// we sort it by `key` once and assign each task its position: a single
/// `u32` that is order-isomorphic *and* injective (distinct tasks get
/// distinct ranks), so packing it preserves both the ordering and the
/// equality structure of the original keys.
#[derive(Clone, Debug, Default)]
pub struct TieTable {
    ranks: Vec<u32>,
}

impl TieTable {
    /// Precomputes the dense rank of every task in `0..tasks`.
    pub fn new(tb: &TieBreak, tasks: u32) -> TieTable {
        let mut ids: Vec<u32> = (0..tasks).collect();
        // `sort_by_cached_key` evaluates `key` once per task, keeping
        // Ranked-policy construction at O(n·|table| + n log n) total
        // instead of a scan per comparison.
        ids.sort_by_cached_key(|&id| tb.key(TaskId(id)));
        let mut ranks = vec![0u32; ids.len()];
        for (pos, &id) in ids.iter().enumerate() {
            let idx = TaskId(id).idx();
            ranks[idx] = u32::try_from(pos).unwrap_or(u32::MAX); // audit: allow(panic-reach, idx enumerates 0..tasks and ranks is sized to tasks)
        }
        TieTable { ranks }
    }

    /// Grows the table to rank task ids `0..tasks` (no-op when already
    /// that big).
    ///
    /// Under the default [`TieBreak::TaskIdAsc`] the sort key is
    /// `(0, id)`, so appended ids sort after every existing id and the
    /// existing dense ranks are unchanged — growth is a stable O(new)
    /// append of ranks `len..tasks`. Other policies cannot guarantee
    /// that (a `Ranked` entry or `TaskIdDesc` would slot a new id
    /// *before* existing ones), so they rebuild the table; callers that
    /// grow mid-run (the shard supervisor) fix the policy to
    /// `TaskIdAsc`, where released priorities stay consistent because
    /// no already-released subtask's rank moves.
    pub fn ensure_tasks(&mut self, tb: &TieBreak, tasks: u32) {
        let len = u32::try_from(self.ranks.len()).unwrap_or(u32::MAX);
        if tasks <= len {
            return;
        }
        if matches!(tb, TieBreak::TaskIdAsc) {
            self.ranks.extend(len..tasks);
        } else {
            *self = TieTable::new(tb, tasks);
        }
    }

    /// The dense rank of `task` (smaller = favored). Unknown tasks rank
    /// last — the engine never asks for one, but the total function
    /// keeps the type panic-free.
    pub fn rank(&self, task: TaskId) -> u32 {
        self.ranks.get(task.idx()).copied().unwrap_or(u32::MAX)
    }

    /// Number of tasks ranked by this table.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// `true` iff the table ranks no tasks.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// Half-width of the exactly-representable slot band: slots in
/// `[-2^46, 2^46)` bias into the 47-bit fields losslessly.
const SLOT_BOUND: Slot = 1 << 46;
/// All-ones 47-bit field, used to complement the group deadline so a
/// *later* group deadline packs *smaller*.
const FIELD_MASK: u128 = (1 << 47) - 1;
const DEADLINE_SHIFT: u32 = 80;
const B_SHIFT: u32 = 79;
const GROUP_DEADLINE_SHIFT: u32 = 32;

/// Biases a slot into its unsigned 47-bit field. Out-of-band slots
/// saturate to the nearest representable value, which preserves their
/// order relative to every in-band slot.
// audit: prove(overflow-bounds)
fn biased(slot: Slot) -> u128 {
    let clamped = slot.clamp(-SLOT_BOUND, SLOT_BOUND - 1);
    // In range by construction: clamped + 2^46 ∈ [0, 2^47).
    u128::try_from(clamped + SLOT_BOUND).unwrap_or(0)
}

/// Recovers a slot from its biased 47-bit field.
// audit: prove(overflow-bounds)
fn unbiased(field: u128) -> Slot {
    i64::try_from(field & FIELD_MASK).unwrap_or(0) - SLOT_BOUND
}

/// A fully-resolved PD² priority, packed into one `u128` key. Smaller
/// compares as *higher* priority; the ready queue wraps it in `Reverse`
/// for its max-heap.
///
/// Comparison order: earlier deadline, then `b = 1` over `b = 0`, then
/// — the heavy-task tie-break — the *later* group deadline, then the
/// dense tie rank (see the module docs for the exact bit layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Priority(u128);

impl Priority {
    /// Packs the priority of a subtask with deadline `deadline`, b-bit
    /// `b`, and group deadline `group_deadline` (pass the subtask
    /// deadline itself for light tasks), with tie rank `tie_rank` from
    /// the engine's [`TieTable`].
    pub fn pack(deadline: Slot, b: bool, group_deadline: Slot, tie_rank: u32) -> Priority {
        let b_rank: u128 = if b { 0 } else { 1 };
        Priority(
            (biased(deadline) << DEADLINE_SHIFT)
                | (b_rank << B_SHIFT)
                | ((FIELD_MASK - biased(group_deadline)) << GROUP_DEADLINE_SHIFT)
                | u128::from(tie_rank),
        )
    }

    /// The packed subtask deadline.
    pub fn deadline(self) -> Slot {
        unbiased(self.0 >> DEADLINE_SHIFT)
    }

    /// The packed b-bit (`true` when the window overlaps its
    /// successor's).
    pub fn b(self) -> bool {
        (self.0 >> B_SHIFT) & 1 == 0
    }

    /// The packed group deadline.
    pub fn group_deadline(self) -> Slot {
        unbiased(FIELD_MASK - ((self.0 >> GROUP_DEADLINE_SHIFT) & FIELD_MASK))
    }

    /// The packed dense tie rank.
    pub fn tie_rank(self) -> u32 {
        u32::try_from(self.0 & u128::from(u32::MAX)).unwrap_or(u32::MAX)
    }
}

/// The 4-field lexicographic form of a PD² priority — the *specification*
/// the packed key is proven against (see the order-equivalence proptest),
/// kept out of the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PriorityParts {
    /// `d(T_i)` — earlier deadlines first.
    pub deadline: Slot,
    /// 0 when `b(T_i) = 1` (favored), 1 when `b(T_i) = 0`.
    pub b_rank: u8,
    /// Negated group deadline `−D(T_i)`: a later group deadline (a
    /// longer potential cascade) is favored, so it must compare
    /// *smaller*. Light tasks carry `−d(T_i)`, which ranks below every
    /// heavy `b = 1` contender at the same deadline.
    pub gd_rank: i64,
    /// Dense tie rank (see [`TieTable`]).
    pub tie_rank: u32,
}

impl PriorityParts {
    /// Builds the reference form from the same inputs as
    /// [`Priority::pack`].
    pub fn new(deadline: Slot, b: bool, group_deadline: Slot, tie_rank: u32) -> PriorityParts {
        PriorityParts {
            deadline,
            b_rank: if b { 0 } else { 1 },
            gd_rank: 0i64.saturating_sub(group_deadline),
            tie_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pack(deadline: Slot, b: bool, gd: Slot, tie_rank: u32) -> Priority {
        Priority::pack(deadline, b, gd, tie_rank)
    }

    #[test]
    fn earlier_deadline_wins() {
        let a = pack(5, false, 5, 0);
        let b = pack(6, true, 6, 0);
        assert!(a < b);
    }

    #[test]
    fn b_bit_breaks_deadline_ties() {
        let with_b = pack(5, true, 5, 9);
        let without_b = pack(5, false, 5, 0);
        assert!(with_b < without_b);
    }

    #[test]
    fn later_group_deadline_wins_among_b1() {
        let long_cascade = pack(5, true, 9, 7);
        let short_cascade = pack(5, true, 6, 0);
        assert!(long_cascade < short_cascade);
    }

    #[test]
    fn negative_slots_pack_in_order() {
        let early = pack(-8, false, -8, 0);
        let late = pack(-3, false, -3, 0);
        assert!(early < late);
        assert_eq!(early.deadline(), -8);
        assert_eq!(early.group_deadline(), -8);
    }

    #[test]
    fn fields_round_trip() {
        let p = pack(123_456, true, 123_460, 42);
        assert_eq!(p.deadline(), 123_456);
        assert!(p.b());
        assert_eq!(p.group_deadline(), 123_460);
        assert_eq!(p.tie_rank(), 42);
        let q = pack(-77, false, -70, u32::MAX);
        assert_eq!(q.deadline(), -77);
        assert!(!q.b());
        assert_eq!(q.group_deadline(), -70);
        assert_eq!(q.tie_rank(), u32::MAX);
    }

    #[test]
    fn ranked_tie_table() {
        let tb = TieBreak::Ranked(vec![(TaskId(7), 0), (TaskId(3), 1)]);
        let table = TieTable::new(&tb, 10);
        let favored = pack(5, true, 5, table.rank(TaskId(7)));
        let second = pack(5, true, 5, table.rank(TaskId(3)));
        let unranked = pack(5, true, 5, table.rank(TaskId(1)));
        assert!(favored < second);
        assert!(second < unranked);
    }

    #[test]
    fn task_id_desc_table() {
        let table = TieTable::new(&TieBreak::TaskIdDesc, 10);
        let hi = pack(5, true, 5, table.rank(TaskId(9)));
        let lo = pack(5, true, 5, table.rank(TaskId(1)));
        assert!(hi < lo);
    }

    #[test]
    fn unranked_tasks_order_by_id() {
        let tb = TieBreak::Ranked(vec![(TaskId(5), 0)]);
        let table = TieTable::new(&tb, 8);
        let a = pack(5, true, 5, table.rank(TaskId(1)));
        let b = pack(5, true, 5, table.rank(TaskId(2)));
        assert!(a < b);
    }

    #[test]
    fn tie_table_is_order_isomorphic_to_tie_break_keys() {
        // The dense ranks must order exactly as the raw keys do, for
        // every policy — including equality (keys are injective per
        // policy, so ranks must be too).
        let policies = [
            TieBreak::TaskIdAsc,
            TieBreak::TaskIdDesc,
            TieBreak::Ranked(vec![(TaskId(4), 2), (TaskId(0), 7), (TaskId(6), 2)]),
        ];
        for tb in policies {
            let n = 9u32;
            let table = TieTable::new(&tb, n);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        table.rank(TaskId(a)).cmp(&table.rank(TaskId(b))),
                        tb.key(TaskId(a)).cmp(&tb.key(TaskId(b))),
                        "policy {tb:?}, tasks {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_band_slots_saturate_in_order() {
        let far_past = pack(i64::MIN, false, 0, 0);
        let in_band = pack(0, false, 0, 0);
        let far_future = pack(i64::MAX, false, 0, 0);
        assert!(far_past < in_band);
        assert!(in_band < far_future);
    }

    /// One component of a priority: (deadline, b, group deadline, tie).
    fn arb_fields() -> impl Strategy<Value = (Slot, bool, Slot, u32)> {
        let slot = -SLOT_BOUND..SLOT_BOUND;
        let boolean = (0u8..2).prop_map(|x| x == 1);
        (slot.clone(), boolean, slot, 0u32..=u32::MAX)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4096))]

        /// The packed key orders exactly as the 4-field lexicographic
        /// struct over the full representable domain — including the
        /// `Equal` cases, so heap behavior is identical field-for-field.
        #[test]
        fn packed_order_matches_struct_order(x in arb_fields(), y in arb_fields()) {
            let packed_x = Priority::pack(x.0, x.1, x.2, x.3);
            let packed_y = Priority::pack(y.0, y.1, y.2, y.3);
            let parts_x = PriorityParts::new(x.0, x.1, x.2, x.3);
            let parts_y = PriorityParts::new(y.0, y.1, y.2, y.3);
            prop_assert_eq!(packed_x.cmp(&packed_y), parts_x.cmp(&parts_y));
        }

        /// Every field survives a pack/unpack round trip in-band.
        #[test]
        fn pack_round_trips(x in arb_fields()) {
            let p = Priority::pack(x.0, x.1, x.2, x.3);
            prop_assert_eq!(p.deadline(), x.0);
            prop_assert_eq!(p.b(), x.1);
            prop_assert_eq!(p.group_deadline(), x.2);
            prop_assert_eq!(p.tie_rank(), x.3);
        }
    }
}
