//! PD² subtask priority and tie-breaking.
//!
//! PD² prioritizes subtasks earliest-pseudo-deadline-first (EPDF) with
//! two tie-breaks. For light tasks (weight ≤ 1/2 — the class the
//! *reweighting* rules support) the b-bit alone suffices: among equal
//! deadlines, a subtask with `b`-bit 1 is favored over one with `b`-bit
//! 0 (its window overlaps its successor's, so postponing it squeezes the
//! successor). For heavy tasks the second tie-break applies: among
//! equal-deadline `b = 1` subtasks, the one with the later *group
//! deadline* (`pfair_core::window::group_deadline`) wins — it heads the
//! longer potential cascade of squeezed length-2 windows. Remaining ties
//! are broken "arbitrarily" (paper §2); the counterexample figures fix
//! specific arbitrary orders, so the resolution is pluggable via
//! [`TieBreak`].
//!
//! A released subtask's priority **never changes** (paper §3.2: `d(T_j)`
//! is fixed once `T_j` is released, even if the task reweights
//! afterwards) — which is what makes an ordinary binary heap with lazy
//! invalidation a correct ready queue and keeps reweighting at
//! `O(log N)` per task.

use pfair_core::task::TaskId;
use pfair_core::time::Slot;

/// Resolution of ties that remain after the deadline and b-bit
/// comparisons.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Favor the task with the smaller id (deterministic default).
    #[default]
    TaskIdAsc,
    /// Favor the task with the larger id.
    TaskIdDesc,
    /// Explicit rank per task id: smaller rank wins. Tasks absent from
    /// the table rank after all ranked tasks, by ascending id. This is
    /// how the paper's figures say "all ties are broken in favor of
    /// tasks from C".
    Ranked(Vec<(TaskId, u32)>),
}

impl TieBreak {
    /// The rank key this policy assigns to a task (smaller = favored).
    pub fn key(&self, task: TaskId) -> (u32, u32) {
        match self {
            TieBreak::TaskIdAsc => (0, task.0),
            TieBreak::TaskIdDesc => (0, u32::MAX - task.0),
            TieBreak::Ranked(table) => table
                .iter()
                .find(|(t, _)| *t == task)
                .map_or((u32::MAX, task.0), |(_, r)| (*r, task.0)),
        }
    }
}

/// A fully-resolved PD² priority. Smaller compares as *higher* priority;
/// the ready queue wraps it in `Reverse` for its max-heap.
///
/// Comparison order: earlier deadline, then `b = 1` over `b = 0`, then
/// — the heavy-task tie-break — the *later* group deadline, then the
/// configured arbitrary tie resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Priority {
    /// `d(T_i)` — earlier deadlines first.
    pub deadline: Slot,
    /// 0 when `b(T_i) = 1` (favored), 1 when `b(T_i) = 0`.
    pub b_rank: u8,
    /// Negated group deadline `−D(T_i)`: a later group deadline (a
    /// longer potential cascade) is favored, so it must compare
    /// *smaller*. Light tasks carry `−d(T_i)`, which ranks below every
    /// heavy `b = 1` contender at the same deadline.
    pub gd_rank: i64,
    /// Tie-break key from [`TieBreak::key`].
    pub tie: (u32, u32),
}

impl Priority {
    /// Builds the priority of a subtask with deadline `deadline`, b-bit
    /// `b`, and group deadline `group_deadline` (pass the subtask
    /// deadline itself for light tasks), owned by `task`, under
    /// tie-break policy `tb`.
    pub fn new(
        deadline: Slot,
        b: bool,
        group_deadline: Slot,
        task: TaskId,
        tb: &TieBreak,
    ) -> Priority {
        Priority {
            deadline,
            b_rank: if b { 0 } else { 1 },
            gd_rank: -group_deadline,
            tie: tb.key(task),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earlier_deadline_wins() {
        let tb = TieBreak::TaskIdAsc;
        let a = Priority::new(5, false, 5, TaskId(0), &tb);
        let b = Priority::new(6, true, 6, TaskId(0), &tb);
        assert!(a < b);
    }

    #[test]
    fn b_bit_breaks_deadline_ties() {
        let tb = TieBreak::TaskIdAsc;
        let with_b = Priority::new(5, true, 5, TaskId(9), &tb);
        let without_b = Priority::new(5, false, 5, TaskId(0), &tb);
        assert!(with_b < without_b);
    }

    #[test]
    fn ranked_tie_break() {
        let tb = TieBreak::Ranked(vec![(TaskId(7), 0), (TaskId(3), 1)]);
        let favored = Priority::new(5, true, 5, TaskId(7), &tb);
        let second = Priority::new(5, true, 5, TaskId(3), &tb);
        let unranked = Priority::new(5, true, 5, TaskId(1), &tb);
        assert!(favored < second);
        assert!(second < unranked);
    }

    #[test]
    fn task_id_desc() {
        let tb = TieBreak::TaskIdDesc;
        let hi = Priority::new(5, true, 5, TaskId(9), &tb);
        let lo = Priority::new(5, true, 5, TaskId(1), &tb);
        assert!(hi < lo);
    }

    #[test]
    fn unranked_tasks_order_by_id() {
        let tb = TieBreak::Ranked(vec![(TaskId(5), 0)]);
        let a = Priority::new(5, true, 5, TaskId(1), &tb);
        let b = Priority::new(5, true, 5, TaskId(2), &tb);
        assert!(a < b);
    }
}
