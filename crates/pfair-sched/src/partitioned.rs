//! Partitioned EDF baseline with task reweighting.
//!
//! The companion paper \[4\] (Block & Anderson, ICPADS'06) shows that
//! under *partitioning*, fine-grained reweighting is provably
//! impossible: a weight increase that no longer fits on the task's
//! processor forces either a repartition (migration, with its own
//! delay) or a denial, and either path costs non-constant drift. This
//! module gives that claim an executable baseline: first-fit-decreasing
//! partitioning with per-processor EDF, and reweighting that
//!
//! 1. applies on the same processor at the task's next job boundary when
//!    the new weight fits,
//! 2. migrates the task to the first processor with room when it does
//!    not (counted), and
//! 3. clamps the grant to the local spare capacity when no processor
//!    has room — the drift-producing denial.
//!
//! Substitution note (see DESIGN.md): \[4\]'s exact rules are not in the
//! supplied text; this is the natural reconstruction used as a
//! comparative baseline.

use crate::event::{Event, EventKind, Workload};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{slot_from_i128, Slot};

/// Outcome summary of a partitioned-EDF run.
#[derive(Clone, Debug)]
pub struct PartitionedRun {
    /// Per-task quanta scheduled.
    pub scheduled: Vec<u64>,
    /// Per-task `A(I_PS, T, 0, horizon)` (requested weights).
    pub ps_totals: Vec<Rational>,
    /// Deadline misses (task, deadline).
    pub misses: Vec<(TaskId, Slot)>,
    /// Reweights that forced a processor migration.
    pub migrations: u64,
    /// Reweights whose grant was clamped below the request.
    pub clamped: u64,
    /// Joins rejected because no processor had room.
    pub rejected_joins: u64,
}

impl PartitionedRun {
    /// Scheduled work as a percentage of `I_PS`, per task.
    #[allow(clippy::disallowed_types)]
    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
    pub fn pct_of_ideal(&self) -> Vec<f64> {
        self.scheduled
            .iter()
            .zip(&self.ps_totals)
            .map(|(s, ps)| {
                if ps.is_positive() {
                    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
                    100.0 * *s as f64 / ps.to_f64() // audit: allow(lossy-cast, u64→f64 for reporting only)
                } else {
                    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
                    100.0
                }
            })
            .collect()
    }
}

#[derive(Clone, Debug)]
struct PTask {
    active: bool,
    cpu: usize,
    weight: Rational,
    pending: Option<Rational>,
    remaining: i64,
    deadline: Slot,
    next_release: Slot,
    miss_reported: bool,
    ps_wt: Rational,
    ps_total: Rational,
    scheduled: u64,
}

/// Unit-cost sporadic job with period/deadline `round(1/w)` — the same
/// granularity normalization as the global-EDF baseline.
fn job_shape(weight: Rational) -> (i64, i64) {
    let num = weight.numer();
    let den = weight.denom();
    let p = slot_from_i128(((2 * den + num) / (2 * num)).max(1));
    (1, p)
}

/// Spare capacity on `cpu`, excluding task `skip`.
fn spare(tasks: &[PTask], cpu: usize, skip: usize) -> Rational {
    let used = tasks
        .iter()
        .enumerate()
        .filter(|(i, x)| x.active && x.cpu == cpu && *i != skip)
        .fold(Rational::ZERO, |acc, (_, x)| {
            acc + x.pending.unwrap_or(x.weight).max(x.weight)
        });
    Rational::ONE - used
}

/// Runs partitioned EDF (first-fit partitioning by join order, EDF per
/// processor) over the workload.
pub fn run_partitioned_edf(processors: u32, horizon: Slot, workload: &Workload) -> PartitionedRun {
    let m = processors as usize; // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)

    let n = workload.task_count() as usize; // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
    let mut tasks: Vec<PTask> = (0..n)
        .map(|_| PTask {
            active: false,
            cpu: 0,
            weight: Rational::ONE,
            pending: None,
            remaining: 0,
            deadline: 0,
            next_release: 0,
            miss_reported: false,
            ps_wt: Rational::ONE,
            ps_total: Rational::ZERO,
            scheduled: 0,
        })
        .collect();
    let events: Vec<Event> = workload.sorted_events();
    let mut next_event = 0usize;
    let mut out = PartitionedRun {
        scheduled: vec![0; n],
        ps_totals: vec![Rational::ZERO; n],
        misses: Vec::new(),
        migrations: 0,
        clamped: 0,
        rejected_joins: 0,
    };

    for t in 0..horizon {
        while next_event < events.len() && events[next_event].at == t {
            let ev = events[next_event];
            next_event += 1;
            let i = ev.task.idx();
            match ev.kind {
                EventKind::Join(w) => {
                    // First-fit placement.
                    let placed = (0..m).find(|&c| spare(&tasks, c, i) >= w.value());
                    match placed {
                        Some(cpu) => {
                            let task = &mut tasks[i];
                            task.active = true;
                            task.cpu = cpu;
                            task.weight = w.value();
                            task.ps_wt = w.value();
                            task.pending = None;
                            task.remaining = 0;
                            task.next_release = t;
                        }
                        None => out.rejected_joins += 1,
                    }
                }
                EventKind::Leave => tasks[i].active = false,
                EventKind::Delay(by) => tasks[i].next_release += i64::from(by),
                EventKind::Reweight(w) => {
                    if !tasks[i].active {
                        continue;
                    }
                    tasks[i].ps_wt = w.value();
                    let want = w.value();
                    let here = spare(&tasks, tasks[i].cpu, i);
                    if want <= here {
                        tasks[i].pending = Some(want);
                    } else if let Some(cpu) = (0..m).find(|&c| spare(&tasks, c, i) >= want) {
                        // Repartition: migrate at the next boundary.
                        tasks[i].cpu = cpu;
                        tasks[i].pending = Some(want);
                        out.migrations += 1;
                    } else {
                        // Nowhere fits: clamp to the best local grant.
                        let best = (0..m)
                            .map(|c| spare(&tasks, c, i))
                            .max()
                            .unwrap_or(Rational::ZERO);
                        let granted = want.min(best).max(tasks[i].weight.min(want));
                        tasks[i].pending = Some(granted);
                        out.clamped += 1;
                    }
                }
            }
        }

        // Releases.
        for task in tasks.iter_mut().filter(|x| x.active) {
            if task.remaining == 0 && task.next_release <= t {
                if let Some(w) = task.pending.take() {
                    task.weight = w;
                }
                let (e, p) = job_shape(task.weight);
                task.remaining = e;
                task.deadline = t + p;
                task.next_release = t + p;
                task.miss_reported = false;
            }
        }

        // Per-processor EDF: one quantum per processor.
        for cpu in 0..m {
            let pick = tasks
                .iter()
                .enumerate()
                .filter(|(_, x)| x.active && x.cpu == cpu && x.remaining > 0)
                .min_by_key(|(_, x)| x.deadline)
                .map(|(i, _)| i);
            if let Some(i) = pick {
                tasks[i].remaining -= 1;
                tasks[i].scheduled += 1;
            }
        }

        for (i, task) in tasks.iter_mut().enumerate() {
            if task.active && task.remaining > 0 && task.deadline == t + 1 && !task.miss_reported {
                out.misses.push((TaskId::from_index(i), task.deadline));
                task.miss_reported = true;
            }
            if task.active {
                task.ps_total += task.ps_wt;
            }
        }
    }

    for (i, task) in tasks.iter().enumerate() {
        out.scheduled[i] = task.scheduled;
        out.ps_totals[i] = task.ps_total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_partitions_and_schedules() {
        let mut w = Workload::new();
        for i in 0..4 {
            w.join(i, 0, 1, 2); // four 1/2 tasks on two CPUs: two per CPU
        }
        let run = run_partitioned_edf(2, 40, &w);
        assert!(run.misses.is_empty());
        assert_eq!(run.rejected_joins, 0);
        for s in &run.scheduled {
            assert_eq!(*s, 20);
        }
    }

    #[test]
    fn reweight_that_fits_locally_needs_no_migration() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 4);
        w.join(1, 0, 1, 4);
        w.reweight(0, 4, 1, 2);
        let run = run_partitioned_edf(2, 40, &w);
        assert_eq!(run.migrations, 0);
        assert_eq!(run.clamped, 0);
    }

    #[test]
    fn reweight_that_does_not_fit_migrates() {
        let mut w = Workload::new();
        // CPU 0 ends up with tasks 0 and 1 (1/2 each); CPU 1 empty.
        w.join(0, 0, 1, 2);
        w.join(1, 0, 1, 2);
        // Task 0 wants 3/4: no room on CPU 0 beside task 1 → migrate.
        w.reweight(0, 2, 3, 4);
        let run = run_partitioned_edf(2, 40, &w);
        assert_eq!(run.migrations, 1);
    }

    #[test]
    fn overload_clamps() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        w.join(1, 0, 1, 2);
        w.join(2, 0, 1, 2);
        w.join(3, 0, 1, 2);
        // Everyone full on 2 CPUs; task 0 wants 9/10 → clamp.
        w.reweight(0, 2, 9, 10);
        let run = run_partitioned_edf(2, 40, &w);
        assert_eq!(run.clamped, 1);
        assert_eq!(run.migrations, 0);
    }

    #[test]
    fn join_rejected_when_nothing_fits() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 1);
        w.join(1, 0, 1, 2);
        let run = run_partitioned_edf(1, 10, &w);
        assert_eq!(run.rejected_joins, 1);
    }
}
