//! Simulation results and post-hoc analysis.
//!
//! The engine produces a [`SimResult`] per run: per-task allocation
//! totals against the three ideal schedules, the drift history, deadline
//! misses, and overhead counters. With `record_history` enabled it also
//! retains the full subtask-level trace (windows, schedule slots, halts,
//! per-slot `I_SW` allocations and halted-allocation corrections), from
//! which per-slot `I_CSW` series and lag bounds can be reconstructed —
//! the quantities the paper's proofs constrain.

use crate::overhead::Counters;
use pfair_core::drift::DriftTrack;
use pfair_core::lag::lag_series;
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{slot_index, Slot};
use pfair_core::window::SubtaskWindow;
use pfair_json::{obj, FromJson, Json, JsonError, ToJson};

/// A recorded deadline miss (should be empty under PD²-OI, Theorem 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Miss {
    /// The task whose subtask missed.
    pub task: TaskId,
    /// The subtask index.
    pub index: u64,
    /// The missed deadline.
    pub deadline: Slot,
}

/// Full record of one subtask's life (history mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubtaskRecord {
    /// Subtask index `i` of `T_i`.
    pub index: u64,
    /// Its window (release, deadline, b-bit). Fixed at release.
    pub window: SubtaskWindow,
    /// The slot in which PD² scheduled it, if it ran.
    pub scheduled_at: Option<Slot>,
    /// `H(T_i)` if the subtask was halted.
    pub halted_at: Option<Slot>,
    /// `D(I_SW, T_i)` if it completed in the ideal schedule.
    pub isw_completion: Option<Slot>,
    /// True iff this subtask opened an era (`Id(T_i) = i`).
    pub era_first: bool,
}

/// Per-slot detail retained in history mode.
#[derive(Clone, Debug, Default)]
pub struct TaskHistory {
    /// Every subtask the task released, in index order.
    pub subtasks: Vec<SubtaskRecord>,
    /// Slots in which the task was scheduled.
    pub scheduled_slots: Vec<Slot>,
    /// `A(I_SW, T, t)` for each simulated slot `t` (while in system).
    pub isw_per_slot: Vec<Rational>,
    /// Allocations granted by `I_SW` to subtasks that later halted:
    /// `(slot, allocation)` pairs; subtracting them from `isw_per_slot`
    /// yields the per-slot `I_CSW` series.
    pub halted_corrections: Vec<(Slot, Rational)>,
}

impl ToJson for Miss {
    fn to_json(&self) -> Json {
        obj([
            ("task", self.task.to_json()),
            ("index", self.index.to_json()),
            ("deadline", self.deadline.to_json()),
        ])
    }
}

impl FromJson for Miss {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Miss {
            task: value.field("task")?,
            index: value.field("index")?,
            deadline: value.field("deadline")?,
        })
    }
}

impl ToJson for SubtaskRecord {
    fn to_json(&self) -> Json {
        obj([
            ("index", self.index.to_json()),
            ("window", self.window.to_json()),
            ("scheduled_at", self.scheduled_at.to_json()),
            ("halted_at", self.halted_at.to_json()),
            ("isw_completion", self.isw_completion.to_json()),
            ("era_first", self.era_first.to_json()),
        ])
    }
}

impl FromJson for SubtaskRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SubtaskRecord {
            index: value.field("index")?,
            window: value.field("window")?,
            scheduled_at: value.field("scheduled_at")?,
            halted_at: value.field("halted_at")?,
            isw_completion: value.field("isw_completion")?,
            era_first: value.field("era_first")?,
        })
    }
}

impl ToJson for TaskHistory {
    fn to_json(&self) -> Json {
        obj([
            ("subtasks", self.subtasks.to_json()),
            ("scheduled_slots", self.scheduled_slots.to_json()),
            ("isw_per_slot", self.isw_per_slot.to_json()),
            ("halted_corrections", self.halted_corrections.to_json()),
        ])
    }
}

impl FromJson for TaskHistory {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(TaskHistory {
            subtasks: value.field("subtasks")?,
            scheduled_slots: value.field("scheduled_slots")?,
            isw_per_slot: value.field("isw_per_slot")?,
            halted_corrections: value.field("halted_corrections")?,
        })
    }
}

impl TaskHistory {
    /// The per-slot `I_CSW` series: `I_SW` minus halted allocations.
    pub fn icsw_per_slot(&self) -> Vec<Rational> {
        let mut out = self.isw_per_slot.clone();
        for (slot, alloc) in &self.halted_corrections {
            let idx = slot_index(*slot);
            if idx < out.len() {
                out[idx] -= *alloc;
            }
        }
        out
    }

    /// Per-slot actual allocations (1 in scheduled slots) over `horizon`.
    pub fn actual_per_slot(&self, horizon: Slot) -> Vec<u32> {
        let mut out = vec![0u32; slot_index(horizon)];
        for s in &self.scheduled_slots {
            let idx = slot_index(*s);
            if idx < out.len() {
                out[idx] += 1;
            }
        }
        out
    }

    /// `lag(T, t)` against `I_CSW`, for `t = 0..=horizon`.
    pub fn lag_vs_icsw(&self, horizon: Slot) -> Vec<Rational> {
        let mut ideal = self.icsw_per_slot();
        ideal.resize(slot_index(horizon), Rational::ZERO);
        lag_series(&ideal, &self.actual_per_slot(horizon))
    }
}

/// Everything recorded about one task in a run.
#[derive(Clone, Debug)]
pub struct TaskResult {
    /// The task.
    pub id: TaskId,
    /// Quanta the PD² schedule granted it.
    pub scheduled_count: u64,
    /// `A(I_PS, T, 0, end)` — end is the leave time or the horizon.
    pub ps_total: Rational,
    /// `A(I_SW, T, 0, end)`.
    pub isw_total: Rational,
    /// `A(I_CSW, T, 0, end)`.
    pub icsw_total: Rational,
    /// Drift samples at each era boundary (Eqn (5)).
    pub drift: DriftTrack,
    /// Subtask-level trace, when history recording was enabled.
    pub history: Option<TaskHistory>,
}

impl TaskResult {
    /// Scheduled work as a percentage of the `I_PS` ideal (the metric of
    /// Fig. 11(b)/(d)). `None` when the ideal allocation is zero.
    #[allow(clippy::disallowed_types)]
    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
    pub fn pct_of_ideal(&self) -> Option<f64> {
        if self.ps_total.is_positive() {
            // audit: allow(float, report-only accuracy metric; never feeds scheduling)
            Some(100.0 * self.scheduled_count as f64 / self.ps_total.to_f64()) // audit: allow(lossy-cast, u64→f64 for reporting only)
        } else {
            None
        }
    }
}

/// The complete result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Number of processors `M`.
    pub processors: u32,
    /// Number of slots simulated.
    pub horizon: Slot,
    /// Per-task results, indexed by task id.
    pub tasks: Vec<TaskResult>,
    /// All deadline misses, in time order.
    pub misses: Vec<Miss>,
    /// Overhead counters for the run.
    pub counters: Counters,
}

impl ToJson for TaskResult {
    fn to_json(&self) -> Json {
        obj([
            ("id", self.id.to_json()),
            ("scheduled_count", self.scheduled_count.to_json()),
            ("ps_total", self.ps_total.to_json()),
            ("isw_total", self.isw_total.to_json()),
            ("icsw_total", self.icsw_total.to_json()),
            ("drift", self.drift.to_json()),
            ("history", self.history.to_json()),
        ])
    }
}

impl FromJson for TaskResult {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(TaskResult {
            id: value.field("id")?,
            scheduled_count: value.field("scheduled_count")?,
            ps_total: value.field("ps_total")?,
            isw_total: value.field("isw_total")?,
            icsw_total: value.field("icsw_total")?,
            drift: value.field("drift")?,
            history: value.field("history")?,
        })
    }
}

impl ToJson for SimResult {
    fn to_json(&self) -> Json {
        obj([
            ("processors", self.processors.to_json()),
            ("horizon", self.horizon.to_json()),
            ("tasks", self.tasks.to_json()),
            ("misses", self.misses.to_json()),
            ("counters", self.counters.to_json()),
        ])
    }
}

impl FromJson for SimResult {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SimResult {
            processors: value.field("processors")?,
            horizon: value.field("horizon")?,
            tasks: value.field("tasks")?,
            misses: value.field("misses")?,
            counters: value.field("counters")?,
        })
    }
}

impl SimResult {
    /// Maximum `|drift(T, t)|` over all tasks at time `t`
    /// (Fig. 11(a)/(c) plots this at `t = 1000`).
    pub fn max_abs_drift_at(&self, t: Slot) -> Rational {
        self.tasks
            .iter()
            .map(|tr| tr.drift.at(t).abs())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Largest per-event drift delta over all tasks (Theorem 5 bounds
    /// this by 2 under PD²-OI).
    pub fn max_abs_drift_delta(&self) -> Rational {
        self.tasks
            .iter()
            .map(|tr| tr.drift.max_abs_delta())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Mean over tasks of the percent-of-ideal metric (tasks with zero
    /// ideal allocation are excluded).
    #[allow(clippy::disallowed_types)]
    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
    pub fn mean_pct_of_ideal(&self) -> f64 {
        // audit: allow(float, report-only accuracy metric; never feeds scheduling)
        let vals: Vec<f64> = self
            .tasks
            .iter()
            .filter_map(TaskResult::pct_of_ideal)
            .collect();
        if vals.is_empty() {
            // audit: allow(float, report-only accuracy metric; never feeds scheduling)
            0.0
        } else {
            // audit: allow(float, report-only accuracy metric; never feeds scheduling)
            vals.iter().sum::<f64>() / vals.len() as f64 // audit: allow(lossy-cast, usize→f64 for reporting only)
        }
    }

    /// Result of a single task.
    pub fn task(&self, id: TaskId) -> &TaskResult {
        &self.tasks[id.idx()]
    }

    /// `true` iff no subtask missed a deadline.
    pub fn is_miss_free(&self) -> bool {
        self.misses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn icsw_subtracts_halted_corrections() {
        let h = TaskHistory {
            subtasks: vec![],
            scheduled_slots: vec![0, 2],
            isw_per_slot: vec![rat(1, 2), rat(1, 2), rat(1, 2)],
            halted_corrections: vec![(1, rat(1, 2))],
        };
        assert_eq!(
            h.icsw_per_slot(),
            vec![rat(1, 2), Rational::ZERO, rat(1, 2)]
        );
        assert_eq!(h.actual_per_slot(3), vec![1, 0, 1]);
    }

    #[test]
    fn pct_of_ideal() {
        let tr = TaskResult {
            id: TaskId(0),
            scheduled_count: 3,
            ps_total: rat(4, 1),
            isw_total: rat(3, 1),
            icsw_total: rat(3, 1),
            drift: DriftTrack::new(),
            history: None,
        };
        assert_eq!(tr.pct_of_ideal(), Some(75.0));
    }

    #[test]
    fn lag_series_from_history() {
        let h = TaskHistory {
            subtasks: vec![],
            scheduled_slots: vec![1],
            isw_per_slot: vec![rat(1, 2), rat(1, 2)],
            halted_corrections: vec![],
        };
        let lags = h.lag_vs_icsw(2);
        assert_eq!(lags, vec![Rational::ZERO, rat(1, 2), Rational::ZERO]);
    }
}

#[cfg(test)]
mod json_tests {
    use crate::engine::{simulate, SimConfig};
    use crate::event::Workload;
    use crate::trace::SimResult;
    use pfair_json::{FromJson, Json, ToJson};

    #[test]
    fn sim_result_roundtrips_through_json() {
        let mut w = Workload::new();
        w.join(0, 0, 3, 20);
        w.reweight(0, 7, 1, 2);
        let r = simulate(SimConfig::oi(2, 40).with_history(), &w);
        let json = r.to_json().to_string();
        let parsed = Json::parse(&json).expect("parse");
        let back = SimResult::from_json(&parsed).expect("deserialize");
        assert_eq!(back.horizon, r.horizon);
        assert_eq!(back.tasks[0].scheduled_count, r.tasks[0].scheduled_count);
        assert_eq!(back.tasks[0].ps_total, r.tasks[0].ps_total);
        assert_eq!(back.tasks[0].drift.samples(), r.tasks[0].drift.samples());
        assert_eq!(
            back.tasks[0].history.as_ref().map(|h| h.subtasks.len()),
            r.tasks[0].history.as_ref().map(|h| h.subtasks.len())
        );
        assert_eq!(back.counters, r.counters);
    }
}

#[cfg(test)]
mod more_trace_tests {
    use super::*;

    #[test]
    fn empty_result_edge_cases() {
        let r = SimResult {
            processors: 2,
            horizon: 10,
            tasks: vec![],
            misses: vec![],
            counters: Counters::default(),
        };
        assert!(r.is_miss_free());
        assert_eq!(r.mean_pct_of_ideal(), 0.0);
        assert_eq!(r.max_abs_drift_at(10), Rational::ZERO);
        assert_eq!(r.max_abs_drift_delta(), Rational::ZERO);
    }

    #[test]
    fn zero_ideal_task_is_excluded_from_pct() {
        let tr = TaskResult {
            id: TaskId(0),
            scheduled_count: 0,
            ps_total: Rational::ZERO,
            isw_total: Rational::ZERO,
            icsw_total: Rational::ZERO,
            drift: DriftTrack::new(),
            history: None,
        };
        assert_eq!(tr.pct_of_ideal(), None);
    }
}
