//! Simulation results and post-hoc analysis.
//!
//! The engine produces a [`SimResult`] per run: per-task allocation
//! totals against the three ideal schedules, the drift history, deadline
//! misses, and overhead counters. With `record_history` enabled it also
//! retains the full subtask-level trace (windows, schedule slots, halts,
//! per-slot `I_SW` allocations and halted-allocation corrections), from
//! which per-slot `I_CSW` series and lag bounds can be reconstructed —
//! the quantities the paper's proofs constrain.

use crate::overhead::Counters;
use pfair_core::drift::DriftTrack;
use pfair_core::lag::lag_series;
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_core::window::SubtaskWindow;

/// A recorded deadline miss (should be empty under PD²-OI, Theorem 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Miss {
    /// The task whose subtask missed.
    pub task: TaskId,
    /// The subtask index.
    pub index: u64,
    /// The missed deadline.
    pub deadline: Slot,
}

/// Full record of one subtask's life (history mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SubtaskRecord {
    /// Subtask index `i` of `T_i`.
    pub index: u64,
    /// Its window (release, deadline, b-bit). Fixed at release.
    pub window: SubtaskWindow,
    /// The slot in which PD² scheduled it, if it ran.
    pub scheduled_at: Option<Slot>,
    /// `H(T_i)` if the subtask was halted.
    pub halted_at: Option<Slot>,
    /// `D(I_SW, T_i)` if it completed in the ideal schedule.
    pub isw_completion: Option<Slot>,
    /// True iff this subtask opened an era (`Id(T_i) = i`).
    pub era_first: bool,
}

/// Per-slot detail retained in history mode.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskHistory {
    /// Every subtask the task released, in index order.
    pub subtasks: Vec<SubtaskRecord>,
    /// Slots in which the task was scheduled.
    pub scheduled_slots: Vec<Slot>,
    /// `A(I_SW, T, t)` for each simulated slot `t` (while in system).
    pub isw_per_slot: Vec<Rational>,
    /// Allocations granted by `I_SW` to subtasks that later halted:
    /// `(slot, allocation)` pairs; subtracting them from `isw_per_slot`
    /// yields the per-slot `I_CSW` series.
    pub halted_corrections: Vec<(Slot, Rational)>,
}

impl TaskHistory {
    /// The per-slot `I_CSW` series: `I_SW` minus halted allocations.
    pub fn icsw_per_slot(&self) -> Vec<Rational> {
        let mut out = self.isw_per_slot.clone();
        for (slot, alloc) in &self.halted_corrections {
            let idx = *slot as usize;
            if idx < out.len() {
                out[idx] -= *alloc;
            }
        }
        out
    }

    /// Per-slot actual allocations (1 in scheduled slots) over `horizon`.
    pub fn actual_per_slot(&self, horizon: Slot) -> Vec<u32> {
        let mut out = vec![0u32; horizon as usize];
        for s in &self.scheduled_slots {
            if (*s as usize) < out.len() {
                out[*s as usize] += 1;
            }
        }
        out
    }

    /// `lag(T, t)` against `I_CSW`, for `t = 0..=horizon`.
    pub fn lag_vs_icsw(&self, horizon: Slot) -> Vec<Rational> {
        let mut ideal = self.icsw_per_slot();
        ideal.resize(horizon as usize, Rational::ZERO);
        lag_series(&ideal, &self.actual_per_slot(horizon))
    }
}

/// Everything recorded about one task in a run.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskResult {
    /// The task.
    pub id: TaskId,
    /// Quanta the PD² schedule granted it.
    pub scheduled_count: u64,
    /// `A(I_PS, T, 0, end)` — end is the leave time or the horizon.
    pub ps_total: Rational,
    /// `A(I_SW, T, 0, end)`.
    pub isw_total: Rational,
    /// `A(I_CSW, T, 0, end)`.
    pub icsw_total: Rational,
    /// Drift samples at each era boundary (Eqn (5)).
    pub drift: DriftTrack,
    /// Subtask-level trace, when history recording was enabled.
    pub history: Option<TaskHistory>,
}

impl TaskResult {
    /// Scheduled work as a percentage of the `I_PS` ideal (the metric of
    /// Fig. 11(b)/(d)). `None` when the ideal allocation is zero.
    pub fn pct_of_ideal(&self) -> Option<f64> {
        if self.ps_total.is_positive() {
            Some(100.0 * self.scheduled_count as f64 / self.ps_total.to_f64())
        } else {
            None
        }
    }
}

/// The complete result of one simulation run.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimResult {
    /// Number of processors `M`.
    pub processors: u32,
    /// Number of slots simulated.
    pub horizon: Slot,
    /// Per-task results, indexed by task id.
    pub tasks: Vec<TaskResult>,
    /// All deadline misses, in time order.
    pub misses: Vec<Miss>,
    /// Overhead counters for the run.
    pub counters: Counters,
}

impl SimResult {
    /// Maximum `|drift(T, t)|` over all tasks at time `t`
    /// (Fig. 11(a)/(c) plots this at `t = 1000`).
    pub fn max_abs_drift_at(&self, t: Slot) -> Rational {
        self.tasks
            .iter()
            .map(|tr| tr.drift.at(t).abs())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Largest per-event drift delta over all tasks (Theorem 5 bounds
    /// this by 2 under PD²-OI).
    pub fn max_abs_drift_delta(&self) -> Rational {
        self.tasks
            .iter()
            .map(|tr| tr.drift.max_abs_delta())
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Mean over tasks of the percent-of-ideal metric (tasks with zero
    /// ideal allocation are excluded).
    pub fn mean_pct_of_ideal(&self) -> f64 {
        let vals: Vec<f64> = self.tasks.iter().filter_map(|t| t.pct_of_ideal()).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Result of a single task.
    pub fn task(&self, id: TaskId) -> &TaskResult {
        &self.tasks[id.idx()]
    }

    /// `true` iff no subtask missed a deadline.
    pub fn is_miss_free(&self) -> bool {
        self.misses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn icsw_subtracts_halted_corrections() {
        let h = TaskHistory {
            subtasks: vec![],
            scheduled_slots: vec![0, 2],
            isw_per_slot: vec![rat(1, 2), rat(1, 2), rat(1, 2)],
            halted_corrections: vec![(1, rat(1, 2))],
        };
        assert_eq!(
            h.icsw_per_slot(),
            vec![rat(1, 2), Rational::ZERO, rat(1, 2)]
        );
        assert_eq!(h.actual_per_slot(3), vec![1, 0, 1]);
    }

    #[test]
    fn pct_of_ideal() {
        let tr = TaskResult {
            id: TaskId(0),
            scheduled_count: 3,
            ps_total: rat(4, 1),
            isw_total: rat(3, 1),
            icsw_total: rat(3, 1),
            drift: DriftTrack::new(),
            history: None,
        };
        assert_eq!(tr.pct_of_ideal(), Some(75.0));
    }

    #[test]
    fn lag_series_from_history() {
        let h = TaskHistory {
            subtasks: vec![],
            scheduled_slots: vec![1],
            isw_per_slot: vec![rat(1, 2), rat(1, 2)],
            halted_corrections: vec![],
        };
        let lags = h.lag_vs_icsw(2);
        assert_eq!(lags, vec![Rational::ZERO, rat(1, 2), Rational::ZERO]);
    }
}

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use crate::engine::{simulate, SimConfig};
    use crate::event::Workload;
    use crate::trace::SimResult;

    #[test]
    fn sim_result_roundtrips_through_json() {
        let mut w = Workload::new();
        w.join(0, 0, 3, 20);
        w.reweight(0, 7, 1, 2);
        let r = simulate(SimConfig::oi(2, 40).with_history(), &w);
        let json = serde_json::to_string(&r).expect("serialize");
        let back: SimResult = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.horizon, r.horizon);
        assert_eq!(back.tasks[0].scheduled_count, r.tasks[0].scheduled_count);
        assert_eq!(back.tasks[0].ps_total, r.tasks[0].ps_total);
        assert_eq!(back.tasks[0].drift.samples(), r.tasks[0].drift.samples());
        assert_eq!(back.counters, r.counters);
    }
}

#[cfg(test)]
mod more_trace_tests {
    use super::*;

    #[test]
    fn empty_result_edge_cases() {
        let r = SimResult {
            processors: 2,
            horizon: 10,
            tasks: vec![],
            misses: vec![],
            counters: Counters::default(),
        };
        assert!(r.is_miss_free());
        assert_eq!(r.mean_pct_of_ideal(), 0.0);
        assert_eq!(r.max_abs_drift_at(10), Rational::ZERO);
        assert_eq!(r.max_abs_drift_delta(), Rational::ZERO);
    }

    #[test]
    fn zero_ideal_task_is_excluded_from_pct() {
        let tr = TaskResult {
            id: TaskId(0),
            scheduled_count: 0,
            ps_total: Rational::ZERO,
            isw_total: Rational::ZERO,
            icsw_total: Rational::ZERO,
            drift: DriftTrack::new(),
            history: None,
        };
        assert_eq!(tr.pct_of_ideal(), None);
    }
}
