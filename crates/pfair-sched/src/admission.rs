//! Admission control: keeping condition (W) true by policing requests.
//!
//! Theorem 2's guarantee — no subtask misses its deadline under PD²-OI —
//! holds *provided* `Σ_T swt(T, t) ≤ M` at all times (condition (W)),
//! and the paper notes that "(W) can be satisfied by policing
//! weight-change requests". This module is that policing layer.
//!
//! Granting a request must account not only for currently enacted
//! weights but for weights the system is already *committed* to: a task
//! whose increase is pending will soon raise its scheduling weight, so
//! its commitment is the pending target, not the current `swt`. The
//! controller therefore tracks `committed(T) = max(swt(T), pending
//! target)` and grants an increase only up to `M − Σ committed`.

use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::weight::Weight;

/// How reweighting/join requests that would overload the system are
/// handled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Trust the workload: requests are granted verbatim. Use only for
    /// workloads constructed to satisfy (W) (the paper's counterexample
    /// figures are such workloads).
    Trusting,
    /// Police requests: an increase is clamped so that the sum of
    /// committed weights never exceeds `M`; a join that does not fit is
    /// clamped likewise (and rejected outright if nothing is available).
    #[default]
    Police,
}

impl pfair_json::ToJson for AdmissionPolicy {
    fn to_json(&self) -> pfair_json::Json {
        match self {
            AdmissionPolicy::Trusting => "trusting".to_string().to_json(),
            AdmissionPolicy::Police => "police".to_string().to_json(),
        }
    }
}

impl pfair_json::FromJson for AdmissionPolicy {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let kind = String::from_json(value)?;
        match kind.as_str() {
            "trusting" => Ok(AdmissionPolicy::Trusting),
            "police" => Ok(AdmissionPolicy::Police),
            other => Err(pfair_json::JsonError::new(format!(
                "unknown admission policy `{other}`"
            ))),
        }
    }
}

/// Tracks per-task weight commitments and enforces (W).
#[derive(Clone, Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    capacity: Rational,
    committed: Vec<Rational>, // by task id; ZERO = not in system
    /// Running `Σ committed`, maintained at every table write so
    /// admission decisions are O(1) instead of an O(n) fold — at 10⁵–10⁶
    /// tasks the fold dominated every join. Exact by construction: the
    /// sum is updated with the same exact-rational arithmetic the fold
    /// would use.
    total: Rational,
}

impl AdmissionController {
    /// A controller for `processors` processors and task ids `0..tasks`.
    pub fn new(policy: AdmissionPolicy, processors: u32, tasks: u32) -> AdmissionController {
        AdmissionController {
            policy,
            capacity: Rational::from_int(i128::from(processors)),
            // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
            committed: vec![Rational::ZERO; tasks as usize],
            total: Rational::ZERO,
        }
    }

    /// Grows the commitment table to cover task ids `0..tasks` (no-op
    /// when already that big). New slots carry zero commitment, so the
    /// running total is unchanged.
    pub fn ensure_tasks(&mut self, tasks: u32) {
        // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        let tasks = tasks as usize;
        if tasks > self.committed.len() {
            self.committed.resize(tasks, Rational::ZERO);
        }
    }

    /// Total committed weight (the incrementally maintained `Σ`).
    pub fn total_committed(&self) -> Rational {
        self.total
    }

    /// Capacity not yet committed.
    pub fn available(&self) -> Rational {
        self.capacity - self.total
    }

    /// Writes one commitment slot, keeping the running total exact.
    fn set_committed(&mut self, task: TaskId, value: Rational) {
        let slot = &mut self.committed[task.idx()]; // audit: allow(panic-reach, committed table is sized to the task-set, idx is validated at admission)
        self.total = self.total - *slot + value;
        *slot = value;
    }

    /// Processes a request to set task `task`'s weight to `want`
    /// (a join or a reweight; for a join the previous commitment is
    /// zero). Returns the granted weight, or `None` if nothing can be
    /// granted (join with zero available capacity under policing).
    ///
    /// Decreases are always granted in full, but the *commitment* is
    /// **not** lowered yet: the scheduling weight only drops when the
    /// decrease is *enacted* (rule I(ii) waits for `D(I_SW, T_j) + b`),
    /// and condition (W) constrains the sum of scheduling weights at
    /// every instant — releasing the capacity early would let another
    /// task claim it while the old weight is still being scheduled.
    /// [`AdmissionController::note_enacted`] performs the deferred
    /// reduction.
    pub fn request(&mut self, task: TaskId, want: Weight) -> Option<Weight> {
        let cur = self.committed[task.idx()]; // audit: allow(panic-reach, committed table is sized to the task-set, idx is validated at admission)
        let want_v: Rational = want.value();
        let granted = match self.policy {
            AdmissionPolicy::Trusting => want_v,
            AdmissionPolicy::Police => {
                if want_v <= cur {
                    want_v
                } else {
                    let headroom = self.available();
                    let granted = (cur + headroom).min(want_v);
                    if !granted.is_positive() {
                        return None;
                    }
                    granted
                }
            }
        };
        // Commitments only rise at request time; they fall at enactment.
        self.set_committed(task, cur.max(granted));
        Weight::try_new(granted).ok()
    }

    /// Releases a leaving task's commitment. Under PD²-LJ semantics the
    /// capacity only truly frees at the leave time; callers invoke this
    /// at that point.
    pub fn release(&mut self, task: TaskId) {
        self.set_committed(task, Rational::ZERO);
    }

    /// Records an enacted weight change: the task's scheduling weight is
    /// now exactly `enacted`, so the commitment settles there — in
    /// particular, this is where a decrease's capacity finally frees.
    pub fn note_enacted(&mut self, task: TaskId, enacted: Weight) {
        self.set_committed(task, enacted.value());
    }

    /// The per-task commitment table, for persistence. Policy and
    /// capacity are derived from the simulation config at restore time;
    /// the commitments are the only mutable state.
    pub fn committed_parts(&self) -> &[Rational] {
        &self.committed
    }

    /// Rebuilds a controller from a persisted commitment table.
    pub fn from_parts(
        policy: AdmissionPolicy,
        processors: u32,
        committed: Vec<Rational>,
    ) -> AdmissionController {
        let total = committed.iter().fold(Rational::ZERO, |acc, c| acc + *c);
        AdmissionController {
            policy,
            capacity: Rational::from_int(i128::from(processors)),
            committed,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    fn w(n: i128, d: i128) -> Weight {
        Weight::new(rat(n, d))
    }

    #[test]
    fn policing_clamps_increases_to_headroom() {
        let mut ac = AdmissionController::new(AdmissionPolicy::Police, 1, 2);
        assert_eq!(ac.request(TaskId(0), w(1, 2)), Some(w(1, 2)));
        assert_eq!(ac.request(TaskId(1), w(1, 2)), Some(w(1, 2)));
        // System full; an increase is clamped to current commitment.
        assert_eq!(ac.request(TaskId(0), w(3, 4)), Some(w(1, 2)));
        // A decrease is granted in full, but its capacity stays
        // committed until the decrease is *enacted* — the old scheduling
        // weight is still running (condition (W) is instantaneous).
        assert_eq!(ac.request(TaskId(1), w(1, 4)), Some(w(1, 4)));
        assert_eq!(ac.available(), Rational::ZERO);
        assert_eq!(ac.request(TaskId(0), w(3, 4)), Some(w(1, 2)));
        // Enactment frees it …
        ac.note_enacted(TaskId(1), w(1, 4));
        // … and the next increase may claim it.
        assert_eq!(ac.request(TaskId(0), w(3, 4)), Some(w(3, 4)));
        assert_eq!(ac.available(), Rational::ZERO);
    }

    #[test]
    fn join_with_no_capacity_is_rejected() {
        let mut ac = AdmissionController::new(AdmissionPolicy::Police, 1, 2);
        assert_eq!(ac.request(TaskId(0), w(1, 1)), Some(w(1, 1)));
        assert_eq!(ac.request(TaskId(1), w(1, 10)), None);
    }

    #[test]
    fn trusting_grants_verbatim() {
        let mut ac = AdmissionController::new(AdmissionPolicy::Trusting, 1, 2);
        assert_eq!(ac.request(TaskId(0), w(1, 1)), Some(w(1, 1)));
        assert_eq!(ac.request(TaskId(1), w(1, 1)), Some(w(1, 1)));
        // Over-committed — Trusting does not police.
        assert!(ac.available().is_negative());
    }

    #[test]
    fn leave_frees_commitment() {
        let mut ac = AdmissionController::new(AdmissionPolicy::Police, 1, 2);
        ac.request(TaskId(0), w(1, 1));
        ac.release(TaskId(0));
        assert_eq!(ac.request(TaskId(1), w(1, 2)), Some(w(1, 2)));
    }
}
