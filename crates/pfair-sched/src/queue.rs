//! The PD² ready queue: a binary heap of released subtasks with lazy
//! invalidation.
//!
//! Because a released subtask's priority is immutable, the queue never
//! needs decrease-key; reweighting events that *halt* a subtask simply
//! leave a stale entry behind, which is skipped (and counted) when
//! popped. Each push/pop is `O(log N)`, matching the paper's stated
//! reweighting cost of `O(log N)` per task.

use crate::overhead::Counters;
use crate::priority::Priority;
use pfair_core::task::TaskId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Stale-entry growth factor the compaction threshold allows over the
/// live-entry bound. At most one live entry per task is ever enqueued
/// (a task's head, pushed at release or promotion), so a factor of 2
/// means compaction fires only once stale entries can outnumber live
/// ones — below that, the `O(len)` sweep would cost more than the sift
/// inflation it removes.
pub const COMPACT_GROWTH_FACTOR: usize = 2;

/// Flat slack added to the compaction threshold so tiny task sets
/// (where `2·tasks` is a handful of entries) don't compact on every
/// few pushes. 64 entries keep the heap within one cache page's worth
/// of `QueueEntry`s while letting small systems run sweep-free.
pub const COMPACT_SLACK: usize = 64;

/// The queue length above which the engine compacts, given the number
/// of tasks bounding the live-entry count.
///
/// Rationale: refilling from `live_bound` back past the threshold takes
/// at least `(COMPACT_GROWTH_FACTOR − 1)·live_bound + COMPACT_SLACK`
/// pushes, which pays for the `O(len)` sweep — amortized constant work
/// per push, while the heap stays `O(tasks)` at slot boundaries.
// audit: prove(overflow-bounds)
// audit: assume(live_bound in 0..=4294967296)
pub fn compaction_threshold(live_bound: usize) -> usize {
    COMPACT_GROWTH_FACTOR * live_bound + COMPACT_SLACK
}

/// An entry in the ready queue: one released, schedulable subtask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueueEntry {
    /// PD² priority (orders the heap).
    pub priority: Priority,
    /// Owning task.
    pub task: TaskId,
    /// Subtask index `i` of `T_i`.
    pub index: u64,
}

/// Min-priority ready queue with lazy invalidation.
#[derive(Clone, Debug, Default)]
pub struct ReadyQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> ReadyQueue {
        ReadyQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of entries, including stale ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no entries remain (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pushes a subtask that has just become its task's schedulable head.
    pub fn push(&mut self, entry: QueueEntry, counters: &mut Counters) {
        counters.heap_pushes += 1;
        self.heap.push(Reverse(entry));
    }

    /// Pops the highest-priority entry for which `is_live` holds,
    /// discarding (and counting) stale entries on the way. Returns `None`
    /// when the queue runs out.
    pub fn pop_live(
        &mut self,
        counters: &mut Counters,
        is_live: impl FnMut(&QueueEntry) -> bool,
    ) -> Option<QueueEntry> {
        self.pop_live_traced(counters, is_live, |_| {})
    }

    /// [`ReadyQueue::pop_live`] with an observer: `on_stale` is invoked
    /// for each stale entry discarded on the way to a live one, so a
    /// probe can attribute the deferred queue cost back to the
    /// reweighting event whose halt stranded the entry.
    pub fn pop_live_traced(
        &mut self,
        counters: &mut Counters,
        mut is_live: impl FnMut(&QueueEntry) -> bool,
        mut on_stale: impl FnMut(&QueueEntry),
    ) -> Option<QueueEntry> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            counters.heap_pops += 1;
            if is_live(&entry) {
                return Some(entry);
            }
            counters.stale_pops += 1;
            on_stale(&entry);
        }
        None
    }

    /// Drops every stale entry in one pass, rebuilding the heap from
    /// the surviving live entries.
    ///
    /// Lazy invalidation leaves halted/withdrawn subtasks in the heap
    /// until they bubble to the top; under sustained reweighting (every
    /// PD²-LJ event withdraws a subtask) low-priority stale entries can
    /// outnumber live ones and keep sift costs inflated for the rest of
    /// the run. Compaction is `O(len)` plus one `O(live)` heapify, so
    /// callers should trigger it only when stale entries dominate (the
    /// engine compacts when `len` exceeds a multiple of the live-task
    /// bound, keeping the amortized per-slot cost constant). Removals
    /// are tallied in [`Counters::compacted_stale`], not `stale_pops` —
    /// they never reach a pop.
    pub fn compact(&mut self, counters: &mut Counters, is_live: impl FnMut(&QueueEntry) -> bool) {
        self.compact_traced(counters, is_live, |_| {});
    }

    /// [`ReadyQueue::compact`] with an observer: `on_drop` is invoked
    /// for each stale entry the sweep removes (these never reach a
    /// pop, so [`ReadyQueue::pop_live_traced`]'s observer would miss
    /// them).
    pub fn compact_traced(
        &mut self,
        counters: &mut Counters,
        mut is_live: impl FnMut(&QueueEntry) -> bool,
        mut on_drop: impl FnMut(&QueueEntry),
    ) {
        let before = self.heap.len();
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|Reverse(e)| {
            let live = is_live(e);
            if !live {
                on_drop(e);
            }
            live
        });
        counters.compactions += 1;
        counters.compacted_stale += (before - entries.len()) as u64; // audit: allow(lossy-cast, usize→u64 is lossless on the supported targets)
        self.heap = BinaryHeap::from(entries);
    }

    /// Drops every entry (used when a scheduler is reset between runs).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Canonical persist projection: every entry (stale ones included —
    /// they carry observable cost via stale-pop counters) in ascending
    /// priority order. `QueueEntry`'s `Ord` is total over all fields,
    /// so compare-equal entries are bit-identical and the sorted vector
    /// is a canonical encoding of the heap's observable pop sequence
    /// regardless of its internal array layout.
    pub fn entries_sorted(&self) -> Vec<QueueEntry> {
        let mut entries: Vec<QueueEntry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        entries
    }

    /// Rebuilds a queue from a [`ReadyQueue::entries_sorted`]
    /// projection without routing through [`ReadyQueue::push`] — the
    /// restored engine's `heap_pushes` counter is carried over verbatim
    /// by the snapshot, so re-counting these entries would double them.
    pub fn from_entries(entries: Vec<QueueEntry>) -> ReadyQueue {
        ReadyQueue {
            heap: entries.into_iter().map(Reverse).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(deadline: i64, b: bool, task: u32, index: u64) -> QueueEntry {
        QueueEntry {
            // Tie rank = task id, matching the TaskIdAsc policy's table.
            priority: Priority::pack(deadline, b, deadline, task),
            task: TaskId(task),
            index,
        }
    }

    #[test]
    fn pops_in_pd2_order() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(7, false, 0, 1), &mut c);
        q.push(entry(5, false, 1, 1), &mut c);
        q.push(entry(5, true, 2, 1), &mut c);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.task.0)
            .collect();
        assert_eq!(order, vec![2, 1, 0]); // dl 5 b=1, dl 5 b=0, dl 7
        assert_eq!(c.heap_pushes, 3);
        assert_eq!(c.heap_pops, 3);
        assert_eq!(c.stale_pops, 0);
    }

    #[test]
    fn lazy_invalidation_skips_and_counts_stale() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(3, true, 0, 1), &mut c);
        q.push(entry(4, true, 1, 1), &mut c);
        // Task 0's subtask was halted: treat it as stale.
        let got = q.pop_live(&mut c, |e| e.task != TaskId(0));
        assert_eq!(got.unwrap().task, TaskId(1));
        assert_eq!(c.stale_pops, 1);
        assert!(q.pop_live(&mut c, |_| true).is_none());
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        assert!(q.pop_live(&mut c, |_| true).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn compact_drops_only_stale_entries_and_counts_them() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        for i in 0..100u64 {
            q.push(entry(i64::try_from(i).unwrap() + 3, false, 0, i), &mut c);
        }
        // Everything with an odd index is stale.
        q.compact(&mut c, |e| e.index % 2 == 0);
        assert_eq!(q.len(), 50);
        assert_eq!(c.compactions, 1);
        assert_eq!(c.compacted_stale, 50);
        // Survivors still pop in priority order, with no stale pops.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.index)
            .collect();
        assert_eq!(order, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(c.stale_pops, 0);
    }

    #[test]
    fn compact_on_all_live_queue_is_a_noop() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(5, false, 0, 1), &mut c);
        q.push(entry(6, false, 1, 1), &mut c);
        q.compact(&mut c, |_| true);
        assert_eq!(q.len(), 2);
        assert_eq!(c.compacted_stale, 0);
    }

    /// Compaction must not reorder survivors that share a priority key:
    /// the heap's order among equal keys is fixed by `QueueEntry`'s full
    /// `Ord` (priority, then task, then index), so a rebuilt heap pops
    /// the identical sequence the unswept heap would have.
    #[test]
    fn compaction_never_reorders_equal_key_survivors() {
        let mut swept = ReadyQueue::new();
        let mut c = Counters::default();
        // Three equal-priority groups; interleave pushes across groups
        // and sprinkle stale entries (odd indices) through each.
        for index in 0..24u64 {
            for (task, deadline) in [(3u32, 5i64), (1, 5), (2, 9)] {
                swept.push(
                    QueueEntry {
                        priority: Priority::pack(deadline, true, deadline, 7),
                        task: TaskId(task),
                        index,
                    },
                    &mut c,
                );
            }
        }
        let mut unswept = swept.clone();
        let is_live = |e: &QueueEntry| e.index.is_multiple_of(2);
        swept.compact(&mut c, is_live);
        let mut c2 = Counters::default();
        let pops = |q: &mut ReadyQueue, c: &mut Counters| -> Vec<(u32, u64)> {
            std::iter::from_fn(|| q.pop_live(c, is_live))
                .map(|e| (e.task.0, e.index))
                .collect()
        };
        assert_eq!(pops(&mut swept, &mut c), pops(&mut unswept, &mut c2));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::overhead::Counters;
    use crate::priority::Priority;
    use pfair_core::task::TaskId;

    #[test]
    fn clear_empties_the_queue() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        for i in 0..5u64 {
            q.push(
                QueueEntry {
                    priority: Priority::pack(5, true, 5, 0),
                    task: TaskId(0),
                    index: i + 1,
                },
                &mut c,
            );
        }
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop_live(&mut c, |_| true).is_none());
    }

    #[test]
    fn group_deadline_orders_equal_deadline_b1_entries() {
        // Among equal-deadline b=1 entries, the later group deadline wins.
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(
            QueueEntry {
                priority: Priority::pack(5, true, 6, 0),
                task: TaskId(0),
                index: 1,
            },
            &mut c,
        );
        q.push(
            QueueEntry {
                priority: Priority::pack(5, true, 9, 1),
                task: TaskId(1),
                index: 1,
            },
            &mut c,
        );
        let first = q.pop_live(&mut c, |_| true).unwrap();
        assert_eq!(first.task, TaskId(1), "later group deadline is favored");
    }
}
