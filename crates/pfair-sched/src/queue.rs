//! The PD² ready queue: deadline-bucketed radix structure with lazy
//! invalidation.
//!
//! Because a released subtask's priority is immutable, the queue never
//! needs decrease-key; reweighting events that *halt* a subtask simply
//! leave a stale entry behind, which is skipped (and counted) when
//! popped.
//!
//! ## Radix layout
//!
//! PD² priorities order first on the deadline; the packed key's lower
//! fields (b-bit, group deadline, tie rank) only break ties *within*
//! one deadline. [`ReadyQueue`] therefore buckets entries by the
//! deadline field of the packed key over a moving 512-slot window —
//! the same window/occupancy-bitmap idiom as
//! [`CalendarRing`](crate::calendar::CalendarRing) — with a word-scanned
//! bitmap locating the minimum bucket. Within the window each bucket
//! holds exactly one deadline, so a small per-bucket min-heap on the
//! full entry order pops the true minimum:
//!
//! * `push` is O(1) amortized: one per-bucket heap sift (over the
//!   handful of equal-deadline entries) plus a bitmap bit, with the
//!   rare below-window push paying an O(len) rebase.
//! * `pop` is near-O(1) amortized: a masked word scan that resumes at
//!   the last popped deadline (pops between pushes are non-decreasing)
//!   plus one per-bucket heap pop.
//!
//! Deadlines more than 512 slots out ride an overflow min-heap (they
//! exceed every in-window deadline, so the minimum always lives in the
//! window while it is non-empty). When the window drains, pops come
//! straight off the overflow root and the window re-anchors just below
//! the remaining overflow minimum — entries never migrate between the
//! two structures on the pop path.
//!
//! The pop sequence is bit-identical to the previous binary-heap
//! implementation, which is retained as [`HeapQueue`] — the reference
//! for differential tests and the `queue/{heap,radix}` benchmark pair.

use crate::overhead::Counters;
use crate::priority::Priority;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Stale-entry growth factor the compaction threshold allows over the
/// live-entry bound. At most one live entry per task is ever enqueued
/// (a task's head, pushed at release or promotion), so a factor of 2
/// means compaction fires only once stale entries can outnumber live
/// ones — below that, the `O(len)` sweep would cost more than the sift
/// inflation it removes.
pub const COMPACT_GROWTH_FACTOR: usize = 2;

/// Flat slack added to the compaction threshold so tiny task sets
/// (where `2·tasks` is a handful of entries) don't compact on every
/// few pushes. 64 entries keep the heap within one cache page's worth
/// of `QueueEntry`s while letting small systems run sweep-free.
pub const COMPACT_SLACK: usize = 64;

/// The queue length above which the engine compacts, given the number
/// of tasks bounding the live-entry count.
///
/// Rationale: refilling from `live_bound` back past the threshold takes
/// at least `(COMPACT_GROWTH_FACTOR − 1)·live_bound + COMPACT_SLACK`
/// pushes, which pays for the `O(len)` sweep — amortized constant work
/// per push, while the queue stays `O(tasks)` at slot boundaries.
// audit: prove(overflow-bounds)
// audit: assume(live_bound in 0..=4294967296)
pub fn compaction_threshold(live_bound: usize) -> usize {
    COMPACT_GROWTH_FACTOR * live_bound + COMPACT_SLACK
}

/// An entry in the ready queue: one released, schedulable subtask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueueEntry {
    /// PD² priority (orders the queue).
    pub priority: Priority,
    /// Owning task.
    pub task: TaskId,
    /// Subtask index `i` of `T_i`.
    pub index: u64,
}

/// Bucketed deadline span in slots. Must be a power of two (the bucket
/// map is `deadline mod DEADLINE_SLOTS`). 512 covers every deadline
/// spread a feasible ready set produces (a window length is at most
/// the weight's period); farther deadlines ride the overflow list.
const DEADLINE_SLOTS: Slot = 512;
/// The same span as a bucket count.
const DEADLINE_BUCKETS: usize = 512;
/// Occupancy bitmap words (64 buckets per word).
const WORDS: usize = DEADLINE_BUCKETS / 64;

/// Min-priority ready queue with lazy invalidation: deadline-bucketed
/// radix structure (module docs). Drop-in replacement for the binary
/// heap it superseded — identical pop sequence, counter semantics, and
/// canonical [`ReadyQueue::entries_sorted`] projection.
#[derive(Clone, Debug)]
pub struct ReadyQueue {
    /// First deadline the bucket window covers.
    base: Slot,
    /// One bucket per window slot, indexed `deadline mod DEADLINE_SLOTS`.
    /// Within the window a bucket holds exactly one deadline, so a
    /// per-bucket min-heap on the full entry order pops the true
    /// minimum without the memmove a sorted `Vec` insert would pay.
    buckets: Vec<BinaryHeap<Reverse<QueueEntry>>>,
    /// Bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Entries with deadlines at or beyond `base + DEADLINE_SLOTS`,
    /// kept as a min-heap (the packed key orders deadline-first, so
    /// the heap minimum is the earliest overflow deadline); popped
    /// directly when the window drains.
    overflow: BinaryHeap<Reverse<QueueEntry>>,
    /// Live entry count across the buckets.
    in_window: usize,
    /// Lower bound on the minimum in-window deadline (`Slot::MAX` when
    /// the window is empty): the min scan starts here instead of at
    /// `base`, and popping at `d` raises it to `d` (the pop sequence
    /// is non-decreasing between pushes), so scan work is amortized
    /// O(1) per pop instead of O(window words).
    scan_min: Slot,
}

impl Default for ReadyQueue {
    fn default() -> ReadyQueue {
        ReadyQueue::new()
    }
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> ReadyQueue {
        ReadyQueue {
            base: 0,
            buckets: vec![BinaryHeap::new(); DEADLINE_BUCKETS],
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            in_window: 0,
            scan_min: Slot::MAX,
        }
    }

    /// The earliest overflow deadline (`Slot::MAX` when empty).
    fn overflow_min(&self) -> Slot {
        self.overflow
            .peek()
            .map_or(Slot::MAX, |Reverse(e)| e.priority.deadline())
    }

    /// Number of entries, including stale ones.
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    /// `true` iff no entries remain (stale or live).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // audit: prove(overflow-bounds)
    fn bucket_of(deadline: Slot) -> usize {
        usize::try_from(deadline.rem_euclid(DEADLINE_SLOTS)).unwrap_or(0)
    }

    /// Pushes a subtask that has just become its task's schedulable head.
    pub fn push(&mut self, entry: QueueEntry, counters: &mut Counters) {
        counters.heap_pushes += 1;
        let d = entry.priority.deadline();
        if self.is_empty() {
            self.base = d;
        } else if d < self.base {
            self.lower_base(d);
        }
        self.place(entry);
    }

    /// Lowers the window anchor to `new_base`, evicting into the
    /// overflow heap the entries the shifted coverage no longer
    /// reaches (deadlines at or beyond `new_base + DEADLINE_SLOTS`).
    /// Those occupy bucket indices congruent to `[new_base,
    /// old_base)`, so the walk scans only that range's occupancy words
    /// — a below-window push costs O(evicted + words), not O(len).
    fn lower_base(&mut self, new_base: Slot) {
        let old_base = self.base;
        self.base = new_base;
        let end = old_base.min(new_base.saturating_add(DEADLINE_SLOTS));
        let mut s = new_base;
        while s < end {
            let b = Self::bucket_of(s);
            let bit = s.rem_euclid(64);
            let word = self.occupied[b / 64]; // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
            let masked = word & (u64::MAX << usize::try_from(bit).unwrap_or(0));
            if masked == 0 {
                s = s + 64 - bit;
                continue;
            }
            let hit = s + i64::from(masked.trailing_zeros()) - bit;
            if hit >= end {
                // The set bit belongs to the next word-aligned stretch;
                // everything in range is clear.
                s = s + 64 - bit;
                continue;
            }
            let bi = Self::bucket_of(hit);
            self.in_window -= self.buckets[bi].len(); // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
            self.overflow.extend(self.buckets[bi].drain()); // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
            self.occupied[bi / 64] &= !(1u64 << (bi % 64)); // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
            s = hit + 1;
        }
    }

    /// Drops `entry` into its bucket (or the overflow list) without
    /// touching `base`. Callers guarantee `deadline ≥ base`.
    fn place(&mut self, entry: QueueEntry) {
        let d = entry.priority.deadline();
        if d >= self.base.saturating_add(DEADLINE_SLOTS) {
            self.overflow.push(Reverse(entry));
            return;
        }
        let b = Self::bucket_of(d);
        // Equal-deadline groups are small (one live head per task), so
        // the per-bucket heap sift is effectively constant work.
        self.buckets[b].push(Reverse(entry)); // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
        self.occupied[b / 64] |= 1u64 << (b % 64); // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
        self.in_window += 1;
        self.scan_min = self.scan_min.min(d);
    }

    /// Drains every window bucket and the overflow list into one
    /// vector, leaving the queue structurally empty. Walks the
    /// occupancy bitmap rather than all [`DEADLINE_BUCKETS`] buckets,
    /// so the cost is O(len + occupied words) — the engine drains the
    /// window every few slots in a saturated run, and an O(bucket
    /// count) sweep here measurably regresses whole-run time.
    fn drain_all(&mut self) -> Vec<QueueEntry> {
        let mut all: Vec<QueueEntry> = Vec::with_capacity(self.len());
        for (w, word) in self.occupied.iter_mut().enumerate() {
            while *word != 0 {
                let bit = usize::try_from(word.trailing_zeros()).unwrap_or(0);
                *word &= *word - 1;
                // audit: allow(panic-reach, w indexes the 8 occupancy words and bit is below 64, so the bucket index is below DEADLINE_BUCKETS)
                all.extend(self.buckets[w * 64 + bit].drain().map(|Reverse(e)| e));
            }
        }
        all.extend(self.overflow.drain().map(|Reverse(e)| e));
        self.in_window = 0;
        self.scan_min = Slot::MAX;
        all
    }

    /// The earliest occupied bucket's deadline, scanning masked bitmap
    /// words from the window base (the
    /// [`CalendarRing`](crate::calendar::CalendarRing) idiom: `WINDOW`
    /// is a multiple of 64, so slots sharing `s div 64` share a word).
    fn min_deadline(&self) -> Option<Slot> {
        if self.in_window == 0 {
            return None;
        }
        let end = self.base.saturating_add(DEADLINE_SLOTS);
        let mut s = self.scan_min.max(self.base).min(end);
        while s < end {
            let b = Self::bucket_of(s);
            let bit = s.rem_euclid(64);
            let word = self.occupied[b / 64]; // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
            let masked = word & (u64::MAX << usize::try_from(bit).unwrap_or(0));
            if masked != 0 {
                let hit = s + i64::from(masked.trailing_zeros()) - bit;
                if hit < end {
                    return Some(hit);
                }
                break;
            }
            s = s + 64 - bit;
        }
        None
    }

    /// Removes and returns the minimum entry (stale or live), serving
    /// straight from the overflow heap once the window has drained.
    fn pop_min(&mut self) -> Option<QueueEntry> {
        if self.in_window == 0 {
            // The window is empty, so the global minimum is the
            // overflow heap's root (the packed key orders
            // deadline-first): pop it directly — no migration — and
            // re-anchor the empty window just below the remaining
            // overflow. Future pushes then land in buckets while the
            // window-below-overflow invariant holds by construction.
            let Reverse(entry) = self.overflow.pop()?;
            self.base = self.overflow_min().saturating_sub(DEADLINE_SLOTS);
            return Some(entry);
        }
        let d = self.min_deadline()?;
        self.scan_min = d;
        let b = Self::bucket_of(d);
        let bucket = &mut self.buckets[b]; // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
        let Reverse(entry) = bucket.pop()?;
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1u64 << (b % 64)); // audit: allow(panic-reach, bucket index is reduced mod DEADLINE_BUCKETS and /64 fits the occupancy words)
        }
        self.in_window -= 1;
        // `base` deliberately stays put while the window is non-empty:
        // advancing it would widen the window over deadlines that were
        // routed to the overflow list under the old base, breaking the
        // window-below-overflow invariant the min scan relies on. The
        // scan is bounded by the 8 bitmap words regardless.
        Some(entry)
    }

    /// Pops the highest-priority entry for which `is_live` holds,
    /// discarding (and counting) stale entries on the way. Returns `None`
    /// when the queue runs out.
    pub fn pop_live(
        &mut self,
        counters: &mut Counters,
        is_live: impl FnMut(&QueueEntry) -> bool,
    ) -> Option<QueueEntry> {
        self.pop_live_traced(counters, is_live, |_| {})
    }

    /// [`ReadyQueue::pop_live`] with an observer: `on_stale` is invoked
    /// for each stale entry discarded on the way to a live one, so a
    /// probe can attribute the deferred queue cost back to the
    /// reweighting event whose halt stranded the entry.
    pub fn pop_live_traced(
        &mut self,
        counters: &mut Counters,
        mut is_live: impl FnMut(&QueueEntry) -> bool,
        mut on_stale: impl FnMut(&QueueEntry),
    ) -> Option<QueueEntry> {
        while let Some(entry) = self.pop_min() {
            counters.heap_pops += 1;
            if is_live(&entry) {
                return Some(entry);
            }
            counters.stale_pops += 1;
            on_stale(&entry);
        }
        None
    }

    /// Drops every stale entry in one pass, rebuilding the buckets from
    /// the surviving live entries.
    ///
    /// Lazy invalidation leaves halted/withdrawn subtasks in the queue
    /// until they reach the minimum; under sustained reweighting (every
    /// PD²-LJ event withdraws a subtask) low-priority stale entries can
    /// outnumber live ones and keep bucket scans inflated for the rest
    /// of the run. Compaction is `O(len)`, so callers should trigger it
    /// only when stale entries dominate (the engine compacts when `len`
    /// exceeds a multiple of the live-task bound, keeping the amortized
    /// per-slot cost constant). Removals are tallied in
    /// [`Counters::compacted_stale`], not `stale_pops` — they never
    /// reach a pop.
    pub fn compact(&mut self, counters: &mut Counters, is_live: impl FnMut(&QueueEntry) -> bool) {
        self.compact_traced(counters, is_live, |_| {});
    }

    /// [`ReadyQueue::compact`] with an observer: `on_drop` is invoked
    /// for each stale entry the sweep removes (these never reach a
    /// pop, so [`ReadyQueue::pop_live_traced`]'s observer would miss
    /// them).
    pub fn compact_traced(
        &mut self,
        counters: &mut Counters,
        mut is_live: impl FnMut(&QueueEntry) -> bool,
        mut on_drop: impl FnMut(&QueueEntry),
    ) {
        let before = self.len();
        let mut entries = self.drain_all();
        entries.retain(|e| {
            let live = is_live(e);
            if !live {
                on_drop(e);
            }
            live
        });
        counters.compactions += 1;
        counters.compacted_stale += (before - entries.len()) as u64; // audit: allow(lossy-cast, usize→u64 is lossless on the supported targets)
                                                                     // Re-place in the drained (already-reset) structure: the bucket
                                                                     // allocations are reused rather than rebuilt.
        if let Some(min) = entries.iter().map(|e| e.priority.deadline()).min() {
            self.base = min;
        }
        for entry in entries {
            self.place(entry);
        }
    }

    /// Drops every entry (used when a scheduler is reset between runs).
    pub fn clear(&mut self) {
        drop(self.drain_all());
    }

    /// Canonical persist projection: every entry (stale ones included —
    /// they carry observable cost via stale-pop counters) in ascending
    /// priority order. `QueueEntry`'s `Ord` is total over all fields,
    /// so compare-equal entries are bit-identical and the sorted vector
    /// is a canonical encoding of the queue's observable pop sequence
    /// regardless of its internal bucket layout.
    pub fn entries_sorted(&self) -> Vec<QueueEntry> {
        let mut entries: Vec<QueueEntry> = Vec::with_capacity(self.len());
        for (w, word) in self.occupied.iter().enumerate() {
            let mut word = *word;
            while word != 0 {
                let bit = usize::try_from(word.trailing_zeros()).unwrap_or(0);
                word &= word - 1;
                // audit: allow(panic-reach, w indexes the 8 occupancy words and bit is below 64, so the bucket index is below DEADLINE_BUCKETS)
                entries.extend(self.buckets[w * 64 + bit].iter().map(|Reverse(e)| *e));
            }
        }
        entries.extend(self.overflow.iter().map(|Reverse(e)| *e));
        entries.sort_unstable();
        entries
    }

    /// Rebuilds a queue from a [`ReadyQueue::entries_sorted`]
    /// projection without routing through [`ReadyQueue::push`] — the
    /// restored engine's `heap_pushes` counter is carried over verbatim
    /// by the snapshot, so re-counting these entries would double them.
    pub fn from_entries(entries: Vec<QueueEntry>) -> ReadyQueue {
        let mut q = ReadyQueue::new();
        if let Some(min) = entries.iter().map(|e| e.priority.deadline()).min() {
            q.base = min;
        }
        for entry in entries {
            q.place(entry);
        }
        q
    }
}

/// The previous binary-heap ready queue, retained as the reference
/// implementation: differential tests drive it in lockstep with the
/// radix [`ReadyQueue`] (their pop sequences must be identical), and
/// the `queue/{heap,radix}_push_pop` benchmark pair measures the
/// replacement's win. Counter semantics match `ReadyQueue` exactly.
#[derive(Clone, Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
}

impl HeapQueue {
    /// An empty queue.
    pub fn new() -> HeapQueue {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of entries, including stale ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no entries remain (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Counterpart of [`ReadyQueue::push`].
    pub fn push(&mut self, entry: QueueEntry, counters: &mut Counters) {
        counters.heap_pushes += 1;
        self.heap.push(Reverse(entry));
    }

    /// Counterpart of [`ReadyQueue::pop_live`].
    pub fn pop_live(
        &mut self,
        counters: &mut Counters,
        mut is_live: impl FnMut(&QueueEntry) -> bool,
    ) -> Option<QueueEntry> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            counters.heap_pops += 1;
            if is_live(&entry) {
                return Some(entry);
            }
            counters.stale_pops += 1;
        }
        None
    }

    /// Counterpart of [`ReadyQueue::entries_sorted`].
    pub fn entries_sorted(&self) -> Vec<QueueEntry> {
        let mut entries: Vec<QueueEntry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(deadline: i64, b: bool, task: u32, index: u64) -> QueueEntry {
        QueueEntry {
            // Tie rank = task id, matching the TaskIdAsc policy's table.
            priority: Priority::pack(deadline, b, deadline, task),
            task: TaskId(task),
            index,
        }
    }

    #[test]
    fn pops_in_pd2_order() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(7, false, 0, 1), &mut c);
        q.push(entry(5, false, 1, 1), &mut c);
        q.push(entry(5, true, 2, 1), &mut c);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.task.0)
            .collect();
        assert_eq!(order, vec![2, 1, 0]); // dl 5 b=1, dl 5 b=0, dl 7
        assert_eq!(c.heap_pushes, 3);
        assert_eq!(c.heap_pops, 3);
        assert_eq!(c.stale_pops, 0);
    }

    #[test]
    fn lazy_invalidation_skips_and_counts_stale() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(3, true, 0, 1), &mut c);
        q.push(entry(4, true, 1, 1), &mut c);
        // Task 0's subtask was halted: treat it as stale.
        let got = q.pop_live(&mut c, |e| e.task != TaskId(0));
        assert_eq!(got.unwrap().task, TaskId(1));
        assert_eq!(c.stale_pops, 1);
        assert!(q.pop_live(&mut c, |_| true).is_none());
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        assert!(q.pop_live(&mut c, |_| true).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn compact_drops_only_stale_entries_and_counts_them() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        for i in 0..100u64 {
            q.push(entry(i64::try_from(i).unwrap() + 3, false, 0, i), &mut c);
        }
        // Everything with an odd index is stale.
        q.compact(&mut c, |e| e.index % 2 == 0);
        assert_eq!(q.len(), 50);
        assert_eq!(c.compactions, 1);
        assert_eq!(c.compacted_stale, 50);
        // Survivors still pop in priority order, with no stale pops.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.index)
            .collect();
        assert_eq!(order, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(c.stale_pops, 0);
    }

    #[test]
    fn compact_on_all_live_queue_is_a_noop() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(5, false, 0, 1), &mut c);
        q.push(entry(6, false, 1, 1), &mut c);
        q.compact(&mut c, |_| true);
        assert_eq!(q.len(), 2);
        assert_eq!(c.compacted_stale, 0);
    }

    /// Compaction must not reorder survivors that share a priority key:
    /// the pop order among equal keys is fixed by `QueueEntry`'s full
    /// `Ord` (priority, then task, then index), so a rebuilt queue pops
    /// the identical sequence the unswept queue would have.
    #[test]
    fn compaction_never_reorders_equal_key_survivors() {
        let mut swept = ReadyQueue::new();
        let mut c = Counters::default();
        // Three equal-priority groups; interleave pushes across groups
        // and sprinkle stale entries (odd indices) through each.
        for index in 0..24u64 {
            for (task, deadline) in [(3u32, 5i64), (1, 5), (2, 9)] {
                swept.push(
                    QueueEntry {
                        priority: Priority::pack(deadline, true, deadline, 7),
                        task: TaskId(task),
                        index,
                    },
                    &mut c,
                );
            }
        }
        let mut unswept = swept.clone();
        let is_live = |e: &QueueEntry| e.index.is_multiple_of(2);
        swept.compact(&mut c, is_live);
        let mut c2 = Counters::default();
        let pops = |q: &mut ReadyQueue, c: &mut Counters| -> Vec<(u32, u64)> {
            std::iter::from_fn(|| q.pop_live(c, is_live))
                .map(|e| (e.task.0, e.index))
                .collect()
        };
        assert_eq!(pops(&mut swept, &mut c), pops(&mut unswept, &mut c2));
    }

    /// Deadlines farther than the bucket window ride the overflow list
    /// and migrate in once the window drains — pop order still exact.
    #[test]
    fn overflow_deadlines_pop_in_order() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(10, false, 0, 1), &mut c);
        q.push(entry(10_000, false, 1, 1), &mut c); // far beyond 10 + 512
        q.push(entry(700, true, 2, 1), &mut c); // also overflow
        q.push(entry(11, true, 3, 1), &mut c);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.task.0)
            .collect();
        assert_eq!(order, vec![0, 3, 2, 1]);
        assert_eq!(c.heap_pops, 4);
    }

    /// A push below the current window base re-anchors the window
    /// without losing or reordering anything.
    #[test]
    fn below_window_push_rebases() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(1_000, false, 0, 1), &mut c); // base anchors at 1000
        q.push(entry(1_600, false, 1, 1), &mut c); // overflow
        q.push(entry(3, true, 2, 1), &mut c); // below base: rebase
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.task.0)
            .collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    /// Popping must not widen the window over deadlines already routed
    /// to the overflow list: after popping the 100, a push of 611 has
    /// to sort *after* the 600 parked in the overflow.
    #[test]
    fn window_growth_never_overtakes_overflow() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(entry(100, false, 0, 1), &mut c); // base anchors at 100
        q.push(entry(700, false, 1, 1), &mut c); // overflow (≥ 100 + 512)
        assert_eq!(q.pop_live(&mut c, |_| true).unwrap().task, TaskId(0));
        q.push(entry(611, false, 2, 1), &mut c);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_live(&mut c, |_| true))
            .map(|e| e.task.0)
            .collect();
        assert_eq!(order, vec![2, 1]);
    }

    /// Differential check: the radix queue and the reference heap pop
    /// bit-identical sequences (liveness filter included) over an
    /// adversarial interleaving of pushes, pops, and deadline ranges,
    /// with identical counters.
    #[test]
    fn radix_matches_heap_reference() {
        let mut radix = ReadyQueue::new();
        let mut heap = HeapQueue::new();
        let mut cr = Counters::default();
        let mut ch = Counters::default();
        // Deterministic pseudo-random stream (xorshift).
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let is_live = |e: &QueueEntry| !e.index.is_multiple_of(3);
        for round in 0..2_000u64 {
            let r = rand();
            if r % 3 < 2 {
                // Push: deadlines cluster near the round with occasional
                // far-future and (later) below-window values.
                let spread = match r % 16 {
                    0 => 4_000,  // overflow territory
                    1 => 0,      // collide exactly
                    _ => r % 97, // dense cluster
                };
                let deadline = i64::try_from(round / 4 + spread).unwrap_or(0);
                let e = entry(
                    deadline,
                    r % 2 == 0,
                    u32::try_from(r % 7).unwrap_or(0),
                    round,
                );
                radix.push(e, &mut cr);
                heap.push(e, &mut ch);
            } else {
                assert_eq!(
                    radix.pop_live(&mut cr, is_live),
                    heap.pop_live(&mut ch, is_live),
                    "pop diverged at round {round}"
                );
            }
            assert_eq!(radix.len(), heap.len());
        }
        // Drain both completely.
        loop {
            let a = radix.pop_live(&mut cr, is_live);
            let b = heap.pop_live(&mut ch, is_live);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cr.heap_pushes, ch.heap_pushes);
        assert_eq!(cr.heap_pops, ch.heap_pops);
        assert_eq!(cr.stale_pops, ch.stale_pops);
        assert_eq!(radix.entries_sorted(), heap.entries_sorted());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::overhead::Counters;
    use crate::priority::Priority;
    use pfair_core::task::TaskId;

    #[test]
    fn clear_empties_the_queue() {
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        for i in 0..5u64 {
            q.push(
                QueueEntry {
                    priority: Priority::pack(5, true, 5, 0),
                    task: TaskId(0),
                    index: i + 1,
                },
                &mut c,
            );
        }
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop_live(&mut c, |_| true).is_none());
    }

    #[test]
    fn group_deadline_orders_equal_deadline_b1_entries() {
        // Among equal-deadline b=1 entries, the later group deadline wins.
        let mut q = ReadyQueue::new();
        let mut c = Counters::default();
        q.push(
            QueueEntry {
                priority: Priority::pack(5, true, 6, 0),
                task: TaskId(0),
                index: 1,
            },
            &mut c,
        );
        q.push(
            QueueEntry {
                priority: Priority::pack(5, true, 9, 1),
                task: TaskId(1),
                index: 1,
            },
            &mut c,
        );
        let first = q.pop_live(&mut c, |_| true).unwrap();
        assert_eq!(first.task, TaskId(1), "later group deadline is favored");
    }
}
